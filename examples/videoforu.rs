//! The paper's motivating scenario (§1): **VideoForU**.
//!
//! A startup distributes 15-minute episodes with embedded ads to
//! subscribers' phones over opportunistic Bluetooth/Wi-Fi contacts.
//! Catalog: 500 episodes; each of 5 000 subscribers dedicates a 3-episode
//! cache; revenue is earned whenever a delivered episode is still watched
//! — a step/exponential delay-utility.
//!
//! The analytic planning runs at full scale (5 000 × 500); the
//! simulation demonstrates the protocol on a 1/10-scale system (500
//! nodes would take a while in an example).
//!
//! Run with: `cargo run --release --example videoforu`

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::utility::DelayUtility;
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;

fn main() {
    // --- full-scale planning (pure theory) ------------------------------
    let subscribers = 5_000;
    let catalog = 500;
    let cache = 3;
    let mu = 0.002; // a given pair of subscribers meets every ~8 hours
    let system = SystemModel::pure_p2p(subscribers, cache, mu);
    // Total demand: each subscriber requests ~2 episodes per day.
    let demand = Popularity::pareto(catalog, 1.0).demand_rates(subscribers as f64 * 2.0 / 1_440.0);

    // Survey says: after 4 hours, ~63 % of users no longer watch.
    let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(1.0 / 240.0));

    let opt = greedy_homogeneous(&system, &demand, utility.as_ref());
    let w_opt = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &opt.as_f64());
    let uni = uniform(catalog, subscribers, cache);
    let w_uni = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &uni.as_f64());

    println!("=== VideoForU planning (5 000 subscribers × 500 episodes) ===");
    println!("slots in the global cache      : {}", system.total_slots());
    println!("optimal replicas, episode #1   : {}", opt.count(0));
    println!(
        "optimal replicas, episode #500 : {}",
        opt.count(catalog - 1)
    );
    println!("expected ads watched (OPT)     : {:.1}/min", w_opt);
    println!("expected ads watched (uniform) : {:.1}/min", w_uni);
    println!(
        "revenue uplift of optimal cache: {:.1}%\n",
        100.0 * (w_opt - w_uni) / w_uni
    );

    // --- 1/10-scale protocol demonstration ------------------------------
    let nodes = 100;
    let items = 50;
    let demand = Popularity::pareto(items, 1.0).demand_rates(nodes as f64 * 2.0 / 1_440.0);
    let config = SimConfig::builder(items, cache)
        .demand(demand.clone())
        .utility(utility.clone())
        .bin(240.0)
        .warmup_fraction(0.25)
        .build();
    // Scale μ up so the meeting budget per node stays comparable.
    let mu_small = 0.02;
    let source = ContactSource::homogeneous(nodes, mu_small, 4.0 * 1_440.0);
    let small = SystemModel::pure_p2p(nodes, cache, mu_small);
    let opt_small = greedy_homogeneous(&small, &demand, utility.as_ref());

    println!("=== four simulated days at 1/10 scale ===");
    for policy in [
        PolicyKind::Static {
            label: "OPT",
            counts: opt_small,
        },
        PolicyKind::qcr_default(),
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, nodes, cache),
        },
    ] {
        let agg = run_trials(&config, &source, &policy, 6, 2_024);
        println!(
            "{:<6} ads watched {:.3}/min   replication transmissions {:.0}",
            agg.label, agg.mean_rate, agg.mean_transmissions
        );
    }
    println!("\nSeed a copy or two per episode, let QCR do the rest.");
}
