//! Closing the loop on the paper's final open problem (§7): estimate the
//! delay-utility **from user feedback** instead of assuming it known,
//! then drive QCR with the fitted model.
//!
//! Pipeline:
//! 1. the "true" impatience is exponential (ν = 0.2) — unknown to us;
//! 2. a pilot deployment logs `(delay, consumed?)` feedback;
//! 3. we fit (a) a parametric MLE and (b) a distribution-free monotone
//!    estimate of `h`;
//! 4. QCR runs with the *fitted* reaction function ψ̂ (computed by
//!    numeric integration for the nonparametric fit — no closed forms
//!    needed) and is compared against QCR-with-truth and OPT.
//!
//! Run with: `cargo run --release --example fitted_impatience`

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::{fit_empirical, fit_exponential, DelayUtility, Feedback};
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;

fn main() {
    let truth = Exponential::new(0.2);

    // --- 1. pilot feedback -----------------------------------------------
    let mut rng = Xoshiro256::seed_from_u64(1_234);
    let feedback: Vec<Feedback> = (0..20_000)
        .map(|_| {
            let delay = rng.exp(0.08); // pilot delays, mean 12.5 min
            let consumed = rng.bernoulli(truth.h(delay));
            Feedback::new(delay, consumed)
        })
        .collect();
    let consumed = feedback.iter().filter(|f| f.consumed).count();
    println!(
        "pilot: {} observations, {:.1}% consumed",
        feedback.len(),
        100.0 * consumed as f64 / feedback.len() as f64
    );

    // --- 2. fit -----------------------------------------------------------
    let nu_hat = fit_exponential(&feedback).expect("enough data");
    println!("parametric MLE    : ν̂ = {nu_hat:.4} (truth 0.2)");
    let empirical = fit_empirical(&feedback, 25).expect("enough data");
    println!(
        "nonparametric fit : h(2) = {:.3} (truth {:.3}), h(10) = {:.3} (truth {:.3})",
        empirical.h(2.0),
        truth.h(2.0),
        empirical.h(10.0),
        truth.h(10.0)
    );

    // --- 3. deploy QCR with each model ------------------------------------
    let (nodes, items, rho, mu) = (50, 50, 5, 0.05);
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let system = SystemModel::pure_p2p(nodes, rho, mu);
    let opt = greedy_homogeneous(&system, &demand, &truth);

    let models: Vec<(&str, Arc<dyn DelayUtility>)> = vec![
        ("truth", Arc::new(truth)),
        ("MLE fit", Arc::new(Exponential::new(nu_hat))),
        ("empirical fit", empirical),
    ];

    println!("\nQCR driven by each impatience model (true gains recorded):");
    for (name, model) in models {
        // The *simulated gains* always use the truth; only QCR's reaction
        // function (protocol_utility) uses the model under test.
        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .utility(Arc::new(truth))
            .protocol_utility(model)
            .bin(100.0)
            .warmup_fraction(0.3)
            .build();
        let source = ContactSource::homogeneous(nodes, mu, 3_000.0);
        let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), 6, 77);
        println!("  QCR[{name:<13}] utility {:.4}/min", agg.mean_rate);
    }
    let config = SimConfig::builder(items, rho)
        .demand(demand)
        .utility(Arc::new(truth))
        .bin(100.0)
        .warmup_fraction(0.3)
        .build();
    let source = ContactSource::homogeneous(nodes, mu, 3_000.0);
    let agg = run_trials(
        &config,
        &source,
        &PolicyKind::Static {
            label: "OPT",
            counts: opt,
        },
        6,
        77,
    );
    println!("  OPT (oracle)        utility {:.4}/min", agg.mean_rate);
    println!("\nA fitted impatience model is enough to tune QCR — no oracle needed.");
}
