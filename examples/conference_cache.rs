//! Conference content dissemination (the paper's §6.3 Infocom scenario).
//!
//! Fifty attendees share talks/slides over Bluetooth during a three-day
//! conference. Contacts are bursty, community-structured, and follow the
//! day/night cycle; content interest decays with a step deadline (old
//! slides stop being useful). We compare QCR against the perfect-control-
//! channel heuristics on the synthetic conference trace and print the
//! hourly utility so the diurnal pattern is visible.
//!
//! Run with: `cargo run --release --example conference_cache`

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;
use impatience_sim::config::SimConfig;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(2_006);
    let trace = ConferenceConfig::default().generate(&mut rng);
    let stats = TraceStats::from_trace(&trace);
    println!(
        "trace: {} contacts / {} nodes / {:.0} h; rate CV {:.2}, burstiness CV {:.2}",
        trace.len(),
        trace.nodes(),
        trace.duration() / 60.0,
        stats.rate_cv(),
        stats.normalized_intercontact_cv(),
    );

    let items = 50;
    let rho = 5;
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    // Slides are stale after two hours.
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(120.0));

    let config = SimConfig::builder(items, rho)
        .demand(demand.clone())
        .profile(profile.clone())
        .utility(utility.clone())
        .bin(60.0)
        .warmup_fraction(0.2)
        .build();
    let source = ContactSource::trace(trace.clone());

    // OPT uses the submodular greedy on trace-estimated rates (§6.1).
    use impatience_core::welfare::HeterogeneousSystem;
    let hsys = HeterogeneousSystem::pure_p2p(stats.rates().clone(), rho);
    let opt = greedy_heterogeneous(&hsys, &demand, &profile, utility.as_ref()).to_counts();

    use impatience_sim::policy::PolicyKind;
    let policies = vec![
        PolicyKind::qcr_default(),
        PolicyKind::Static {
            label: "OPT",
            counts: opt,
        },
        PolicyKind::Static {
            label: "PROP",
            counts: proportional(&demand, trace.nodes(), rho),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, trace.nodes(), rho),
        },
    ];

    let mut aggregates = Vec::new();
    for p in &policies {
        let agg = run_trials(&config, &source, p, 6, 99);
        println!("{:<6} mean utility {:.4}/min", agg.label, agg.mean_rate);
        aggregates.push(agg);
    }

    // Hourly utility for the first simulated day: the 9–18 h conference
    // block lights up, the night goes quiet.
    println!("\nhour  {:>8}  {:>8}", "QCR", "OPT");
    for h in 0..24 {
        println!(
            "{h:>4}  {:>8.4}  {:>8.4}",
            aggregates[0].observed_series[h], aggregates[1].observed_series[h]
        );
    }
}
