//! Quickstart: the paper's §6.2 system in sixty seconds.
//!
//! Builds the homogeneous setting (50 pure-P2P nodes, 50 items, ρ = 5,
//! μ = 0.05, Pareto popularity), computes the optimal allocation, runs
//! QCR with mandate routing, and compares the two — demonstrating the
//! paper's headline: a purely local, reactive protocol approaches the
//! welfare of an omniscient allocator.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::utility::DelayUtility;
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;

fn main() {
    // --- the system -----------------------------------------------------
    let nodes = 50;
    let items = 50;
    let rho = 5;
    let mu = 0.05; // meetings per pair per minute
    let system = SystemModel::pure_p2p(nodes, rho, mu);
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);

    // Users give up ~exponentially while waiting (advertising revenue).
    let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.2));

    // --- theory: the optimal allocation (Theorem 2) ---------------------
    let opt = greedy_homogeneous(&system, &demand, utility.as_ref());
    let w_opt = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &opt.as_f64());
    println!("optimal allocation (head): {:?}", &opt.counts()[..8]);
    println!("optimal allocation (tail): {:?}", &opt.counts()[42..]);
    println!("analytic optimal welfare : {w_opt:.4} utility/min\n");

    // --- practice: simulate QCR against the pinned optimum --------------
    let config = SimConfig::builder(items, rho)
        .demand(demand)
        .utility(utility)
        .bin(60.0)
        .warmup_fraction(0.3)
        .build();
    let source = ContactSource::homogeneous(nodes, mu, 3_000.0);

    for policy in [
        PolicyKind::Static {
            label: "OPT",
            counts: opt,
        },
        PolicyKind::qcr_default(),
    ] {
        let agg = run_trials(&config, &source, &policy, 8, 7);
        println!(
            "{:<6} observed {:.4} utility/min   (5–95%: {:.4} … {:.4})",
            agg.label, agg.mean_rate, agg.p5_rate, agg.p95_rate
        );
    }
    println!("\nQCR reached this using only local query counters — no control channel.");
}
