//! Time-critical information in a taxi fleet (the paper's §6.3
//! Cabspotting scenario, with the §3.2 "time-critical" impatience).
//!
//! Fifty cabs exchange road alerts and fare hot-spot reports when they
//! pass within 200 m. The information loses value fast — a waiting-cost
//! power utility (α = 0.5). We generate a day of grid-taxi mobility,
//! derive contacts geometrically, and compare replication policies.
//!
//! Run with: `cargo run --release --example vehicular_dissemination`

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::HeterogeneousSystem;
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(415); // San Francisco
    let cfg = VehicularConfig {
        cabs: 50,
        duration: 1_440.0,
        ..VehicularConfig::default()
    };
    let trace = cfg.generate(&mut rng);
    let stats = TraceStats::from_trace(&trace);
    println!(
        "taxi trace: {} contacts over {:.0} h ({} cabs, 200 m radius), rate CV {:.2}",
        trace.len(),
        trace.duration() / 60.0,
        trace.nodes(),
        stats.rate_cv()
    );

    let items = 50; // road segments / hot spots being tracked
    let rho = 5;
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(0.5));

    let config = SimConfig::builder(items, rho)
        .demand(demand.clone())
        .profile(profile.clone())
        .utility(utility.clone())
        .bin(120.0)
        .warmup_fraction(0.25)
        .build();
    let source = ContactSource::trace(trace.clone());

    let hsys = HeterogeneousSystem::pure_p2p(stats.rates().clone(), rho);
    let opt = greedy_heterogeneous(&hsys, &demand, &profile, utility.as_ref()).to_counts();
    println!(
        "OPT places the hottest item on {} cabs and the coldest on {}",
        opt.count(0),
        opt.count(items - 1)
    );

    for policy in [
        PolicyKind::Static {
            label: "OPT",
            counts: opt,
        },
        PolicyKind::qcr_default(),
        PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(&demand, trace.nodes(), rho),
        },
        PolicyKind::Static {
            label: "DOM",
            counts: dominant(&demand, trace.nodes(), rho),
        },
    ] {
        let agg = run_trials(&config, &source, &policy, 6, 415);
        println!(
            "{:<6} utility {:>10.4}/min   (5–95%: {:.4} … {:.4})",
            agg.label, agg.mean_rate, agg.p5_rate, agg.p95_rate
        );
    }
    println!("\nUnder waiting costs, starving cold items (DOM) is ruinous;");
    println!("QCR spreads replicas without any fleet-wide coordination.");
}
