//! Explore how user impatience reshapes the optimal cache (§4.2, Fig. 2).
//!
//! For a fixed catalog and budget, sweep the impatience model from
//! "patient" (waiting costs, α ≪ 1) to "frantic" (time-critical, α → 2)
//! and print the optimal allocation's head/tail — watch it morph from
//! uniform through square-root and proportional to winner-take-all.
//!
//! Run with: `cargo run --release --example impatience_explorer`

use age_of_impatience::prelude::*;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::utility::DelayUtility;

fn row(label: &str, utility: &dyn DelayUtility, system: &SystemModel, demand: &DemandRates) {
    let x = relaxed_optimum(system, demand, utility);
    let head: Vec<String> = x.x[..5].iter().map(|v| format!("{v:5.1}")).collect();
    let tail: Vec<String> = x.x[45..].iter().map(|v| format!("{v:5.1}")).collect();
    let skew = x.x[0] / x.x[49].max(1e-9);
    println!(
        "{label:<22} [{}]…[{}]  head/tail = {skew:6.1}",
        head.join(" "),
        tail.join(" ")
    );
}

fn main() {
    // Dedicated servers so even the time-critical families are valid.
    let system = SystemModel::dedicated(200, 100, 5, 0.05);
    let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);

    println!("optimal (relaxed) replica counts per item — 50 items, 500 slots\n");

    println!("-- waiting cost (patient networks tend to uniform) --");
    for alpha in [-8.0, -2.0, -1.0, 0.0] {
        row(
            &format!("power α = {alpha}"),
            &Power::new(alpha),
            &system,
            &demand,
        );
    }

    println!("\n-- the α = 1 pivot: proportional to demand --");
    row("neglog (α = 1)", &NegLog::new(), &system, &demand);

    println!("\n-- time-critical (frantic networks skew to the head) --");
    for alpha in [1.5, 1.8, 1.95] {
        row(
            &format!("power α = {alpha}"),
            &Power::new(alpha),
            &system,
            &demand,
        );
    }

    println!("\n-- deadline families for comparison --");
    for tau in [0.5, 5.0, 50.0] {
        row(
            &format!("step τ = {tau}"),
            &Step::new(tau),
            &system,
            &demand,
        );
    }
    for nu in [2.0, 0.2, 0.02] {
        row(
            &format!("exp ν = {nu}"),
            &Exponential::new(nu),
            &system,
            &demand,
        );
    }

    println!("\nSquare-root allocation is exactly the α = 0 point; path");
    println!("replication (proportional) is optimal only at α = 1 — one");
    println!("impatience model per column of the paper's Table 1.");
}
