//! Profiling-layer integration tests: span-nesting invariants
//! (property-based), bit-identical simulation results with profiling on
//! vs off across worker counts, Prometheus exposition round-trips, and
//! `trace diff` over the committed fixture traces.

use std::path::Path;

use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_obs::span::{LocalProfiler, PhaseAgg};
use impatience_obs::{parse_prometheus, render_diff, Recorder, TallySink, TraceSummary};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::{run_trials_observed_with_workers, TrialAggregate};

use proptest::prelude::*;

// ---------------------------------------------------------------- spans

/// Drive a [`LocalProfiler`] through a push/pop script with explicit
/// per-span own-costs, so each parent's elapsed time is its own cost
/// plus the (exact) sum of its children's elapsed times. Returns the
/// aggregate and the number of spans closed.
fn run_script(actions: &[bool], costs: &[f64]) -> (PhaseAgg, usize) {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut prof = LocalProfiler::new();
    // Stack of (span id, own cost, accumulated child elapsed).
    let mut stack: Vec<(usize, f64, f64)> = Vec::new();
    let mut closed = 0usize;
    let mut pop = |prof: &mut LocalProfiler, stack: &mut Vec<(usize, f64, f64)>| {
        let (id, own, child_sum) = stack.pop().unwrap();
        let elapsed = own + child_sum;
        prof.exit(id, elapsed);
        if let Some(top) = stack.last_mut() {
            top.2 += elapsed;
        }
        closed += 1;
    };
    for (i, &push) in actions.iter().enumerate() {
        if push && stack.len() < 6 {
            let name = NAMES[i % NAMES.len()];
            let id = prof.enter(name);
            stack.push((id, costs[i % costs.len()], 0.0));
        } else if !stack.is_empty() {
            pop(&mut prof, &mut stack);
        }
    }
    while !stack.is_empty() {
        pop(&mut prof, &mut stack);
    }
    (prof.aggregate(), closed)
}

proptest! {
    /// In any well-nested span tree, every phase's self time is
    /// non-negative (children never account for more than their parent's
    /// wall) and the percentile ladder is ordered.
    #[test]
    fn span_self_time_never_exceeds_wall(
        actions in proptest::collection::vec((0usize..2).prop_map(|x| x == 1), 1..120),
        costs in proptest::collection::vec(1e-6f64..0.5, 4),
    ) {
        let (agg, closed) = run_script(&actions, &costs);
        let report = agg.report();
        let total_calls: u64 = report.phases.iter().map(|p| p.calls).sum();
        prop_assert_eq!(total_calls as usize, closed);
        for phase in &report.phases {
            // Elapsed times were constructed exactly as own + children,
            // so self_s must recover `own * calls` up to float error.
            prop_assert!(
                phase.self_s >= -1e-9,
                "negative self time {} for {}", phase.self_s, phase.path
            );
            prop_assert!(phase.self_s <= phase.wall_s + 1e-9);
            // Percentile ladder is ordered whenever it is populated.
            let (p50, p95, max) = (phase.p50_s, phase.p95_s, phase.max_s);
            prop_assert!(p50.is_some() && p95.is_some() && max.is_some());
            prop_assert!(p50.unwrap() <= p95.unwrap() + 1e-9);
            // p95 comes from histogram buckets whose upper edge can
            // overshoot the exact max, so only sanity-bound it.
            prop_assert!(p95.unwrap() >= 0.0);
            prop_assert!(phase.wall_s >= max.unwrap() - 1e-9);
        }
    }

    /// Merging worker aggregates is associative: (A ∪ B) ∪ C and
    /// A ∪ (B ∪ C) report the same phases, calls, and wall times. This is
    /// what makes the drained per-thread profiles order-independent.
    #[test]
    fn span_merge_is_associative(
        records in proptest::collection::vec(
            (0usize..5, 1e-6f64..1.0), 0..40
        ),
        cut1 in 0usize..40,
        cut2 in 0usize..40,
    ) {
        const PATHS: [&str; 5] =
            ["trial", "trial/contact", "trial/contact/exchange", "solve.greedy", "merge"];
        let (lo, hi) = (cut1.min(cut2), cut1.max(cut2));
        let mut parts = [PhaseAgg::new(), PhaseAgg::new(), PhaseAgg::new()];
        for (i, &(p, w)) in records.iter().enumerate() {
            let slot = if i < lo.min(records.len()) { 0 } else if i < hi.min(records.len()) { 1 } else { 2 };
            parts[slot].record(PATHS[p], w);
        }
        let [a, b, c] = parts;

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        let (lr, rr) = (left.report(), right.report());
        prop_assert_eq!(lr.phases.len(), rr.phases.len());
        for (l, r) in lr.phases.iter().zip(rr.phases.iter()) {
            prop_assert_eq!(&l.path, &r.path);
            prop_assert_eq!(l.calls, r.calls);
            prop_assert!((l.wall_s - r.wall_s).abs() <= 1e-12 * l.wall_s.abs().max(1.0));
            prop_assert!((l.self_s - r.self_s).abs() <= 1e-12 * l.self_s.abs().max(1.0));
        }
    }
}

// ---------------------------------------------------- bit-identity

fn small_setting() -> (SimConfig, ContactSource, PolicyKind) {
    let items = 12;
    let config = SimConfig::builder(items, 3)
        .demand(Popularity::pareto(items, 1.0).demand_rates(1.0))
        .utility(std::sync::Arc::new(Step::new(10.0)))
        .bin(60.0)
        .warmup_fraction(0.25)
        .build();
    let source = ContactSource::homogeneous(20, 0.05, 600.0);
    (config, source, PolicyKind::qcr_default())
}

fn run_aggregate(workers: usize) -> TrialAggregate {
    let (config, source, policy) = small_setting();
    let mut rec = Recorder::new(TallySink);
    run_trials_observed_with_workers(&config, &source, &policy, 6, 42, Some(workers), &mut rec)
}

fn fingerprint(agg: &TrialAggregate) -> Vec<u64> {
    let mut bits: Vec<u64> = agg.rates.iter().map(|r| r.to_bits()).collect();
    bits.push(agg.mean_rate.to_bits());
    bits.push(agg.mean_transmissions.to_bits());
    bits.push(agg.mean_unfulfilled.to_bits());
    bits.extend(agg.observed_series.iter().map(|r| r.to_bits()));
    bits.extend(agg.mean_final_replicas.iter().map(|r| r.to_bits()));
    bits
}

/// Span probes must be observation-only: enabling the profiler cannot
/// change a single output bit, at any worker count. (Spans live on the
/// side of the RNG and event paths; this is the regression gate for
/// anyone tempted to thread profiling state into the simulation.)
#[test]
fn profiling_on_off_bit_identical_across_workers() {
    let baseline = fingerprint(&run_aggregate(1));
    for workers in [1usize, 2, 8] {
        let off = fingerprint(&run_aggregate(workers));
        impatience_obs::span::enable();
        let on = fingerprint(&run_aggregate(workers));
        impatience_obs::span::disable();
        // Drain whatever the profiled run recorded so later tests (and
        // reruns) start clean.
        let report = impatience_obs::span::take_report();
        assert_eq!(off, on, "profiling changed results at {workers} workers");
        assert_eq!(off, baseline, "results depend on worker count {workers}");
        assert!(
            report.phases.iter().any(|p| p.path == "trial"),
            "profiled run should have recorded trial spans"
        );
    }
}

// ---------------------------------------------------- prometheus

/// The Prometheus text we write must survive our own parser: every
/// rendered sample (including histogram buckets, sums, counts, and
/// labels) comes back with the same name, labels, and value.
#[test]
fn prometheus_exposition_round_trips() {
    let summary = TraceSummary::from_file(Path::new("tests/fixtures/trace_a.jsonl")).unwrap();
    let registry = summary.to_registry();
    let text = registry.render();
    let parsed = parse_prometheus(&text).expect("our own exposition must parse");
    let expected = registry.samples();
    assert_eq!(
        parsed.len(),
        expected.len(),
        "sample count mismatch:\n{text}"
    );
    for (p, e) in parsed.iter().zip(expected.iter()) {
        assert_eq!(p.name, e.name);
        assert_eq!(p.labels, e.labels);
        assert!(
            (p.value - e.value).abs() <= 1e-9 * e.value.abs().max(1.0),
            "{}: {} vs {}",
            p.name,
            p.value,
            e.value
        );
    }
}

// ---------------------------------------------------- trace diff

/// `trace diff` over the two committed fixtures: counts line up, kinds
/// present in only one trace are flagged in both directions.
#[test]
fn trace_diff_on_committed_fixtures() {
    let a = TraceSummary::from_file(Path::new("tests/fixtures/trace_a.jsonl")).unwrap();
    let b = TraceSummary::from_file(Path::new("tests/fixtures/trace_b.jsonl")).unwrap();
    assert_eq!(a.parse_errors, 0);
    assert_eq!(b.parse_errors, 0);
    assert_eq!(a.total_events(), 11);
    assert_eq!(b.total_events(), 8);

    let diff = render_diff(&a, &b, "A", "B");
    assert!(diff.contains("scenario"), "{diff}");
    assert!(diff.contains("(new in B)"), "{diff}");
    assert!(diff.contains("fulfillment"), "{diff}");
    assert!(diff.contains("(missing in B)"), "{diff}");
    // contact: 3 in A, 1 in B.
    assert!(diff.contains("-2"), "{diff}");

    // The reconstructed span tree sees the solver_done events.
    assert!(
        a.spans.iter().any(|(path, _)| path == "solver/greedy"),
        "fixture A should reconstruct a solver span"
    );
}
