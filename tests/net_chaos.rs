//! Chaos contracts of the distributed QCR runtime: crashing a node in
//! the middle of its two-phase mandate traffic never duplicates or
//! leaks a mandate (the quiesce audit stays exact) at any worker count,
//! and the fault log is bit-identical at 1, 2, and 8 workers; a wedged
//! node is condemned by the heartbeat supervisor and degrades the run
//! instead of hanging it; and a seeded loss+duplication+reorder+churn
//! soak terminates conserving on every seed.

use std::sync::Arc;

use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_net::{run_net_trial, run_net_trials_observed, ChaosEvent, ChaosKind, NetConfig};
use impatience_obs::{Event, MemorySink, Recorder};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::faults::{Churn, FaultConfig, MsgFaults};

fn config(faults: Option<FaultConfig>) -> SimConfig {
    let mut builder = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0);
    if let Some(fc) = faults {
        builder = builder.faults(fc);
    }
    builder.build()
}

/// Chaos kills timed to land inside the trial's active phase, while
/// mandate handoffs are in flight.
fn kill_config() -> NetConfig {
    NetConfig {
        chaos: vec![
            ChaosEvent {
                t: 250.0,
                node: 3,
                kind: ChaosKind::Kill { down_for: 80.0 },
            },
            ChaosEvent {
                t: 600.0,
                node: 7,
                kind: ChaosKind::Kill { down_for: 120.0 },
            },
        ],
        ..NetConfig::default()
    }
}

/// Run a chaotic lossy batch at the given worker count; return the
/// recorded fault events plus a digest of the stats and conservation.
fn chaos_log(workers: usize) -> (Vec<String>, String) {
    let config = config(Some(FaultConfig {
        seed: 11,
        msg: Some(MsgFaults {
            loss_p: 0.08,
            dup_p: 0.02,
            reorder_window: 2,
        }),
        ..FaultConfig::default()
    }));
    let source = ContactSource::homogeneous(12, 0.08, 1_200.0);
    let mut rec = Recorder::new(MemorySink::new());
    let agg = run_net_trials_observed(
        &config,
        &source,
        &kill_config(),
        4,
        42,
        Some(workers),
        &mut rec,
    )
    .expect("chaos batch must conserve");
    assert!(
        agg.stats.crashes >= 8,
        "both kills should fire in every trial, saw {} crashes",
        agg.stats.crashes
    );
    assert_eq!(agg.stats.crashes, agg.stats.restarts, "every kill restarts");
    assert!(agg.stats.handoffs_started > 0, "mandates should move");
    let log = rec
        .into_sink()
        .events
        .iter()
        .filter(|e| matches!(e, Event::Fault { .. }))
        .map(|e| e.to_json().to_string())
        .collect();
    (log, format!("{:?} {:?}", agg.stats, agg.conservation))
}

#[test]
fn kill_mid_handoff_conserves_at_1_2_and_8_workers() {
    let one = chaos_log(1);
    assert!(
        one.0.iter().any(|l| l.contains("net_msg_loss")),
        "loss faults should be logged"
    );
    assert_eq!(one, chaos_log(2), "2 workers diverged");
    assert_eq!(one, chaos_log(8), "8 workers diverged");
}

#[test]
fn stalled_node_degrades_instead_of_hanging() {
    let config = config(None);
    let source = ContactSource::homogeneous(10, 0.1, 1_500.0);
    let net = NetConfig {
        chaos: vec![ChaosEvent {
            t: 200.0,
            node: 2,
            kind: ChaosKind::Stall,
        }],
        ..NetConfig::default()
    };
    let out = run_net_trial(&config, &source, &net, 9).expect("stall must not break the audit");
    assert!(out.degraded, "a condemned node degrades the trial");
    assert_eq!(out.stats.stalls, 1, "the supervisor condemns exactly once");
    assert!(out.conservation.holds(), "conservation survives the stall");
}

#[test]
fn lossy_churn_soak_terminates_conserving_on_every_seed() {
    let config = config(Some(FaultConfig {
        seed: 3,
        churn: Some(Churn {
            mean_up: 300.0,
            mean_down: 40.0,
        }),
        msg: Some(MsgFaults {
            loss_p: 0.10,
            dup_p: 0.03,
            reorder_window: 3,
        }),
        ..FaultConfig::default()
    }));
    let source = ContactSource::homogeneous(12, 0.08, 1_500.0);
    let net = NetConfig::default();
    for seed in 0..6 {
        let out = run_net_trial(&config, &source, &net, seed)
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert!(out.conservation.holds(), "seed {seed} leaked mandates");
        assert!(
            out.metrics.fulfillments() > 0,
            "seed {seed} fulfilled nothing"
        );
    }
}
