//! Extensions beyond the paper's evaluated configurations: dedicated-node
//! populations in the simulator (enabling the `h(0⁺) = ∞` families) and
//! evolving demand (§7's "clustered and evolving demands" future work).

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::utility::DelayUtility;
use impatience_sim::config::SimConfig;
use impatience_sim::engine::run_trial;
use impatience_sim::policy::PolicyKind;

#[test]
fn dedicated_population_runs_time_critical_utilities() {
    // 10 throwbox servers + 40 clients; inverse-power impatience
    // (h(0+)=∞) is legal because clients can never self-serve.
    let nodes = 50;
    let servers = 10;
    let items = 20;
    let rho = 4;
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(1.5));
    let config = SimConfig::builder(items, rho)
        .demand(Popularity::pareto(items, 1.0).demand_rates(1.0))
        .profile(DemandProfile::uniform(items, nodes - servers))
        .utility(utility)
        .dedicated_servers(servers)
        .bin(200.0)
        .build();
    let source = ContactSource::homogeneous(nodes, 0.05, 2_000.0);
    let out = run_trial(&config, &source, PolicyKind::qcr_default(), 3);

    assert!(
        out.metrics.fulfillments() > 100,
        "requests should be served"
    );
    assert_eq!(
        out.metrics.immediate_hits, 0,
        "clients have no caches, so no self-service"
    );
    // The global cache budget is ρ·servers, not ρ·nodes.
    let total: u32 = out.final_replicas.iter().sum();
    assert_eq!(total as usize, rho * servers);
    // Time-critical gains are positive and finite.
    assert!(out.metrics.average_observed_rate(0.2) > 0.0);
}

#[test]
fn dedicated_static_opt_beats_uniform() {
    // The dedicated analytic OPT (Theorem 2, dedicated closed forms)
    // simulated against UNI on throwboxes.
    let nodes = 40;
    let servers = 8;
    let items = 16;
    let rho = 2;
    let mu = 0.05;
    let utility = Power::new(1.5);
    let system = SystemModel::dedicated(nodes - servers, servers, rho, mu);
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let opt = greedy_homogeneous(&system, &demand, &utility);

    let config = SimConfig::builder(items, rho)
        .demand(demand.clone())
        .profile(DemandProfile::uniform(items, nodes - servers))
        .utility(Arc::new(utility))
        .dedicated_servers(servers)
        .bin(300.0)
        .build();
    let source = ContactSource::homogeneous(nodes, mu, 3_000.0);
    let run = |counts, label| {
        run_trials(
            &config,
            &source,
            &PolicyKind::Static { label, counts },
            5,
            17,
        )
        .mean_rate
    };
    let u_opt = run(opt, "OPT");
    let u_uni = run(uniform(items, servers, rho), "UNI");
    assert!(
        u_opt > u_uni,
        "dedicated OPT ({u_opt:.4}) should beat UNI ({u_uni:.4})"
    );
}

#[test]
fn qcr_adapts_to_a_demand_shift_but_pinned_opt_cannot() {
    // §7: "distributed mechanisms like QCR naturally adapt to a dynamic
    // demand". Popularity reverses halfway through; compare QCR's final
    // allocation against the post-shift demand, and its utility against
    // an OPT pinned for the *pre-shift* demand.
    let items = 30;
    let nodes = 50;
    let rho = 5;
    let mu = 0.05;
    let duration = 8_000.0;
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(1.0));

    let before = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let reversed = DemandRates::new(before.rates().iter().rev().copied().collect());

    let config = SimConfig::builder(items, rho)
        .demand(before.clone())
        .utility(utility.clone())
        .demand_shift(duration / 2.0, reversed.clone())
        .bin(250.0)
        .warmup_fraction(0.6) // summarize the post-shift regime
        .build();
    let source = ContactSource::homogeneous(nodes, mu, duration);

    let system = SystemModel::pure_p2p(nodes, rho, mu);
    let stale_opt = greedy_homogeneous(&system, &before, utility.as_ref());
    let fresh_opt = greedy_homogeneous(&system, &reversed, utility.as_ref());

    let qcr = run_trials(&config, &source, &PolicyKind::qcr_default(), 6, 5);
    let stale = run_trials(
        &config,
        &source,
        &PolicyKind::Static {
            label: "OPT-stale",
            counts: stale_opt,
        },
        6,
        5,
    );
    let fresh = run_trials(
        &config,
        &source,
        &PolicyKind::Static {
            label: "OPT-fresh",
            counts: fresh_opt.clone(),
        },
        6,
        5,
    );

    assert!(
        qcr.mean_rate > stale.mean_rate,
        "post-shift, adaptive QCR ({:.4}) must beat the stale pinned OPT ({:.4})",
        qcr.mean_rate,
        stale.mean_rate
    );
    assert!(
        qcr.mean_rate <= fresh.mean_rate * 1.05,
        "QCR ({:.4}) should not beat the fresh oracle ({:.4}) by more than noise",
        qcr.mean_rate,
        fresh.mean_rate
    );

    // Final allocation tracks the *new* demand ordering: the item that
    // became most popular holds more replicas than the dethroned one.
    let final_x = &qcr.mean_final_replicas;
    assert!(
        final_x[items - 1] > final_x[0],
        "replicas should have migrated to the new head ({:.1} vs {:.1})",
        final_x[items - 1],
        final_x[0]
    );
}

#[test]
fn demand_shift_to_zero_quiesces_arrivals() {
    let items = 5;
    let config = SimConfig::builder(items, 2)
        .demand(Popularity::uniform(items).demand_rates(2.0))
        .utility(Arc::new(Step::new(10.0)))
        .demand_shift(100.0, DemandRates::new(vec![0.0; items]))
        .bin(50.0)
        .build();
    let source = ContactSource::homogeneous(10, 0.05, 1_000.0);
    let out = run_trial(&config, &source, PolicyKind::qcr_default(), 1);
    // ~2/min for 100 min, then silence.
    assert!(out.metrics.requests_created > 120);
    assert!(
        out.metrics.requests_created < 350,
        "arrivals should stop at the shift ({} created)",
        out.metrics.requests_created
    );
}

#[test]
fn clustered_demand_profile_biases_origins() {
    // Community-clustered π: items are requested (and thus fulfilled)
    // predominantly within their home community.
    let items = 4;
    let nodes = 12;
    let profile = DemandProfile::clustered(items, nodes, 4, 20.0);
    let config = SimConfig::builder(items, 2)
        .demand(Popularity::uniform(items).demand_rates(1.0))
        .profile(profile)
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .build();
    let source = ContactSource::homogeneous(nodes, 0.1, 1_000.0);
    let out = run_trial(&config, &source, PolicyKind::qcr_default(), 9);
    assert!(out.metrics.requests_created > 500);
}
