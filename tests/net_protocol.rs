//! Contracts of the distributed QCR runtime's message layer: the wire
//! codec round-trips every frame and rejects truncation/corruption with
//! typed errors; the message-fault family is inert on the in-process
//! engine (bit-identical trajectories with or without it attached); the
//! distributed batch is deterministic per seed and independent of the
//! worker count; message loss degrades welfare boundedly instead of
//! wedging; and the clean-transport runtime statistically matches the
//! engine under the oracle's paired-seed differential.

use std::sync::Arc;

use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_net::{run_net_trials_observed, Msg, NetConfig, WireError};
use impatience_obs::Recorder;
use impatience_oracle::net_vs_engine;
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::run_trial;
use impatience_sim::faults::{FaultConfig, MsgFaults};
use impatience_sim::policy::PolicyKind;
use proptest::prelude::*;

fn small_config(items: usize, rho: usize) -> SimConfig {
    SimConfig::builder(items, rho)
        .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .build()
}

fn with_msg_faults(mut config: SimConfig, msg: MsgFaults) -> SimConfig {
    config.faults = Some(FaultConfig {
        seed: 5,
        msg: Some(msg),
        ..FaultConfig::default()
    });
    config
}

// ---------------------------------------------------------------- codec

fn arb_u32s(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..1_000_000, 0..max_len)
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            0u64..u64::MAX,
            arb_u32s(24),
            proptest::collection::vec((0u32..1_000_000, 0u64..1_000_000_000), 0..24),
        )
            .prop_map(|(window, items, mandates)| Msg::CacheAdvert {
                window,
                items,
                mandates,
            }),
        (0u64..u64::MAX, arb_u32s(24)).prop_map(|(window, wants)| Msg::Request { window, wants }),
        (0u64..u64::MAX, arb_u32s(24)).prop_map(|(window, grants)| Msg::Fulfill { window, grants }),
        (
            0u64..u64::MAX,
            0u32..1_000_000,
            0u64..1_000_000_000,
            0u32..2
        )
            .prop_map(|(xfer, item, count, execute)| Msg::MandateHandoff {
                xfer,
                item,
                count,
                execute: execute == 1,
            }),
        (0u64..u64::MAX, 0u64..1_000_000_000)
            .prop_map(|(xfer, consumed)| Msg::MandateAck { xfer, consumed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_every_frame(msg in arb_msg()) {
        let bytes = msg.encode();
        prop_assert_eq!(Msg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_frames_fail_typed(msg in arb_msg(), cut in 0usize..64) {
        let bytes = msg.encode();
        let cut = cut % bytes.len();
        // Every prefix fails with a typed [`WireError`] — truncation,
        // bad magic, checksum mismatch — never a panic or a bogus frame.
        let decoded: Result<Msg, WireError> = Msg::decode(&bytes[..cut]);
        prop_assert!(decoded.is_err());
    }

    #[test]
    fn corrupted_frames_fail_typed(msg in arb_msg(), pos in 0usize..4096, bit in 0u32..8) {
        let mut bytes = msg.encode();
        let len = bytes.len();
        bytes[pos % len] ^= 1u8 << bit;
        // Any single-bit flip breaks the magic, the kind, the payload
        // checksum, or a length prefix — never yields a clean decode of
        // a *different* frame, and never panics.
        if let Ok(decoded) = Msg::decode(&bytes) {
            prop_assert_eq!(decoded, msg);
        }
    }
}

// --------------------------------------------- engine-inert fault family

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The message-fault family is consumed only by the net transport:
    // attaching an *active* config to the in-process engine must leave
    // its trajectory bit-for-bit unchanged.
    #[test]
    fn msg_faults_are_inert_on_the_engine(
        seed in 0u64..500,
        loss in 0.01f64..0.9,
        dup in 0.0f64..0.5,
        reorder in 0u32..8,
    ) {
        let clean = small_config(8, 2);
        let faulty = with_msg_faults(
            small_config(8, 2),
            MsgFaults { loss_p: loss, dup_p: dup, reorder_window: reorder },
        );
        let source = ContactSource::homogeneous(10, 0.08, 600.0);
        let a = run_trial(&clean, &source, PolicyKind::qcr_default(), seed);
        let b = run_trial(&faulty, &source, PolicyKind::qcr_default(), seed);
        prop_assert_eq!(a.final_replicas, b.final_replicas);
        prop_assert_eq!(
            a.metrics.observed_rate_series(),
            b.metrics.observed_rate_series()
        );
    }
}

// ------------------------------------------------- batch determinism

fn batch(config: &SimConfig, source: &ContactSource, workers: usize) -> (Vec<f64>, String) {
    let agg = run_net_trials_observed(
        config,
        source,
        &NetConfig::default(),
        6,
        42,
        Some(workers),
        &mut Recorder::disabled(),
    )
    .expect("batch must conserve");
    let stats = format!("{:?} {:?}", agg.stats, agg.conservation);
    (agg.rates, stats)
}

#[test]
fn net_batches_are_worker_count_independent() {
    let config = with_msg_faults(
        small_config(10, 2),
        MsgFaults {
            loss_p: 0.08,
            dup_p: 0.02,
            reorder_window: 3,
        },
    );
    let source = ContactSource::homogeneous(12, 0.08, 1_000.0);
    let one = batch(&config, &source, 1);
    assert_eq!(one, batch(&config, &source, 2), "2 workers diverged");
    assert_eq!(one, batch(&config, &source, 8), "8 workers diverged");
}

// ------------------------------------------------------- bounded loss

#[test]
fn loss_degrades_welfare_boundedly() {
    let source = ContactSource::homogeneous(12, 0.08, 1_500.0);
    let clean = batch(&small_config(10, 2), &source, 2).0;
    let lossy = batch(
        &with_msg_faults(
            small_config(10, 2),
            MsgFaults {
                loss_p: 0.10,
                dup_p: 0.02,
                reorder_window: 3,
            },
        ),
        &source,
        2,
    )
    .0;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (c, l) = (mean(&clean), mean(&lossy));
    assert!(c > 0.0, "clean batch should fulfill");
    assert!(
        l > 0.5 * c,
        "10% loss should be mostly masked by retries, got {l} vs clean {c}"
    );
}

// ----------------------------------------------- differential agreement

#[test]
fn clean_transport_matches_engine_within_clt_budget() {
    let config = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(1.0))
        .utility(Arc::new(Step::new(10.0)))
        .bin(60.0)
        .warmup_fraction(0.25)
        .build();
    let source = ContactSource::homogeneous(12, 0.1, 1_200.0);
    let cmp = net_vs_engine(&config, &source, &NetConfig::default(), 5, 42, 3.5)
        .expect("differential batch must conserve");
    assert!(
        cmp.agrees(),
        "distributed QCR diverged from the engine: {}",
        cmp.describe()
    );
}
