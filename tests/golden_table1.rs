//! Golden snapshot of the paper's Table 1 closed forms.
//!
//! `results/table1_closed_forms.csv` (the `table1_closed_forms` bench
//! binary) cross-validates each closed form against numeric quadrature;
//! this test pins the *values themselves* so an accidental change to any
//! `gain`/`φ`/`ψ` implementation — even one that stays self-consistent
//! with its own numeric integral — trips CI. All values are evaluated at
//! the CSV's operating point μ = 0.05, |S| = 50.

use impatience_core::utility::{DelayUtility, Exponential, NegLog, Power, Step};

const MU: f64 = 0.05;
const SERVERS: f64 = 50.0;

/// Closed-form values are deterministic arithmetic — the tolerance only
/// absorbs platform differences in `exp`/`powf`/`ln` rounding.
const REL_TOL: f64 = 1e-12;

/// The density part `c(t) = −h′(t)` goes through a central finite
/// difference for families that don't override it, so it gets a looser
/// explicit tolerance.
const C_REL_TOL: f64 = 1e-9;

/// `family, quantity, point, expected` — the `closed` column of
/// `results/table1_closed_forms.csv`, verbatim. For `gain` the point is
/// the replica count `x` (so λ = μ·x), for `phi` it is `x`, for `psi`
/// the query count `y`.
const GOLDEN: &str = "\
step(tau=1),gain,1,0.04877057549928599
step(tau=1),gain,5,0.22119921692859512
step(tau=1),gain,25,0.7134952031398099
step(tau=1),phi,1,0.047561471225035706
step(tau=1),phi,5,0.03894003915357025
step(tau=1),phi,25,0.014325239843009506
step(tau=1),psi,2,0.35813099607523763
step(tau=1),psi,10,0.19470019576785122
step(tau=1),psi,50,0.047561471225035706
step(tau=10),gain,1,0.3934693402873666
step(tau=10),gain,5,0.9179150013761013
step(tau=10),gain,25,0.999996273346828
step(tau=10),phi,1,0.3032653298563167
step(tau=10),phi,5,0.0410424993119494
step(tau=10),phi,25,0.0000018633265860393355
step(tau=10),psi,2,0.00004658316465098338
step(tau=10),psi,10,0.205212496559747
step(tau=10),psi,50,0.3032653298563167
exp(nu=0.1),gain,1,0.3333333333333333
exp(nu=0.1),gain,5,0.7142857142857143
exp(nu=0.1),gain,25,0.9259259259259258
exp(nu=0.1),phi,1,0.2222222222222222
exp(nu=0.1),phi,5,0.040816326530612256
exp(nu=0.1),phi,25,0.0027434842249657067
exp(nu=0.1),psi,2,0.06858710562414266
exp(nu=0.1),psi,10,0.20408163265306123
exp(nu=0.1),psi,50,0.2222222222222222
exp(nu=1),gain,1,0.047619047619047616
exp(nu=1),gain,5,0.2
exp(nu=1),gain,25,0.5555555555555556
exp(nu=1),phi,1,0.045351473922902494
exp(nu=1),phi,5,0.032
exp(nu=1),phi,25,0.009876543209876543
exp(nu=1),psi,2,0.24691358024691357
exp(nu=1),psi,10,0.16
exp(nu=1),psi,50,0.045351473922902494
power(alpha=-1),gain,1,-400.0000000000001
power(alpha=-1),gain,5,-16.000000000000007
power(alpha=-1),gain,25,-0.6400000000000003
power(alpha=-1),phi,1,800.0000000000002
power(alpha=-1),phi,5,6.400000000000002
power(alpha=-1),phi,25,0.05120000000000001
power(alpha=-1),psi,2,1.2800000000000007
power(alpha=-1),psi,10,32.000000000000014
power(alpha=-1),psi,50,800.0000000000005
power(alpha=0),gain,1,-20.000000000000004
power(alpha=0),gain,5,-4.000000000000001
power(alpha=0),gain,25,-0.8000000000000003
power(alpha=0),phi,1,20.000000000000004
power(alpha=0),phi,5,0.8000000000000002
power(alpha=0),phi,25,0.03200000000000001
power(alpha=0),psi,2,0.8000000000000003
power(alpha=0),psi,10,4.000000000000002
power(alpha=0),psi,50,20.000000000000007
power(alpha=0.5),gain,1,-7.926654595212027
power(alpha=0.5),gain,5,-3.5449077018110344
power(alpha=0.5),gain,25,-1.5853309190424054
power(alpha=0.5),phi,1,3.9633272976060137
power(alpha=0.5),phi,5,0.3544907701811034
power(alpha=0.5),phi,25,0.03170661838084811
power(alpha=0.5),psi,2,0.7926654595212027
power(alpha=0.5),psi,10,1.7724538509055172
power(alpha=0.5),psi,50,3.9633272976060137
power(alpha=1.5),gain,1,0.7926654595212022
power(alpha=1.5),gain,5,1.7724538509055159
power(alpha=1.5),gain,25,3.963327297606011
power(alpha=1.5),phi,1,0.3963327297606011
power(alpha=1.5),phi,5,0.1772453850905516
power(alpha=1.5),phi,25,0.07926654595212022
power(alpha=1.5),psi,2,1.9816636488030057
power(alpha=1.5),psi,10,0.886226925452758
power(alpha=1.5),psi,50,0.39633272976060113
neglog,gain,1,-2.418516608652458
neglog,gain,5,-0.8090786962183577
neglog,gain,25,0.8003592162157427
neglog,phi,1,1
neglog,phi,5,0.2
neglog,phi,25,0.04
neglog,psi,2,1
neglog,psi,10,1
neglog,psi,50,1";

/// Pinned values of the differential delay-utility density `c(t)` at
/// t = 2 (the step family's `c` is a Dirac at τ with zero density — its
/// singular mass is pinned through `gain`/`phi` above and the jump
/// check in the test body). These are golden full-precision literals,
/// some of which happen to approximate named constants (2^{-1/2} for
/// power(α=0.5)) — that is the math, not a rounding mistake.
#[allow(clippy::approx_constant, clippy::excessive_precision)]
const GOLDEN_C: &[(&str, f64)] = &[
    ("exp(nu=0.1)", 0.08187307530779819),
    ("exp(nu=1)", 0.1353352832366127),
    ("power(alpha=-1)", 2.0),
    ("power(alpha=0)", 1.0),
    ("power(alpha=0.5)", 0.7071067811865476),
    ("power(alpha=1.5)", 0.3535533905932738),
    ("neglog", 0.5),
];

fn utility_for(family: &str) -> Box<dyn DelayUtility> {
    match family {
        "step(tau=1)" => Box::new(Step::new(1.0)),
        "step(tau=10)" => Box::new(Step::new(10.0)),
        "exp(nu=0.1)" => Box::new(Exponential::new(0.1)),
        "exp(nu=1)" => Box::new(Exponential::new(1.0)),
        "power(alpha=-1)" => Box::new(Power::new(-1.0)),
        "power(alpha=0)" => Box::new(Power::new(0.0)),
        "power(alpha=0.5)" => Box::new(Power::new(0.5)),
        "power(alpha=1.5)" => Box::new(Power::new(1.5)),
        "neglog" => Box::new(NegLog::new()),
        other => panic!("unknown family in golden table: {other}"),
    }
}

fn assert_close(family: &str, quantity: &str, point: f64, got: f64, expected: f64, tol: f64) {
    let err = (got - expected).abs() / expected.abs().max(1.0);
    assert!(
        err <= tol,
        "{family} {quantity}({point}) = {got:?}, golden {expected:?} (rel err {err:.3e} > {tol:.0e})"
    );
}

#[test]
fn table1_closed_forms_match_golden_snapshot() {
    let mut rows = 0;
    for line in GOLDEN.lines() {
        let mut fields = line.split(',');
        let family = fields.next().expect("family");
        let quantity = fields.next().expect("quantity");
        let point: f64 = fields.next().expect("point").parse().expect("point value");
        let expected: f64 = fields
            .next()
            .expect("expected")
            .parse()
            .expect("golden value");
        let u = utility_for(family);
        let got = match quantity {
            "gain" => u.gain(MU * point),
            "phi" => u.phi(point, MU),
            "psi" => u.psi(point, SERVERS, MU),
            other => panic!("unknown quantity {other}"),
        };
        assert_close(family, quantity, point, got, expected, REL_TOL);
        rows += 1;
    }
    assert_eq!(rows, 81, "golden table lost rows");
}

#[test]
fn differential_utility_density_matches_golden_values() {
    for &(family, expected) in GOLDEN_C {
        let u = utility_for(family);
        assert_close(family, "c", 2.0, u.c(2.0), expected, C_REL_TOL);
    }
    // The step family's c is the Dirac δ_τ: zero density away from the
    // deadline, unit mass across it.
    let step = Step::new(1.0);
    assert_eq!(step.c(2.0), 0.0, "step density away from τ");
    assert_close(
        "step(tau=1)",
        "jump",
        1.0,
        step.h(0.999) - step.h(1.001),
        1.0,
        1e-12,
    );
}
