//! Conformance satellites for the verification oracle: Theorem 1's
//! (1−1/e) guarantee checked against true brute-force optima, Theorem 2
//! exactness of the homogeneous greedy, Property 1's equilibrium
//! condition for every utility family, and a deterministic slice of the
//! scenario matrix.
//!
//! Instances stay tiny (|I| ≤ 5, ρ·|S| ≤ 10) so `brute_force_*` is
//! exhaustive and the true OPT — not a heuristic — anchors every bound.

use impatience_core::demand::{DemandProfile, DemandRates};
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::het_greedy::greedy_heterogeneous;
use impatience_core::solver::relaxed::try_relaxed_optimum;
use impatience_core::types::SystemModel;
use impatience_core::utility::{Custom, DelayUtility, Exponential, NegLog, Power, Step};
use impatience_core::welfare::{
    social_welfare_heterogeneous, social_welfare_homogeneous, ContactRates, HeterogeneousSystem,
};
use impatience_obs::Recorder;
use impatience_oracle::{
    brute_force_heterogeneous, brute_force_homogeneous, run_matrix, CheckStatus, MatrixOptions,
};
use proptest::prelude::*;

const ONE_MINUS_INV_E: f64 = 1.0 - 1.0 / std::f64::consts::E;

/// A random *non-negative bounded* utility: the class Theorem 1's
/// (1−1/e) bound is stated for (h(0⁺) finite, h(∞) = 0).
fn arb_bounded_utility() -> impl Strategy<Value = Box<dyn DelayUtility>> {
    prop_oneof![
        (1.0f64..20.0).prop_map(|tau| Box::new(Step::new(tau)) as Box<dyn DelayUtility>),
        (0.05f64..2.0).prop_map(|nu| Box::new(Exponential::new(nu)) as Box<dyn DelayUtility>),
    ]
}

/// Random demand rates for a small catalog.
fn arb_demand(items: usize) -> impl Strategy<Value = DemandRates> {
    proptest::collection::vec(0.05f64..3.0, items).prop_map(DemandRates::new)
}

/// A random 4-node pure-P2P heterogeneous system with pairwise rates
/// drawn independently — small enough that `brute_force_heterogeneous`
/// enumerates all (1 + C(4,1) + C(4,2))⁴ cache configurations.
fn arb_p2p_system() -> impl Strategy<Value = HeterogeneousSystem> {
    proptest::collection::vec(0.01f64..0.15, 6).prop_map(|pair_rates| {
        let mut next = pair_rates.into_iter();
        let rates = ContactRates::from_fn(4, |_, _| next.next().expect("6 unordered pairs"));
        HeterogeneousSystem::pure_p2p(rates, 2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 1: on heterogeneous instances the CELF greedy is within
    /// (1−1/e) of the *true* optimum, and never above it.
    #[test]
    fn theorem1_greedy_within_one_minus_inv_e_of_brute_opt(
        system in arb_p2p_system(),
        demand in arb_demand(4),
        utility in arb_bounded_utility(),
    ) {
        let profile = DemandProfile::uniform(4, 4);
        let (_, w_opt) = brute_force_heterogeneous(&system, &demand, &profile, utility.as_ref());
        let greedy = greedy_heterogeneous(&system, &demand, &profile, utility.as_ref());
        let w_greedy =
            social_welfare_heterogeneous(&system, &greedy, &demand, &profile, utility.as_ref());
        let scale = w_opt.abs().max(1.0);
        prop_assert!(
            w_greedy <= w_opt + 1e-9 * scale,
            "greedy {w_greedy} exceeds exhaustive OPT {w_opt}"
        );
        prop_assert!(
            w_greedy >= ONE_MINUS_INV_E * w_opt - 1e-9 * scale,
            "Theorem 1 violated: greedy {w_greedy} < (1−1/e)·{w_opt}"
        );
    }

    /// Cost-type utilities (here Power with α ∈ (0, 1)): the ratio bound
    /// is meaningless on negative welfare, but greedy must still be
    /// dominated by OPT and reach a finite value whenever OPT does.
    #[test]
    fn cost_type_greedy_is_dominated_by_brute_opt(
        system in arb_p2p_system(),
        demand in arb_demand(4),
        alpha in 0.1f64..0.9,
    ) {
        let utility = Power::new(alpha);
        let profile = DemandProfile::uniform(4, 4);
        let (_, w_opt) = brute_force_heterogeneous(&system, &demand, &profile, &utility);
        let greedy = greedy_heterogeneous(&system, &demand, &profile, &utility);
        let w_greedy = social_welfare_heterogeneous(&system, &greedy, &demand, &profile, &utility);
        let scale = w_opt.abs().max(1.0);
        prop_assert!(w_greedy <= w_opt + 1e-9 * scale);
        prop_assert!(
            w_opt == f64::NEG_INFINITY || w_greedy > f64::NEG_INFINITY,
            "greedy stuck at −∞ while OPT = {w_opt} is finite"
        );
    }

    /// Theorem 2: under homogeneous contacts the greedy allocation is
    /// *exactly* optimal — it matches the exhaustive optimum's welfare,
    /// not just its approximation bound.
    #[test]
    fn theorem2_homogeneous_greedy_matches_brute_force_exactly(
        servers in 2usize..6,
        rho in 1usize..3,
        demand in arb_demand(4),
        utility in arb_bounded_utility(),
        mu in 0.01f64..0.2,
    ) {
        let system = SystemModel::pure_p2p(servers, rho, mu);
        let (_, w_brute) = brute_force_homogeneous(&system, &demand, utility.as_ref());
        let counts = greedy_homogeneous(&system, &demand, utility.as_ref());
        let w_greedy =
            social_welfare_homogeneous(&system, &demand, utility.as_ref(), &counts.as_f64());
        let gap = (w_brute - w_greedy).abs() / w_brute.abs().max(1.0);
        prop_assert!(gap <= 1e-9, "greedy {w_greedy} vs brute {w_brute} (gap {gap:.3e})");
    }
}

/// Property 1 at the relaxed optimum: `d_i·φ(x̃_i)` equals the water
/// level λ across all interior items, for every utility family in the
/// paper's Table 1 (plus a quadrature-driven custom one). The residual
/// must sit below the solver's own convergence tolerance.
#[test]
fn property1_equilibrium_residual_below_solver_tolerance() {
    let families: Vec<(&str, Box<dyn DelayUtility>)> = vec![
        ("step", Box::new(Step::new(5.0))),
        ("exp", Box::new(Exponential::new(0.5))),
        ("power", Box::new(Power::new(0.5))),
        ("neglog", Box::new(NegLog::new())),
        (
            "custom",
            Box::new(
                Custom::new(|t| 1.0 / (1.0 + t), 1.0, 0.0)
                    .with_derivative(|t| 1.0 / ((1.0 + t) * (1.0 + t))),
            ),
        ),
    ];
    let mut rng = Xoshiro256::seed_from_u64(0x1EA);
    for (name, utility) in &families {
        // Time-critical families (h(0⁺) = ∞) are restricted to dedicated
        // populations; the relaxed program itself only sees |S|, ρ, μ.
        let system = if utility.requires_dedicated() {
            SystemModel::dedicated(4, 6, 2, 0.05)
        } else {
            SystemModel::pure_p2p(8, 2, 0.05)
        };
        let demand = DemandRates::new((0..6).map(|_| rng.range(0.2, 2.0)).collect());
        let relaxed = try_relaxed_optimum(&system, &demand, utility.as_ref())
            .unwrap_or_else(|e| panic!("{name}: relaxed solver failed: {e}"));
        let s = system.servers() as f64;
        let interior = relaxed
            .x
            .iter()
            .filter(|&&x| x > 1e-9 && x < s - 1e-9)
            .count();
        assert!(
            interior >= 2,
            "{name}: only {interior} interior item(s); equilibrium check is vacuous"
        );
        let residual = relaxed.equilibrium_residual(&system, &demand, utility.as_ref());
        assert!(
            residual < 1e-6,
            "{name}: equilibrium residual {residual:.3e} above solver tolerance 1e-6"
        );
    }
}

/// A deterministic slice of the conformance matrix: stable cell naming,
/// reproducible seeds, and zero invariant violations.
#[test]
fn matrix_slice_is_stable_and_violation_free() {
    let opts = MatrixOptions::quick(7).with_limit(10);
    let mut rec = Recorder::disabled();
    let records = run_matrix(&opts, &mut rec);
    assert_eq!(records.len(), 10);
    assert_eq!(records[0].name, "step/dedicated/hom/clean");
    for r in &records {
        assert_eq!(r.failed(), 0, "scenario {} reported a violation", r.name);
        for check in &r.results {
            if check.status == CheckStatus::Fail {
                panic!("{}/{}: {}", r.name, check.name, check.detail);
            }
        }
    }
    // Bit-level reproducibility of the slice from the same base seed.
    let again = run_matrix(&opts, &mut Recorder::disabled());
    for (a, b) in records.iter().zip(&again) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.name, b.name);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.status, rb.status, "{}/{}", a.name, ra.name);
            assert_eq!(
                ra.value.to_bits(),
                rb.value.to_bits(),
                "{}/{} value drifted",
                a.name,
                ra.name
            );
        }
    }
}
