//! Property-based tests for the incremental re-optimization solver:
//! random instances and random delta sequences, asserting (a) exact mode
//! is bit-identical to from-scratch greedy at every step, (b) bounded-
//! staleness mode only reuses allocations whose welfare a certificate
//! proves within ε of fresh, and (c) certificates stay sound under
//! adversarial demand reversals and withdrawals. A golden test pins the
//! solver layer of the `ext_dynamic_demand` experiment to the two greedy
//! solves the engine historically performed.

use std::sync::Arc;

use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::numeric::tolerances;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::incremental::{Delta, DeltaOutcome, DeltaSolver};
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Exponential, Power, Step};
use impatience_core::welfare::social_welfare_homogeneous;
use proptest::prelude::*;

/// A random utility together with whether it needs a dedicated
/// population (`h(0⁺) = ∞` families).
fn arb_utility() -> impl Strategy<Value = Arc<dyn DelayUtility>> {
    prop_oneof![
        (0.5f64..30.0).prop_map(|tau| Arc::new(Step::new(tau)) as Arc<dyn DelayUtility>),
        (0.05f64..2.0).prop_map(|nu| Arc::new(Exponential::new(nu)) as Arc<dyn DelayUtility>),
        (-1.5f64..0.9).prop_map(|a| Arc::new(Power::new(a)) as Arc<dyn DelayUtility>),
    ]
}

/// A random small homogeneous instance: population shape, capacity,
/// contact rate, and initial demand. Cost-type utilities get a dedicated
/// population (they reject pure P2P by construction).
#[derive(Debug, Clone)]
struct Instance {
    system: SystemModel,
    demand: DemandRates,
    utility: Arc<dyn DelayUtility>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        (
            arb_utility(),
            2usize..11, // items
            3usize..13, // servers / nodes
            1usize..5,  // rho
        ),
        (
            0.01f64..0.1,                                  // mu
            0usize..2,                                     // dedicated?
            proptest::collection::vec(0.0f64..5.0, 2..11), // raw rates
        ),
    )
        .prop_map(
            |((utility, items, servers, rho), (mu, dedicated, mut raw))| {
                raw.resize(items, 0.7);
                let system = if dedicated == 1 || utility.requires_dedicated() {
                    SystemModel::dedicated(servers + 2, servers, rho, mu)
                } else {
                    SystemModel::pure_p2p(servers, rho, mu)
                };
                Instance {
                    system,
                    demand: DemandRates::new(raw),
                    utility,
                }
            },
        )
}

/// Random delta sequence over an `items`-sized catalog: demand nudges,
/// withdrawals to zero, and occasional budget changes.
fn arb_deltas(items: usize) -> impl Strategy<Value = Vec<Delta>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..items, 0.01f64..5.0).prop_map(|(item, rate)| Delta::Demand { item, rate }),
            (0usize..items, 0.01f64..5.0).prop_map(|(item, rate)| Delta::Demand { item, rate }),
            (0usize..items).prop_map(|item| Delta::Demand { item, rate: 0.0 }),
            (1usize..5).prop_map(Delta::CacheBudget),
        ],
        1..13,
    )
}

fn scratch(inst: &Instance, solver: &DeltaSolver) -> impatience_core::allocation::ReplicaCounts {
    let demand = DemandRates::new(solver.rates().to_vec());
    greedy_homogeneous(solver.system(), &demand, inst.utility.as_ref())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Exact mode: every delta step lands on the scratch greedy
    /// allocation bit-for-bit, whatever the instance or sequence.
    #[test]
    fn exact_mode_is_bit_identical_to_scratch(
        inst in arb_instance(),
        seq in arb_deltas(10),
    ) {
        let mut solver = DeltaSolver::new(inst.system, &inst.demand, Arc::clone(&inst.utility));
        prop_assert_eq!(solver.counts(), &scratch(&inst, &solver));
        for (step, delta) in seq.into_iter().enumerate() {
            let delta = clamp_to_items(delta, inst.demand.items());
            let out = solver.apply(&[delta]).expect("exact deltas cannot fail");
            prop_assert!(
                matches!(out, DeltaOutcome::Resolved { .. }),
                "exact mode produced {out:?}"
            );
            prop_assert!(
                solver.counts() == &scratch(&inst, &solver),
                "diverged at step {step}"
            );
        }
    }

    /// (b) + (c) Bounded-staleness mode: an accepted certificate implies
    /// the stale welfare really is within ε·scale of a fresh solve, and
    /// a rejected one falls back to the exact (bit-identical) path.
    #[test]
    fn staleness_certificates_are_sound(
        inst in arb_instance(),
        seq in arb_deltas(10),
        eps in 0.001f64..0.2,
    ) {
        let mut solver = DeltaSolver::new(inst.system, &inst.demand, Arc::clone(&inst.utility))
            .with_staleness(eps);
        for delta in seq {
            let delta = clamp_to_items(delta, inst.demand.items());
            let out = solver.apply(&[delta]).expect("deltas cannot fail");
            let fresh = scratch(&inst, &solver);
            match out {
                DeltaOutcome::CertifiedStale(cert) => {
                    prop_assert!(cert.accepted);
                    prop_assert!(cert.gap <= cert.eps * cert.scale);
                    let current = DemandRates::new(solver.rates().to_vec());
                    let w_fresh = social_welfare_homogeneous(
                        solver.system(), &current, inst.utility.as_ref(), &fresh.as_f64());
                    let slack = tolerances::WELFARE_REL * cert.scale;
                    prop_assert!(
                        w_fresh - cert.stale_welfare <= cert.gap + slack,
                        "true gap {} exceeds certified {}",
                        w_fresh - cert.stale_welfare, cert.gap
                    );
                    // (b): within ε of fresh, on the certificate's scale.
                    prop_assert!(
                        w_fresh - cert.stale_welfare <= eps * cert.scale + slack,
                        "stale welfare drifted past ε"
                    );
                }
                _ => prop_assert_eq!(solver.counts(), &fresh),
            }
        }
    }

    /// (c) Adversarial shrink: reversing a popularity ranking in one
    /// batch is the worst realistic staleness event. At a tight ε it
    /// must either fall back to an exact solve or certify soundly —
    /// never silently keep a bad allocation.
    #[test]
    fn demand_reversal_never_slips_past_a_tight_certificate(
        items in 4usize..11,
        nodes in 4usize..13,
        rho in 1usize..4,
        omega in 0.5f64..1.5,
    ) {
        let system = SystemModel::pure_p2p(nodes, rho, 0.05);
        let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(5.0));
        let before = Popularity::pareto(items, omega).demand_rates(1.0);
        let after: Vec<f64> = before.rates().iter().rev().copied().collect();
        let mut solver = DeltaSolver::new(system, &before, Arc::clone(&utility))
            .with_staleness(0.01);
        let reversal: Vec<Delta> = after
            .iter()
            .enumerate()
            .map(|(item, &rate)| Delta::Demand { item, rate })
            .collect();
        let out = solver.apply(&reversal).expect("demand deltas cannot fail");
        let demand = DemandRates::new(after);
        let fresh = greedy_homogeneous(&system, &demand, utility.as_ref());
        match out {
            DeltaOutcome::CertifiedStale(cert) => {
                let w_fresh =
                    social_welfare_homogeneous(&system, &demand, utility.as_ref(), &fresh.as_f64());
                prop_assert!(
                    w_fresh - cert.stale_welfare
                        <= cert.gap + tolerances::WELFARE_REL * cert.scale,
                    "reversal certified unsoundly"
                );
            }
            _ => prop_assert_eq!(solver.counts(), &fresh),
        }
    }
}

/// Proptest draws item indices from `0..10`; real catalogs may be
/// smaller, so fold the index into range instead of filtering cases.
fn clamp_to_items(delta: Delta, items: usize) -> Delta {
    match delta {
        Delta::Demand { item, rate } => Delta::Demand {
            item: item % items,
            rate,
        },
        other => other,
    }
}

/// Golden solver-layer regression for `ext_dynamic_demand`
/// (experiments/ext_dynamic_demand.toml: 50 items, 50 nodes, ρ=5,
/// μ=0.05, step:1, pareto demand reversed at mid-run): the engine now
/// derives OPT-stale and OPT-fresh from one DeltaSolver, and both must
/// equal the two from-scratch greedy solves it historically used — which
/// keeps the committed CSV byte-identical.
#[test]
fn dynamic_demand_solver_layer_is_pinned() {
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let utility = Step::new(1.0);
    let before = Popularity::pareto(50, 1.0).demand_rates(1.0);
    let after = DemandRates::new(before.rates().iter().rev().copied().collect());

    let mut solver = DeltaSolver::new(system, &before, Arc::new(Step::new(1.0)));
    let stale = solver.counts().clone();
    let shift: Vec<Delta> = after
        .rates()
        .iter()
        .enumerate()
        .map(|(item, &rate)| Delta::Demand { item, rate })
        .collect();
    solver
        .apply(&shift)
        .expect("the demand shift cannot fail to solve");

    assert_eq!(stale, greedy_homogeneous(&system, &before, &utility));
    assert_eq!(
        *solver.counts(),
        greedy_homogeneous(&system, &after, &utility)
    );
}
