//! Worker-count bit-identity contracts of the intra-trial sharded
//! engine, mirroring the discipline of `fault_tolerance.rs`: the same
//! seed must produce the identical fault log, welfare trajectory, and
//! event digest at 1, 2, and 8 workers — fault injection included — and
//! the sharded engine must statistically agree with the serial engine on
//! the model they both simulate.

use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_sim::config::{ConfigError, ContactSource, SimConfig};
use impatience_sim::faults::{CacheFaults, Churn, ContactDrop, FaultConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::{run_trials, run_trials_sharded};
use impatience_sim::sharded::{run_trial_sharded, ShardedOutcome};
use std::sync::Arc;

fn config(faults: Option<FaultConfig>) -> SimConfig {
    let mut builder = SimConfig::builder(12, 2)
        .demand(Popularity::pareto(12, 1.0).demand_rates(0.8))
        .utility(Arc::new(Step::new(15.0)))
        .bin(100.0)
        .warmup_fraction(0.25);
    if let Some(fc) = faults {
        builder = builder.faults(fc);
    }
    builder.build()
}

fn all_supported_faults() -> FaultConfig {
    FaultConfig {
        seed: 31,
        drop: Some(ContactDrop {
            p: 0.25,
            mean_burst: 3.0,
        }),
        cache: Some(CacheFaults { rate: 0.002 }),
        truncate_fraction: Some(0.9),
        ..FaultConfig::default()
    }
}

fn run(workers: usize, faults: Option<FaultConfig>, seed: u64) -> ShardedOutcome {
    let source = ContactSource::homogeneous(96, 0.01, 1_500.0);
    run_trial_sharded(
        &config(faults),
        &source,
        PolicyKind::qcr_default(),
        seed,
        workers,
    )
    .expect("supported configuration")
}

/// Every observable artifact of a trial is a pure function of the seed,
/// independent of the worker count — the tentpole guarantee, checked
/// with the full supported fault set active.
#[test]
fn worker_count_never_changes_any_bit() {
    for seed in [3, 17] {
        let baseline = run(1, Some(all_supported_faults()), seed);
        assert!(
            !baseline.fault_log.is_empty(),
            "fault injection must be live for the gate to mean anything"
        );
        assert!(baseline.outcome.metrics.contacts_dropped > 0);
        assert!(baseline.contacts_processed > 1_000);
        for workers in [2, 8] {
            let other = run(workers, Some(all_supported_faults()), seed);
            assert_eq!(
                other.event_digest, baseline.event_digest,
                "{workers} workers"
            );
            assert_eq!(other.fault_log, baseline.fault_log, "{workers} workers");
            assert_eq!(other.contacts_processed, baseline.contacts_processed);
            assert_eq!(
                other.outcome.final_replicas,
                baseline.outcome.final_replicas
            );
            let (m, b) = (&other.outcome.metrics, &baseline.outcome.metrics);
            assert_eq!(m.observed_rate_series(), b.observed_rate_series());
            assert_eq!(m.expected_utility_series(), b.expected_utility_series());
            assert_eq!(m.requests_created, b.requests_created);
            assert_eq!(m.immediate_hits, b.immediate_hits);
            assert_eq!(m.transmissions, b.transmissions);
            assert_eq!(m.unfulfilled, b.unfulfilled);
            assert_eq!(m.mandates_created, b.mandates_created);
            assert_eq!(m.contacts_dropped, b.contacts_dropped);
            assert_eq!(m.cache_faults, b.cache_faults);
        }
    }
}

/// The clean-network path (no fault state at all) must be worker-stable
/// too — it skips the admission code entirely, so it needs its own gate.
#[test]
fn clean_runs_are_worker_stable() {
    let baseline = run(1, None, 11);
    assert!(baseline.fault_log.is_empty());
    for workers in [2, 8] {
        let other = run(workers, None, 11);
        assert_eq!(other.event_digest, baseline.event_digest);
        assert_eq!(
            other.outcome.metrics.observed_rate_series(),
            baseline.outcome.metrics.observed_rate_series()
        );
    }
}

/// The batch runner's cross-trial aggregate (rates, series, digests)
/// inherits the per-trial guarantee.
#[test]
fn batch_aggregate_is_worker_stable() {
    let source = ContactSource::homogeneous(64, 0.01, 1_000.0);
    let cfg = config(Some(all_supported_faults()));
    let policy = PolicyKind::qcr_default();
    let base = run_trials_sharded(&cfg, &source, &policy, 4, 99, Some(1)).unwrap();
    let wide = run_trials_sharded(&cfg, &source, &policy, 4, 99, Some(8)).unwrap();
    assert_eq!(base.event_digests, wide.event_digests);
    assert_eq!(base.fault_events, wide.fault_events);
    assert_eq!(base.contacts_processed, wide.contacts_processed);
    assert_eq!(base.aggregate.rates, wide.aggregate.rates);
    assert_eq!(
        base.aggregate.observed_series,
        wide.aggregate.observed_series
    );
    assert_eq!(
        base.aggregate.mean_final_replicas,
        wide.aggregate.mean_final_replicas
    );
    assert!(base.fault_events > 0);
}

/// Sharded and serial engines sample different realizations of the same
/// stochastic model, so their trial-averaged welfare must agree within
/// sampling noise (they share demand, utility, population, and μ).
#[test]
fn sharded_welfare_agrees_with_the_serial_engine() {
    let cfg = config(None);
    let source = ContactSource::homogeneous(96, 0.01, 1_500.0);
    let policy = PolicyKind::qcr_default();
    let serial = run_trials(&cfg, &source, &policy, 10, 1234);
    let sharded = run_trials_sharded(&cfg, &source, &policy, 10, 1234, Some(2)).unwrap();
    let (a, b) = (serial.mean_rate, sharded.aggregate.mean_rate);
    assert!(a > 0.0 && b > 0.0);
    let rel = (a - b).abs() / a.max(b);
    assert!(
        rel < 0.12,
        "serial {a:.4} vs sharded {b:.4} utility/min differ by {:.1}%",
        rel * 100.0
    );
}

/// Configurations the sharded engine cannot honor are rejected up front
/// with the dedicated error, not silently approximated.
#[test]
fn unsupported_configurations_error_cleanly() {
    let source = ContactSource::homogeneous(64, 0.01, 1_000.0);
    let churny = config(Some(FaultConfig {
        churn: Some(Churn {
            mean_up: 200.0,
            mean_down: 40.0,
        }),
        ..FaultConfig::default()
    }));
    let err = run_trials_sharded(&churny, &source, &PolicyKind::qcr_default(), 1, 7, Some(2))
        .unwrap_err();
    assert!(matches!(err, ConfigError::UnsupportedSharded { .. }));
    assert!(err.to_string().contains("sharded engine"), "{err}");
}
