//! Cross-module consistency of the theory layer: the same quantity
//! computed along independent paths must agree.

use age_of_impatience::prelude::*;
use impatience_core::allocation::AllocationMatrix;
use impatience_core::demand::DemandProfile;
use impatience_core::solver::relaxed::{relaxed_optimum, relaxed_optimum_gradient};
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::{ContactRates, HeterogeneousSystem};

fn families() -> Vec<Box<dyn DelayUtility>> {
    vec![
        Box::new(Step::new(1.0)),
        Box::new(Step::new(20.0)),
        Box::new(Exponential::new(0.1)),
        Box::new(Exponential::new(2.0)),
        Box::new(Power::new(-1.0)),
        Box::new(Power::new(0.0)),
        Box::new(Power::new(0.5)),
    ]
}

#[test]
fn discrete_time_welfare_converges_to_continuous() {
    // §3.4: "when δ is small compared to any other time in the system,
    // the discrete time model approaches the continuous time model".
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
    let counts: Vec<f64> = (0..50).map(|i| 5.0 + (i % 3) as f64).collect();
    for utility in families() {
        let cont = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &counts);
        let disc =
            social_welfare_homogeneous_discrete(&system, &demand, utility.as_ref(), &counts, 0.01);
        assert!(
            (cont - disc).abs() < 2e-2 * cont.abs().max(1.0),
            "{}: continuous {cont} vs discrete {disc}",
            utility.kind()
        );
    }
}

#[test]
fn heterogeneous_welfare_reduces_to_homogeneous() {
    // Lemma 1 evaluated on a constant rate matrix must match Eq. (5).
    let nodes = 30;
    let mu = 0.04;
    let rho = 3;
    let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(12, nodes);
    let system = HeterogeneousSystem::pure_p2p(ContactRates::homogeneous(nodes, mu), rho);
    let hom = SystemModel::pure_p2p(nodes, rho, mu);

    let counts = proportional(&demand, nodes, rho);
    let matrix = AllocationMatrix::from_counts(&counts, rho);
    for utility in families() {
        let het = impatience_core::welfare::social_welfare_heterogeneous(
            &system,
            &matrix,
            &demand,
            &profile,
            utility.as_ref(),
        );
        let homw = social_welfare_homogeneous(&hom, &demand, utility.as_ref(), &counts.as_f64());
        assert!(
            (het - homw).abs() < 1e-9 * homw.abs().max(1.0),
            "{}: het {het} vs hom {homw}",
            utility.kind()
        );
    }
}

#[test]
fn greedy_dominates_every_fixed_heuristic() {
    // Theorem 2's greedy is exact: no competitor allocation may beat it.
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
    for utility in families() {
        let opt = greedy_homogeneous(&system, &demand, utility.as_ref());
        let w_opt = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &opt.as_f64());
        for (label, counts) in [
            ("UNI", uniform(50, 50, 5)),
            ("SQRT", sqrt_proportional(&demand, 50, 5)),
            ("PROP", proportional(&demand, 50, 5)),
            ("DOM", dominant(&demand, 50, 5)),
        ] {
            let w =
                social_welfare_homogeneous(&system, &demand, utility.as_ref(), &counts.as_f64());
            assert!(
                w <= w_opt + 1e-9 * w_opt.abs().max(1.0),
                "{}: {label} ({w}) beats OPT ({w_opt})",
                utility.kind()
            );
        }
    }
}

#[test]
fn relaxed_optimum_bounds_integer_and_agrees_with_gradient() {
    let system = SystemModel::dedicated(100, 50, 5, 0.05);
    let demand = Popularity::pareto(20, 1.0).demand_rates(1.0);
    for utility in families() {
        let relaxed = relaxed_optimum(&system, &demand, utility.as_ref());
        let greedy = greedy_homogeneous(&system, &demand, utility.as_ref());
        let w_rel = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &relaxed.x);
        let w_int =
            social_welfare_homogeneous(&system, &demand, utility.as_ref(), &greedy.as_f64());
        assert!(
            w_rel >= w_int - 1e-9,
            "{}: relaxed below integer optimum",
            utility.kind()
        );
        let gradient = relaxed_optimum_gradient(&system, &demand, utility.as_ref(), 3_000);
        let w_grad = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &gradient.x);
        assert!(
            (w_rel - w_grad).abs() < 5e-3 * w_rel.abs().max(1.0),
            "{}: water-filling {w_rel} vs gradient {w_grad}",
            utility.kind()
        );
    }
}

#[test]
fn equilibrium_condition_identifies_the_optimum() {
    // Property 1 both ways: the relaxed optimum satisfies the balance
    // condition, and perturbing it lowers welfare.
    let system = SystemModel::dedicated(100, 50, 5, 0.05);
    let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
    let utility = Exponential::new(0.4);
    let relaxed = relaxed_optimum(&system, &demand, &utility);
    assert!(relaxed.equilibrium_residual(&system, &demand, &utility) < 1e-6);

    let w_star = social_welfare_homogeneous(&system, &demand, &utility, &relaxed.x);
    for (from, to) in [(0usize, 9usize), (9, 0), (3, 6)] {
        let mut x = relaxed.x.clone();
        let shift = 0.5_f64.min(x[from]);
        x[from] -= shift;
        x[to] += shift;
        if x[to] > system.servers() as f64 {
            continue;
        }
        let w = social_welfare_homogeneous(&system, &demand, &utility, &x);
        assert!(
            w < w_star,
            "moving {shift} replicas {from}→{to} should not help ({w} ≥ {w_star})"
        );
    }
}

#[test]
fn psi_equals_phi_relation_for_all_families() {
    // Property 2's defining identity, through the public API.
    let (s, mu) = (50.0, 0.05);
    for utility in families() {
        for y in [0.5, 2.0, 10.0, 50.0, 500.0] {
            let x = s / y;
            let expect = x * utility.phi(x, mu);
            let got = utility.psi(y, s, mu);
            assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1e-12),
                "{} at y={y}: ψ={got} vs (s/y)φ(s/y)={expect}",
                utility.kind()
            );
        }
    }
}

#[test]
fn table1_allocation_exponents_via_public_api() {
    // Fig. 2 through the facade: exponent of x̃ in d is 1/(2−α).
    let system = SystemModel::dedicated(50, 300, 1, 0.05);
    let demand = Popularity::pareto(25, 1.0).demand_rates(1.0);
    for alpha in [-1.5, 0.0, 1.25] {
        let utility = Power::new(alpha);
        let relaxed = relaxed_optimum(&system, &demand, &utility);
        // Check the ratio law on two item pairs: x_i/x_j = (d_i/d_j)^(1/(2−α)).
        let e = 1.0 / (2.0 - alpha);
        for (i, j) in [(0usize, 9usize), (4, 19)] {
            let lhs = relaxed.x[i] / relaxed.x[j];
            let rhs = (demand.rate(i) / demand.rate(j)).powf(e);
            assert!(
                (lhs - rhs).abs() < 5e-3 * rhs,
                "α={alpha} pair ({i},{j}): {lhs} vs {rhs}"
            );
        }
    }
}
