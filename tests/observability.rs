//! Cross-crate observability contracts: histogram quantiles vs the exact
//! runner percentile, counter merge algebra, JSONL parseability, and
//! manifest consistency with the simulator's own metrics.

use age_of_impatience::obs::{
    Counters, Event, Histogram, JsonlSink, Manifest, MemorySink, Recorder, TallySink,
};
use age_of_impatience::prelude::*;
use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_json::Json;
use impatience_sim::runner::percentile;
use proptest::prelude::*;
use std::sync::Arc;

fn small_sim() -> (SimConfig, ContactSource) {
    let config = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .build();
    let source = ContactSource::homogeneous(10, 0.08, 1_000.0);
    (config, source)
}

/// The histogram's nearest-rank quantile must agree with the exact
/// `runner::percentile` on identical samples, up to one bucket width.
#[test]
fn histogram_quantiles_match_runner_percentile() {
    let samples: Vec<f64> = (0..997).map(|i| ((i * 193) % 1000) as f64 / 7.0).collect();
    let range = 160.0;
    let buckets = 16_000; // width 0.01
    let mut h = Histogram::new(range, buckets);
    for &s in &samples {
        h.record(s);
    }
    let width = range / buckets as f64;
    for q in [0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
        let exact = percentile(&samples, q);
        let approx = h.quantile(q).unwrap();
        assert!(
            (exact - approx).abs() <= width + 1e-9,
            "q={q}: exact {exact} vs histogram {approx} (width {width})"
        );
    }
}

/// Overflow samples must not corrupt the quantiles below the range.
#[test]
fn histogram_quantiles_with_overflow_match_runner_percentile() {
    let mut samples: Vec<f64> = (0..90).map(|i| i as f64).collect();
    samples.extend((0..10).map(|i| 500.0 + i as f64)); // beyond range
    let mut h = Histogram::new(100.0, 10_000);
    for &s in &samples {
        h.record(s);
    }
    assert_eq!(h.overflow_count(), 10);
    let p50 = h.p50().unwrap();
    assert!((p50 - percentile(&samples, 0.5)).abs() <= 0.01 + 1e-9);
    // p95 lands among the overflow samples: resolves to the exact max.
    assert_eq!(h.p95(), Some(509.0));
}

/// A live simulation's delay histogram must agree with the exact
/// percentiles of the waits it recorded (the manifest-vs-Metrics
/// consistency check of the CLI, done in-process).
#[test]
fn recorded_delay_percentiles_match_event_stream() {
    let (config, source) = small_sim();
    let mut rec = Recorder::new(MemorySink::new());
    let outcome = run_trial_observed(&config, &source, PolicyKind::qcr_default(), 9, &mut rec);

    let waits: Vec<f64> = rec
        .sink()
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Fulfillment { wait, .. } => Some(*wait),
            _ => None,
        })
        .collect();
    assert!(!waits.is_empty(), "expected contact fulfillments");
    assert_eq!(waits.len() as u64, rec.delay.count());

    // Bucket width of the default shape: 4096 / 4096 = 1 minute.
    for q in [0.5, 0.95] {
        let exact = percentile(&waits, q);
        let approx = rec.delay.quantile(q).unwrap();
        assert!(
            (exact - approx).abs() <= 1.0 + 1e-9,
            "q={q}: exact {exact} vs histogram {approx}"
        );
    }

    // And the tallies agree with the simulator's own metrics.
    assert_eq!(
        rec.counters.get("immediate_hits"),
        outcome.metrics.immediate_hits
    );
    assert_eq!(rec.counters.get("unfulfilled"), outcome.metrics.unfulfilled);
    assert_eq!(
        rec.counters.get("fulfillments") + rec.counters.get("immediate_hits"),
        outcome.metrics.fulfillments()
    );
}

/// Every event a simulation emits serializes to a parseable JSONL line
/// whose "ev" tag matches the event kind.
#[test]
fn simulation_event_stream_is_parseable_jsonl() {
    let (config, source) = small_sim();
    let mut rec = Recorder::new(JsonlSink::new(Vec::new()));
    let _ = run_trial_observed(&config, &source, PolicyKind::qcr_default(), 3, &mut rec);
    let bytes = rec
        .into_sink()
        .into_inner()
        .expect("no I/O errors on a Vec");
    let text = String::from_utf8(bytes).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let ev = v
            .get("ev")
            .and_then(Json::as_str)
            .expect("every record has an ev tag");
        kinds.insert(ev.to_string());
        lines += 1;
    }
    assert!(
        lines > 100,
        "a 1000-minute trial should emit plenty of events"
    );
    for expected in [
        "contact",
        "request",
        "fulfillment",
        "replication",
        "trial_done",
    ] {
        assert!(
            kinds.contains(expected),
            "missing event kind {expected} in {kinds:?}"
        );
    }
}

/// Manifests round-trip through the JSON parser and keep provenance.
#[test]
fn manifest_roundtrips_with_summary() {
    let (config, source) = small_sim();
    let mut rec = Recorder::new(TallySink);
    let _ = run_trial_observed(&config, &source, PolicyKind::qcr_default(), 5, &mut rec);

    let mut m = Manifest::new("test-run");
    m.set("base_seed", 5u64);
    m.set("stats", rec.summary_json());
    let text = m.to_json().to_string();
    let parsed = Json::parse(&text).unwrap();
    assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("test-run"));
    let delay_count = parsed
        .get("stats")
        .and_then(|s| s.get("fulfillment_delay"))
        .and_then(|d| d.get("count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(delay_count, rec.delay.count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel observed batch (sharded per-trial recorders, merged
    /// in trial order) must reproduce the tallies of a plain serial loop
    /// over the same seeds: counters and peaks bit-for-bit, histogram
    /// bucket counts / extrema / quantiles exactly, means to float
    /// round-off (the merge adds per-trial partial sums in a different
    /// association order than serial recording).
    #[test]
    fn sharded_observed_batch_matches_serial_recorder(
        trials in 1usize..5,
        base_seed in 0u64..500,
    ) {
        let (config, source) = small_sim();
        let policy = PolicyKind::qcr_default();

        let mut serial = Recorder::new(TallySink);
        for k in 0..trials {
            let _ = run_trial_observed(
                &config, &source, policy.clone(), base_seed + k as u64, &mut serial,
            );
        }

        let mut sharded = Recorder::new(TallySink);
        let agg = impatience_sim::runner::run_trials_observed(
            &config, &source, &policy, trials, base_seed, &mut sharded,
        );
        prop_assert_eq!(agg.trials, trials);

        prop_assert_eq!(&sharded.counters, &serial.counters);
        prop_assert_eq!(&sharded.peaks, &serial.peaks);
        for (merged, reference) in [
            (&sharded.delay, &serial.delay),
            (&sharded.inter_contact, &serial.inter_contact),
        ] {
            prop_assert_eq!(merged.count(), reference.count());
            prop_assert_eq!(merged.min(), reference.min());
            prop_assert_eq!(merged.max(), reference.max());
            for q in [0.05, 0.5, 0.95] {
                prop_assert_eq!(merged.quantile(q), reference.quantile(q));
            }
            match (merged.mean(), reference.mean()) {
                (Some(a), Some(b)) => prop_assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "means diverged: {} vs {}", a, b
                ),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}

proptest! {
    /// Counter merging is associative and commutative: any grouping of
    /// per-worker tallies folds to the same totals.
    #[test]
    fn counter_merge_is_associative(
        ops in proptest::collection::vec((0u32..4, 1u64..1000), 0..60),
        split_a in 0usize..61,
        split_b in 0usize..61,
    ) {
        const NAMES: [&str; 4] = ["contacts", "fulfillments", "requests", "transmissions"];
        let build = |slice: &[(u32, u64)]| {
            let mut c = Counters::new();
            for &(name, amount) in slice {
                c.add(NAMES[name as usize], amount);
            }
            c
        };
        let a = split_a.min(ops.len());
        let b = split_b.min(ops.len());
        let (lo, hi) = (a.min(b), a.max(b));

        // ((x ⊕ y) ⊕ z)
        let mut left = build(&ops[..lo]);
        left.merge(&build(&ops[lo..hi]));
        left.merge(&build(&ops[hi..]));
        // (x ⊕ (y ⊕ z))
        let mut right_tail = build(&ops[lo..hi]);
        right_tail.merge(&build(&ops[hi..]));
        let mut right = build(&ops[..lo]);
        right.merge(&right_tail);
        // z ⊕ y ⊕ x (commuted)
        let mut commuted = build(&ops[hi..]);
        commuted.merge(&build(&ops[lo..hi]));
        commuted.merge(&build(&ops[..lo]));

        let flat = build(&ops);
        for name in NAMES {
            prop_assert_eq!(left.get(name), flat.get(name));
            prop_assert_eq!(right.get(name), flat.get(name));
            prop_assert_eq!(commuted.get(name), flat.get(name));
        }
    }

    /// Histogram quantiles track the exact percentile within one bucket
    /// width for arbitrary in-range samples.
    #[test]
    fn histogram_tracks_percentile_for_random_samples(
        samples in proptest::collection::vec(0.0f64..100.0, 1..200),
        q in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new(100.0, 1000); // width 0.1
        for &s in &samples {
            h.record(s);
        }
        let exact = percentile(&samples, q);
        let approx = h.quantile(q).unwrap();
        prop_assert!(
            (exact - approx).abs() <= 0.1 + 1e-9,
            "q={}: exact {} vs {}", q, exact, approx
        );
    }
}
