//! Fault-tolerance contracts across the workspace: seeded fault
//! schedules are deterministic regardless of worker count, a killed
//! campaign resumes bit-identically from its checkpoint, mismatched
//! checkpoints are rejected, and panicking trials degrade to
//! skip-and-report instead of killing the campaign.

use age_of_impatience::prelude::*;
use impatience_core::demand::Popularity;
use impatience_core::utility::Step;
use impatience_json::Json;
use impatience_obs::{Event, JsonlSink, MemorySink, Recorder};
use impatience_sim::faults::{CacheFaults, Churn, ContactDrop};
use impatience_sim::runner::run_trials_observed_with_workers;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("impatience-fault-tolerance-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn faulty_config(fc: FaultConfig) -> (SimConfig, ContactSource) {
    let config = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .faults(fc)
        .build();
    let source = ContactSource::homogeneous(12, 0.08, 800.0);
    (config, source)
}

fn all_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        churn: Some(Churn {
            mean_up: 200.0,
            mean_down: 40.0,
        }),
        drop: Some(ContactDrop {
            p: 0.25,
            mean_burst: 3.0,
        }),
        cache: Some(CacheFaults { rate: 0.002 }),
        truncate_fraction: Some(0.9),
        ..FaultConfig::default()
    }
}

/// The recorded fault events for `trials` trials at a given worker count.
fn fault_log(config: &SimConfig, source: &ContactSource, workers: usize) -> Vec<String> {
    let mut rec = Recorder::new(MemorySink::new());
    run_trials_observed_with_workers(
        config,
        source,
        &PolicyKind::qcr_default(),
        6,
        42,
        Some(workers),
        &mut rec,
    );
    rec.into_sink()
        .events
        .iter()
        .filter(|e| matches!(e, Event::Fault { .. }))
        .map(|e| e.to_json().to_string())
        .collect()
}

#[test]
fn fault_logs_identical_at_1_2_and_8_workers() {
    let (config, source) = faulty_config(all_faults(7));
    let one = fault_log(&config, &source, 1);
    assert!(
        one.iter().any(|l| l.contains("contact_drop")),
        "drop faults should fire"
    );
    assert!(
        one.iter().any(|l| l.contains("node_down")),
        "churn faults should fire"
    );
    assert_eq!(one, fault_log(&config, &source, 2), "2 workers diverged");
    assert_eq!(one, fault_log(&config, &source, 8), "8 workers diverged");
}

// Fault trajectories belong to the trial, not to the scheduler: any
// seed and any fault mix must produce the same schedule at any worker
// count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fault_schedules_deterministic_across_workers(
        fault_seed in 0u64..1_000,
        // Stay under the burst model's p ≤ L/(L+1) bound at L = 1.
        p in 0.05f64..0.45,
        burst in 1.0f64..4.0,
        workers in 2usize..6,
    ) {
        let fc = FaultConfig {
            seed: fault_seed,
            drop: Some(ContactDrop { p, mean_burst: burst }),
            churn: Some(Churn { mean_up: 150.0, mean_down: 30.0 }),
            ..FaultConfig::default()
        };
        let (config, source) = faulty_config(fc);
        prop_assert_eq!(
            fault_log(&config, &source, 1),
            fault_log(&config, &source, workers)
        );
    }
}

/// Statistical fields that must survive kill+resume bit-for-bit.
fn stable_bits(agg: &TrialAggregate) -> Vec<u64> {
    let mut bits: Vec<u64> = agg.rates.iter().map(|x| x.to_bits()).collect();
    bits.extend(agg.observed_series.iter().map(|x| x.to_bits()));
    bits.extend(agg.mean_final_replicas.iter().map(|x| x.to_bits()));
    bits.extend(
        [
            agg.mean_rate,
            agg.p5_rate,
            agg.p95_rate,
            agg.mean_transmissions,
            agg.mean_immediate_hits,
            agg.mean_unfulfilled,
            agg.mean_mandates_created,
        ]
        .map(f64::to_bits),
    );
    bits
}

#[test]
fn killed_campaign_resumes_bit_identically() {
    let (config, source) = faulty_config(all_faults(3));
    let policy = PolicyKind::qcr_default();
    let ckpt = scratch("kill-resume.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let baseline_opts = CampaignOptions {
        checkpoint_every: 2,
        ..CampaignOptions::default()
    };
    let baseline = run_campaign(
        &config,
        &source,
        &policy,
        7,
        42,
        &baseline_opts,
        &mut Recorder::disabled(),
    )
    .unwrap();

    // "Kill" the campaign after one 2-trial chunk…
    let mut opts = CampaignOptions {
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 2,
        abort_after_chunks: Some(1),
        ..CampaignOptions::default()
    };
    let err = run_campaign(
        &config,
        &source,
        &policy,
        7,
        42,
        &opts,
        &mut Recorder::disabled(),
    )
    .unwrap_err();
    assert!(
        matches!(err, CampaignError::Aborted { completed: 2 }),
        "{err}"
    );

    // …then resume from the checkpoint it left behind.
    opts.abort_after_chunks = None;
    let resumed = run_campaign(
        &config,
        &source,
        &policy,
        7,
        42,
        &opts,
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.executed, 5);
    assert!(resumed.skipped.is_empty());
    assert_eq!(
        stable_bits(&baseline.aggregate),
        stable_bits(&resumed.aggregate),
        "resume must reproduce the uninterrupted aggregate bit-for-bit"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn checkpoint_from_different_campaign_is_rejected() {
    let (config, source) = faulty_config(all_faults(3));
    let policy = PolicyKind::qcr_default();
    let ckpt = scratch("mismatch.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let opts = CampaignOptions {
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 0,
        ..CampaignOptions::default()
    };
    run_campaign(
        &config,
        &source,
        &policy,
        3,
        42,
        &opts,
        &mut Recorder::disabled(),
    )
    .unwrap();

    // Same checkpoint, different base seed: a different campaign.
    let err = run_campaign(
        &config,
        &source,
        &policy,
        3,
        43,
        &opts,
        &mut Recorder::disabled(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CampaignError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "{err}"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn panicking_trials_are_skipped_and_reported_with_parseable_event_stream() {
    let mut fc = all_faults(3);
    // Trial seeds are base_seed + k; make trials 1 and 3 blow up.
    fc.panic_on_seeds = vec![43, 45];
    let (config, source) = faulty_config(fc);
    let mut rec = Recorder::new(JsonlSink::new(Vec::<u8>::new()));
    let outcome = run_campaign(
        &config,
        &source,
        &PolicyKind::qcr_default(),
        5,
        42,
        &CampaignOptions::default(),
        &mut rec,
    )
    .unwrap();
    assert_eq!(
        outcome.skipped.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![1, 3]
    );
    assert_eq!(outcome.aggregate.trials, 3);

    // The JSONL stream stays parseable line-by-line even with failures.
    let bytes = rec.into_sink().into_inner().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let mut lines = 0;
    for line in text.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line: {e}: {line}"));
        lines += 1;
    }
    assert!(lines > 0, "event stream should not be empty");
    assert!(
        text.lines().filter(|l| l.contains("trial_panic")).count() >= 2,
        "skipped trials should be visible in the event stream"
    );
}

#[test]
fn contact_drops_reduce_observed_welfare() {
    let clean = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .build();
    let lossy = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .utility(Arc::new(Step::new(10.0)))
        .bin(100.0)
        .faults(FaultConfig {
            seed: 1,
            // The renewal burst model needs p ≤ L/(L+1); at L = 3 a 60%
            // stationary drop rate is admissible.
            drop: Some(ContactDrop {
                p: 0.6,
                mean_burst: 3.0,
            }),
            ..FaultConfig::default()
        })
        .build();
    let source = ContactSource::homogeneous(12, 0.08, 1_500.0);
    let policy = PolicyKind::qcr_default();
    let w_clean = run_trials(&clean, &source, &policy, 8, 42).mean_rate;
    let w_lossy = run_trials(&lossy, &source, &policy, 8, 42).mean_rate;
    assert!(
        w_lossy < w_clean,
        "dropping 60% of contacts should hurt welfare ({w_lossy} !< {w_clean})"
    );
}

#[test]
fn inactive_faults_leave_trajectories_untouched() {
    let (plain, source) = {
        let config = SimConfig::builder(10, 2)
            .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build();
        (config, ContactSource::homogeneous(12, 0.08, 800.0))
    };
    let (with_inactive, _) = faulty_config(FaultConfig {
        seed: 99,
        ..FaultConfig::default()
    });
    let policy = PolicyKind::qcr_default();
    let a = run_trials(&plain, &source, &policy, 4, 42);
    let b = run_trials(&with_inactive, &source, &policy, 4, 42);
    assert_eq!(stable_bits(&a), stable_bits(&b));
}
