//! Contracts of the compact binary contact format (`sim::contact_bin`):
//! the LE record round-trip is lossless, batched streaming is
//! bit-identical to direct stream consumption, the on-disk layout is
//! frozen by a committed golden fixture, and truncated or corrupt input
//! fails with a typed [`TraceError`] instead of yielding garbage events.

use impatience_core::rng::Xoshiro256;
use impatience_sim::contact_bin::{
    decode_records, read_contact_bin, read_contact_bin_file, write_contact_bin,
    write_contact_bin_file, BatchedContacts, DEFAULT_BATCH, MAGIC, RECORD_BYTES,
};
use impatience_traces::{ContactEvent, ContactStream, ContactTrace, TraceError};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const GOLDEN: &str = "tests/fixtures/contacts_golden.bin";

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN)
}

/// The fixed trace behind the golden fixture: small, hand-checkable, and
/// exercising the field widths (fractional times, node 0, max node).
fn golden_trace() -> ContactTrace {
    let events = vec![
        ContactEvent::new(0.5, 0, 1),
        ContactEvent::new(1.25, 2, 5),
        ContactEvent::new(7.0, 1, 4),
        ContactEvent::new(7.0, 0, 5),
        ContactEvent::new(99.875, 3, 4),
    ];
    ContactTrace::new(6, 100.0, events)
}

fn encode_trace(trace: &ContactTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_contact_bin(trace, &mut bytes).expect("in-memory write cannot fail");
    bytes
}

/// The committed fixture freezes the wire layout: if this test fails the
/// format changed, which breaks every reader of existing files. Bump the
/// MAGIC version instead of editing the fixture. Regenerate (after a
/// deliberate version bump) with `UPDATE_GOLDEN=1 cargo test -q
/// --test contact_bin`.
#[test]
fn golden_fixture_freezes_the_wire_layout() {
    let bytes = encode_trace(&golden_trace());
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write fixture");
    }
    let committed = std::fs::read(&path).expect("read committed fixture");
    assert_eq!(
        committed, bytes,
        "encoder output differs from the committed fixture"
    );
    assert_eq!(committed.len(), MAGIC.len() + 12 + 5 * RECORD_BYTES);
    assert_eq!(&committed[..MAGIC.len()], &MAGIC);
    let trace = read_contact_bin_file(&path).expect("fixture must parse");
    assert_eq!(trace.nodes(), 6);
    assert_eq!(trace.duration(), 100.0);
    assert_eq!(trace.events(), golden_trace().events());
}

#[test]
fn file_round_trip_is_lossless() {
    let dir = std::env::temp_dir().join("impatience-contact-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("roundtrip-{}.bin", std::process::id()));
    let rng = Xoshiro256::seed_from_u64(7);
    let events: Vec<ContactEvent> = ContactStream::poisson(30, 0.01, 500.0, rng).collect();
    assert!(events.len() > 100, "want a non-trivial trace");
    let trace = ContactTrace::new(30, 500.0, events);
    write_contact_bin_file(&trace, &path).expect("write");
    let back = read_contact_bin_file(&path).expect("read");
    assert_eq!(back.nodes(), trace.nodes());
    assert_eq!(back.duration(), trace.duration());
    assert_eq!(back.events(), trace.events());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_and_corrupt_input_is_rejected() {
    let good = encode_trace(&golden_trace());
    let header = MAGIC.len() + 12;

    // Mid-record truncation is blamed on the first incomplete record.
    match read_contact_bin(&good[..header + RECORD_BYTES + 5]) {
        Err(TraceError::Format { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("truncated"), "{message}");
        }
        other => panic!("expected a truncation error, got {other:?}"),
    }

    // A file shorter than the header, or with the wrong magic, is not a
    // contact-bin file at all.
    assert!(matches!(
        read_contact_bin(&good[..header - 3]),
        Err(TraceError::Format { line: 0, .. })
    ));
    let mut wrong_magic = good.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        read_contact_bin(&wrong_magic[..]),
        Err(TraceError::Format { line: 0, .. })
    ));

    // Unknown version byte (the last magic byte) must also refuse.
    let mut wrong_version = good.clone();
    wrong_version[MAGIC.len() - 1] = 2;
    assert!(matches!(
        read_contact_bin(&wrong_version[..]),
        Err(TraceError::Format { line: 0, .. })
    ));

    // Corrupt payloads: each mutation violates one record invariant and
    // must be blamed on the record that carries it.
    let corrupt = |mutate: &dyn Fn(&mut Vec<u8>), needle: &str, at_line: usize| {
        let mut bytes = good.clone();
        mutate(&mut bytes);
        match read_contact_bin(&bytes[..]) {
            Err(TraceError::Format { line, message }) => {
                assert_eq!(line, at_line, "wrong blame for {needle:?}: {message}");
                assert!(message.contains(needle), "{message}");
            }
            other => panic!("expected {needle:?} error, got {other:?}"),
        }
    };
    // Record 1's time → NaN.
    corrupt(
        &|b| b[header..header + 8].copy_from_slice(&f64::NAN.to_le_bytes()),
        "finite",
        1,
    );
    // Record 3's time < record 2's (out of order).
    corrupt(
        &|b| {
            let off = header + 2 * RECORD_BYTES;
            b[off..off + 8].copy_from_slice(&0.75f64.to_le_bytes());
        },
        "non-decreasing",
        3,
    );
    // Record 2's pair unnormalized (a == b).
    corrupt(
        &|b| {
            let off = header + RECORD_BYTES + 8;
            b[off..off + 4].copy_from_slice(&5u32.to_le_bytes());
        },
        "a < b",
        2,
    );
    // Record 5's second node out of the declared population.
    corrupt(
        &|b| {
            let off = header + 4 * RECORD_BYTES + 12;
            b[off..off + 4].copy_from_slice(&6u32.to_le_bytes());
        },
        "out of range",
        5,
    );
    // Last record's time past the declared duration.
    corrupt(
        &|b| {
            let off = header + 4 * RECORD_BYTES;
            b[off..off + 8].copy_from_slice(&100.5f64.to_le_bytes());
        },
        "exceeds the declared duration",
        5,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming through the batch encoder is bit-identical to consuming
    /// the stream directly, for any population, rate, and batch size —
    /// the property the sharded engine's per-lane batching rests on.
    #[test]
    fn batched_consumption_matches_direct_streaming(
        seed in 0u64..1_000,
        nodes in 2usize..40,
        mu in 1e-4f64..0.05,
        batch in 1usize..(2 * DEFAULT_BATCH),
    ) {
        let duration = 400.0;
        let direct: Vec<ContactEvent> =
            ContactStream::poisson(nodes, mu, duration, Xoshiro256::seed_from_u64(seed))
                .collect();
        let stream =
            ContactStream::poisson(nodes, mu, duration, Xoshiro256::seed_from_u64(seed));
        let batched: Vec<ContactEvent> =
            BatchedContacts::with_batch(stream, batch).collect();
        prop_assert_eq!(&batched, &direct);
    }

    /// encode → decode is the identity on any sampled trace, and the
    /// validating decoder accepts everything the sampler produces.
    #[test]
    fn encode_decode_round_trip(seed in 0u64..1_000, nodes in 2usize..40) {
        let duration = 300.0;
        let events: Vec<ContactEvent> =
            ContactStream::poisson(nodes, 0.01, duration, Xoshiro256::seed_from_u64(seed))
                .collect();
        let trace = ContactTrace::new(nodes, duration, events.clone());
        let bytes = encode_trace(&trace);
        let payload = &bytes[MAGIC.len() + 12..];
        let decoded = decode_records(payload, nodes).expect("sampled traces are valid");
        prop_assert_eq!(&decoded, &events);
        let back = read_contact_bin(&bytes[..]).expect("full file parses");
        prop_assert_eq!(back.events(), &events[..]);
    }
}
