//! End-to-end contracts of the `impatience serve` HTTP API, exercised
//! over real sockets: solve answers match a from-scratch greedy solve,
//! campaigns drain in FIFO order, a full queue sheds with 429 while the
//! server stays healthy, SSE reconnects replay gaplessly from any
//! offset, artifacts round-trip through their content address, and a
//! server killed mid-campaign resumes after restart with a
//! bit-identical result artifact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use impatience_core::demand::Popularity;
use impatience_core::solver::greedy::try_greedy_homogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::parse_utility;
use impatience_json::Json;
use impatience_serve::{fnv1a_hash, ServeConfig, Server};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(dir: &Path, queue_cap: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: dir.to_path_buf(),
        queue_cap,
        http_threads: 4,
        solver_pool_per_key: 4,
    })
    .unwrap()
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = request(addr, "GET", path, None);
    let json = Json::parse(body.trim()).unwrap_or(Json::Null);
    (status, json)
}

fn submit(addr: SocketAddr, spec: &str) -> (u16, Json) {
    let (status, body) = request(addr, "POST", "/v1/campaigns", Some(spec));
    let json = Json::parse(body.trim()).unwrap_or(Json::Null);
    (status, json)
}

/// Poll a job's status until it reaches `want` (or panic on timeout /
/// a terminal mismatch).
fn wait_for_state(addr: SocketAddr, job: &str, want: &str, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, json) = get_json(addr, &format!("/v1/campaigns/{job}"));
        assert_eq!(status, 200, "status poll for {job}");
        let state = json.get("state").and_then(Json::as_str).unwrap_or("?");
        if state == want {
            return json;
        }
        assert_ne!(state, "failed", "job {job} failed: {json}");
        assert!(
            Instant::now() < deadline,
            "job {job} stuck in `{state}` waiting for `{want}`"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Read a job's SSE feed from `offset` in snapshot mode (`follow=0`):
/// returns the frames as (id, data) pairs plus the `end` frame payload.
fn sse_snapshot(addr: SocketAddr, job: &str, offset: usize) -> (Vec<(usize, String)>, Json) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let head = format!(
        "GET /v1/campaigns/{job}/events?offset={offset}&follow=0 HTTP/1.1\r\n\
         Host: e2e\r\nAccept: text/event-stream\r\n\r\n"
    );
    reader.get_mut().write_all(head.as_bytes()).unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 200"), "sse got {line}");
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
    }

    let mut frames = Vec::new();
    let (mut id, mut event, mut data): (Option<usize>, Option<String>, String) =
        (None, None, String::new());
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "sse stream for {job} ended without `event: end`");
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            if event.as_deref() == Some("end") {
                return (frames, Json::parse(&data).unwrap());
            }
            if !data.is_empty() {
                frames.push((id.expect("data frame without id"), data.clone()));
            }
            id = None;
            event = None;
            data.clear();
        } else if let Some(v) = trimmed.strip_prefix("id:") {
            id = v.trim().parse().ok();
        } else if let Some(v) = trimmed.strip_prefix("event:") {
            event = Some(v.trim().to_string());
        } else if let Some(v) = trimmed.strip_prefix("data:") {
            data.push_str(v.trim_start());
        }
    }
}

// ---------------------------------------------------------------- solve

#[test]
fn solve_over_http_matches_scratch_greedy() {
    let dir = temp_dir("solve");
    let server = start(&dir, 4);
    let addr = server.addr();

    let (status, body) = request(
        addr,
        "POST",
        "/v1/solve",
        Some(r#"{"nodes":40,"rho":3,"mu":0.05,"items":12,"utility":"step:5"}"#),
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(body.trim()).unwrap();
    let counts: Vec<u64> = reply
        .get("counts")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|c| c.as_u64().unwrap())
        .collect();

    let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
    let fresh = try_greedy_homogeneous(
        &SystemModel::pure_p2p(40, 3, 0.05),
        &demand,
        parse_utility("step:5").unwrap().as_ref(),
    )
    .unwrap();
    let scratch: Vec<u64> = fresh.counts().iter().map(|&c| c as u64).collect();
    assert_eq!(counts, scratch, "HTTP solve diverged from scratch greedy");
    assert!(reply.get("welfare").unwrap().as_f64().unwrap() > 0.0);

    // Same shape again: warm pool, identical allocation.
    let (_, body2) = request(
        addr,
        "POST",
        "/v1/solve",
        Some(r#"{"nodes":40,"rho":3,"mu":0.05,"items":12,"utility":"step:5"}"#),
    );
    let reply2 = Json::parse(body2.trim()).unwrap();
    assert_eq!(reply2.get("pool").unwrap().as_str(), Some("hit"));
    assert_eq!(reply2.get("counts").unwrap(), reply.get("counts").unwrap());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------- campaigns

const TINY_SPEC: &str =
    r#"{"nodes":14,"mu":0.05,"duration":200.0,"items":6,"rho":2,"trials":2,"seed":11}"#;

#[test]
fn campaigns_drain_in_fifo_order() {
    let dir = temp_dir("fifo");
    let server = start(&dir, 8);
    let addr = server.addr();

    let mut submitted = Vec::new();
    for seed in [1u64, 2, 3] {
        let spec = format!(
            r#"{{"nodes":14,"mu":0.05,"duration":200.0,"items":6,"rho":2,"trials":2,"seed":{seed}}}"#
        );
        let (status, reply) = submit(addr, &spec);
        assert_eq!(status, 202, "{reply}");
        submitted.push(reply.get("job").and_then(Json::as_str).unwrap().to_string());
    }
    for id in &submitted {
        wait_for_state(addr, id, "done", Duration::from_secs(120));
    }

    let (status, list) = get_json(addr, "/v1/campaigns");
    assert_eq!(status, 200);
    let completed: Vec<String> = list
        .get("completed_order")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|j| j.as_str().unwrap().to_string())
        .collect();
    assert_eq!(
        completed, submitted,
        "jobs must complete in submission (FIFO) order"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_sheds_with_429_and_stays_healthy() {
    let dir = temp_dir("shed");
    let server = start(&dir, 1);
    let addr = server.addr();

    let (mut accepted, mut shed) = (0, 0);
    for _ in 0..10 {
        let (status, reply) = submit(addr, TINY_SPEC);
        match status {
            202 => accepted += 1,
            429 => {
                shed += 1;
                // The 429 carries the machine-readable error envelope
                // with the CLI's `degraded` exit code.
                let err = reply.get("error").unwrap();
                assert_eq!(err.get("kind").unwrap().as_str(), Some("queue_full"));
                assert_eq!(err.get("exit_code").unwrap().as_i64(), Some(9));
            }
            other => panic!("burst submit got {other}: {reply}"),
        }
    }
    assert!(accepted >= 1, "at least one submission must land");
    assert!(shed >= 1, "queue_cap=1 must shed under a burst of 10");

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "server must stay healthy while shedding");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------------ SSE

#[test]
fn sse_replay_from_offset_is_gapless_after_reconnect() {
    let dir = temp_dir("sse");
    let server = start(&dir, 4);
    let addr = server.addr();

    let (status, reply) = submit(addr, TINY_SPEC);
    assert_eq!(status, 202, "{reply}");
    let job = reply.get("job").and_then(Json::as_str).unwrap().to_string();
    wait_for_state(addr, &job, "done", Duration::from_secs(120));

    // First connection: the full feed from offset 0.
    let (full, end) = sse_snapshot(addr, &job, 0);
    assert!(
        full.len() > 10,
        "expected a real event stream, got {} frames",
        full.len()
    );
    for (expect, (id, _)) in full.iter().enumerate() {
        assert_eq!(*id, expect, "frame ids must be contiguous from 0");
    }
    assert_eq!(
        end.get("events").and_then(Json::as_u64),
        Some(full.len() as u64),
        "terminal frame must account for every event"
    );

    // Simulate a dropped connection after frame k: reconnect with
    // `?offset=k+1` (what a client derives from `Last-Event-ID: k`).
    let k = full.len() / 2;
    let (tail, _) = sse_snapshot(addr, &job, k + 1);
    assert_eq!(tail.len(), full.len() - (k + 1));
    assert_eq!(
        tail,
        full[k + 1..],
        "replay after reconnect must be gapless and byte-identical"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------- artifacts

#[test]
fn artifact_roundtrip_and_unknown_hash_404s() {
    let dir = temp_dir("artifact");
    let server = start(&dir, 4);
    let addr = server.addr();

    let (status, reply) = submit(addr, TINY_SPEC);
    assert_eq!(status, 202, "{reply}");
    let job = reply.get("job").and_then(Json::as_str).unwrap().to_string();
    let done = wait_for_state(addr, &job, "done", Duration::from_secs(120));

    let hash = done.get("artifact").and_then(Json::as_str).unwrap();
    let url = done.get("artifact_url").and_then(Json::as_str).unwrap();
    assert_eq!(url, format!("/v1/artifacts/{hash}"));
    let (status, bytes) = request(addr, "GET", url, None);
    assert_eq!(status, 200);
    assert_eq!(
        fnv1a_hash(bytes.as_bytes()),
        hash,
        "served artifact must match its content address"
    );
    let doc = Json::parse(bytes.trim()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("impatience-serve-result/1")
    );

    let (status, body) = request(addr, "GET", "/v1/artifacts/fnv1a:0000000000000000", None);
    assert_eq!(status, 404, "{body}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------- crash-recovery (e2e)

/// Start `impatience serve` as a real subprocess on an ephemeral port,
/// returning the child and its discovered address.
fn spawn_serve(dir: &Path) -> (std::process::Child, SocketAddr) {
    let addr_file = dir.join("serve.addr");
    std::fs::remove_file(&addr_file).ok();
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_impatience"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            dir.to_str().unwrap(),
            "--queue",
            "4",
            "--http-threads",
            "2",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "serve.addr never appeared");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

#[test]
fn kill_mid_campaign_then_restart_resumes_bit_identically() {
    // A spec long enough that SIGKILL reliably lands mid-run, with
    // frequent checkpoints so the restart has work to restore.
    let spec = r#"{"nodes":16,"mu":0.05,"duration":250.0,"items":6,"rho":2,"trials":24,"seed":9,"checkpoint_every":2}"#;

    // Reference: the same spec through an uninterrupted in-process run.
    let clean_dir = temp_dir("clean");
    let clean = start(&clean_dir, 4);
    let (status, reply) = submit(clean.addr(), spec);
    assert_eq!(status, 202, "{reply}");
    let job = reply.get("job").and_then(Json::as_str).unwrap().to_string();
    let done = wait_for_state(clean.addr(), &job, "done", Duration::from_secs(300));
    let clean_hash = done
        .get("artifact")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let (_, clean_bytes) = request(
        clean.addr(),
        "GET",
        &format!("/v1/artifacts/{clean_hash}"),
        None,
    );
    clean.shutdown();
    std::fs::remove_dir_all(&clean_dir).ok();

    // Victim: a real `impatience serve` subprocess, killed once the
    // job's checkpoint file shows up (some chunks done, more to go).
    let dir = temp_dir("kill");
    let (mut child, addr) = spawn_serve(&dir);
    let (status, reply) = submit(addr, spec);
    assert_eq!(status, 202, "{reply}");
    let job = reply.get("job").and_then(Json::as_str).unwrap().to_string();
    let ckpt = dir.join("jobs").join(format!("{job}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "checkpoint never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    assert!(
        !dir.join("jobs").join(format!("{job}.result.json")).exists(),
        "job must not have finished before the kill"
    );

    // Restart over the same state directory: recovery re-enqueues the
    // job and its checkpoint turns the re-run into a resume.
    let (mut child, addr) = spawn_serve(&dir);
    let done = wait_for_state(addr, &job, "done", Duration::from_secs(300));
    assert!(
        done.get("resumed").and_then(Json::as_u64).unwrap() > 0,
        "restart must restore checkpointed trials, not redo them"
    );
    let hash = done.get("artifact").and_then(Json::as_str).unwrap();
    assert_eq!(hash, clean_hash, "content address must match a clean run");
    let (status, bytes) = request(addr, "GET", &format!("/v1/artifacts/{hash}"), None);
    assert_eq!(status, 200);
    assert_eq!(
        bytes, clean_bytes,
        "resumed artifact must be byte-identical to the uninterrupted run"
    );

    child.kill().unwrap();
    child.wait().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
