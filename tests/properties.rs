//! Property-based tests (proptest) over the core invariants: these
//! explore the parameter space far beyond the hand-picked unit-test
//! points.

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::fixed::apportion;
use impatience_core::solver::greedy::brute_force_homogeneous;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::{item_welfare_heterogeneous, ContactRates, HeterogeneousSystem};
use proptest::prelude::*;

/// A random delay-utility from the paper's families.
fn arb_utility() -> impl Strategy<Value = Box<dyn DelayUtility>> {
    prop_oneof![
        (0.05f64..50.0).prop_map(|tau| Box::new(Step::new(tau)) as Box<dyn DelayUtility>),
        (0.01f64..5.0).prop_map(|nu| Box::new(Exponential::new(nu)) as Box<dyn DelayUtility>),
        (-2.0f64..0.9).prop_map(|a| Box::new(Power::new(a)) as Box<dyn DelayUtility>),
    ]
}

/// Random demand rates for a small catalog.
fn arb_demand(items: usize) -> impl Strategy<Value = DemandRates> {
    proptest::collection::vec(0.01f64..5.0, items).prop_map(DemandRates::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn h_is_non_increasing_and_gain_is_non_decreasing(
        utility in arb_utility(),
        t1 in 0.01f64..100.0,
        dt in 0.0f64..100.0,
        l1 in 0.001f64..10.0,
        dl in 0.0f64..10.0,
    ) {
        prop_assert!(utility.h(t1) >= utility.h(t1 + dt) - 1e-12);
        prop_assert!(utility.gain(l1 + dl) >= utility.gain(l1) - 1e-9);
    }

    #[test]
    fn phi_is_positive_and_decreasing(
        utility in arb_utility(),
        // Ranges bounded so the step family's e^{−μτx} stays above f64
        // underflow (worst exponent ≈ 0.2·50·30 = 300).
        x in 0.1f64..30.0,
        dx in 0.01f64..20.0,
        mu in 0.001f64..0.2,
    ) {
        let a = utility.phi(x, mu);
        let b = utility.phi(x + dx, mu);
        prop_assert!(a > 0.0, "φ({x}) = {a}");
        prop_assert!(b <= a * (1.0 + 1e-9), "φ not decreasing: {a} -> {b}");
    }

    #[test]
    fn welfare_is_concave_along_random_directions(
        utility in arb_utility(),
        demand in arb_demand(6),
        x in proptest::collection::vec(0.5f64..20.0, 6),
        y in proptest::collection::vec(0.5f64..20.0, 6),
    ) {
        // Theorem 2: U concave in the counts — midpoint above chord.
        let system = SystemModel::dedicated(10, 30, 5, 0.05);
        let mid: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 0.5 * (a + b)).collect();
        let u = |v: &[f64]| social_welfare_homogeneous(&system, &demand, utility.as_ref(), v);
        let lhs = u(&mid);
        let rhs = 0.5 * (u(&x) + u(&y));
        prop_assert!(lhs >= rhs - 1e-7 * rhs.abs().max(1.0), "{lhs} < {rhs}");
    }

    #[test]
    fn item_welfare_is_submodular_on_random_systems(
        utility in arb_utility(),
        seed in 0u64..1_000,
        holders_small in proptest::collection::btree_set(0usize..8, 1..3),
        extra in proptest::collection::btree_set(0usize..8, 1..4),
        new_holder in 0usize..8,
    ) {
        // Theorem 1 on random heterogeneous rate matrices.
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let rates = ContactRates::from_fn(8, |_, _| rng.range(0.001, 0.2));
        let system = HeterogeneousSystem::pure_p2p(rates, 3);
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 8);

        let small: Vec<usize> = holders_small.iter().copied().collect();
        let mut large: Vec<usize> = small.clone();
        for e in extra {
            if !large.contains(&e) {
                large.push(e);
            }
        }
        prop_assume!(!small.contains(&new_holder) && !large.contains(&new_holder));

        let f = |set: &[usize]| {
            item_welfare_heterogeneous(&system, 0, set, &demand, &profile, utility.as_ref())
        };
        let mut small_plus = small.clone();
        small_plus.push(new_holder);
        let mut large_plus = large.clone();
        large_plus.push(new_holder);
        let (fs, fsp, fl, flp) = (f(&small), f(&small_plus), f(&large), f(&large_plus));
        // Skip −∞ baselines (first-copy case): marginals are +∞ there.
        prop_assume!(fs.is_finite() && fl.is_finite());
        let gain_small = fsp - fs;
        let gain_large = flp - fl;
        prop_assert!(
            gain_small >= gain_large - 1e-9 * gain_small.abs().max(1.0),
            "submodularity violated: {gain_small} < {gain_large}"
        );
    }

    #[test]
    fn greedy_matches_brute_force_on_tiny_instances(
        utility in arb_utility(),
        demand in arb_demand(3),
        servers in 2usize..4,
        rho in 1usize..3,
    ) {
        let system = SystemModel::dedicated(6, servers, rho, 0.1);
        let greedy = greedy_homogeneous(&system, &demand, utility.as_ref());
        let (_, w_best) = brute_force_homogeneous(&system, &demand, utility.as_ref());
        let w_greedy =
            social_welfare_homogeneous(&system, &demand, utility.as_ref(), &greedy.as_f64());
        prop_assert!(
            w_greedy >= w_best - 1e-9 * w_best.abs().max(1.0),
            "greedy {w_greedy} < brute force {w_best}"
        );
    }

    #[test]
    fn relaxed_solution_is_feasible_and_balanced(
        utility in arb_utility(),
        demand in arb_demand(8),
    ) {
        let system = SystemModel::dedicated(20, 40, 2, 0.05);
        let relaxed = impatience_core::solver::relaxed::relaxed_optimum(
            &system, &demand, utility.as_ref());
        let total: f64 = relaxed.x.iter().sum();
        prop_assert!(total <= 80.0 + 1e-6);
        for &xi in &relaxed.x {
            prop_assert!((0.0..=40.0 + 1e-9).contains(&xi));
        }
        prop_assert!(
            relaxed.equilibrium_residual(&system, &demand, utility.as_ref()) < 1e-5
        );
    }

    #[test]
    fn apportion_conserves_budget_and_caps(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        budget in 0usize..200,
        cap in 1usize..30,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let counts = apportion(&weights, budget, cap);
        let positive = weights.iter().filter(|&&w| w > 0.0).count();
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(total as usize, budget.min(cap * positive));
        for (w, &c) in weights.iter().zip(&counts) {
            prop_assert!((c as usize) <= cap);
            if *w == 0.0 {
                prop_assert_eq!(c, 0);
            }
        }
    }

    #[test]
    fn cache_invariants_survive_random_event_storms(
        seed in 0u64..500,
        rho in 1usize..4,
        items in 2u32..12,
        ops in 10usize..300,
    ) {
        // Hammer a node cache with random fills/evictions and check the
        // sticky replica and capacity invariants throughout.
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut arena = impatience_sim::state::CacheArena::new(1, 1, rho);
        let sticky = rng.below(items as u64) as u32;
        arena.node_mut(0).pin_sticky(sticky);
        for _ in 0..ops {
            let item = rng.below(items as u64) as u32;
            let _ = arena.node_mut(0).insert_evict(item, &mut rng);
            prop_assert!(arena.node(0).len() <= rho);
            prop_assert!(arena.node(0).holds(sticky), "sticky item evicted");
        }
    }

    #[test]
    fn trace_generation_is_sorted_and_within_bounds(
        seed in 0u64..200,
        nodes in 2usize..12,
        mu in 0.001f64..0.3,
        duration in 10.0f64..500.0,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let trace = poisson_homogeneous(nodes, mu, duration, &mut rng);
        let mut prev = 0.0;
        for e in trace.events() {
            prop_assert!(e.time >= prev && e.time <= duration);
            prop_assert!(e.a < e.b && (e.b as usize) < nodes);
            prev = e.time;
        }
    }

    #[test]
    fn trace_io_round_trips_arbitrary_traces(
        seed in 0u64..200,
        nodes in 2usize..10,
        duration in 1.0f64..100.0,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let trace = poisson_homogeneous(nodes, 0.1, duration, &mut rng);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(trace.nodes(), back.nodes());
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.events().iter().zip(back.events()) {
            prop_assert!((a.time - b.time).abs() < 1e-12);
            prop_assert_eq!((a.a, a.b), (b.a, b.b));
        }
    }
}
