//! The full trace pipeline, end to end: mobility → geometric contacts →
//! statistics → (re)synthesis → on-disk round-trip → simulation.

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::HeterogeneousSystem;
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;
use impatience_traces::gen::ConferenceConfig;
use impatience_traces::{read_trace, read_trace_json, write_trace, write_trace_json};
use std::sync::Arc;

fn small_conference(rng: &mut Xoshiro256) -> ContactTrace {
    ConferenceConfig {
        nodes: 20,
        duration: 2.0 * 1_440.0,
        ..ConferenceConfig::default()
    }
    .generate(rng)
}

#[test]
fn vehicular_pipeline_generates_simulatable_contacts() {
    let mut rng = Xoshiro256::seed_from_u64(1);
    let trace = VehicularConfig {
        cabs: 12,
        duration: 240.0,
        city_size: 2_500.0,
        sample_step: 0.5,
        ..VehicularConfig::default()
    }
    .generate(&mut rng);
    assert!(trace.len() > 5, "taxis never met");

    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(30.0));
    let config = SimConfig::builder(10, 2)
        .demand(Popularity::pareto(10, 1.0).demand_rates(0.5))
        .profile(DemandProfile::uniform(10, trace.nodes()))
        .utility(utility)
        .bin(60.0)
        .build();
    let source = ContactSource::trace(trace);
    let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), 3, 2);
    assert!(agg.mean_rate.is_finite());
}

#[test]
fn trace_files_round_trip_in_both_formats() {
    let mut rng = Xoshiro256::seed_from_u64(2);
    let trace = poisson_homogeneous(8, 0.1, 300.0, &mut rng);

    let mut text = Vec::new();
    write_trace(&trace, &mut text).unwrap();
    let from_text = read_trace(text.as_slice()).unwrap();
    assert_eq!(trace, from_text);

    let mut json = Vec::new();
    write_trace_json(&trace, &mut json).unwrap();
    let from_json = read_trace_json(json.as_slice()).unwrap();
    assert_eq!(trace, from_json);
}

#[test]
fn trace_written_to_disk_feeds_a_simulation() {
    let dir = std::env::temp_dir().join("impatience-trace-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("conf.trace");

    let mut rng = Xoshiro256::seed_from_u64(3);
    let original = small_conference(&mut rng);
    write_trace(&original, std::fs::File::create(&path).unwrap()).unwrap();
    let loaded = read_trace(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(original, loaded);

    let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.05));
    let config = SimConfig::builder(15, 3)
        .demand(Popularity::pareto(15, 1.0).demand_rates(0.5))
        .profile(DemandProfile::uniform(15, loaded.nodes()))
        .utility(utility)
        .bin(120.0)
        .build();
    let out = impatience_sim::engine::run_trial(
        &config,
        &ContactSource::trace(loaded),
        PolicyKind::qcr_default(),
        5,
    );
    assert!(out.metrics.fulfillments() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn synthesized_trace_preserves_opt_quality_but_not_burstiness() {
    // Fig. 5(b)/(c) machinery: resynthesis keeps rates (so the OPT greedy
    // sees an equivalent system) while resetting time statistics.
    let mut rng = Xoshiro256::seed_from_u64(4);
    let original = small_conference(&mut rng);
    let synth = resynthesize_memoryless(&original, &mut rng);

    let s_orig = TraceStats::from_trace(&original);
    let s_synth = TraceStats::from_trace(&synth);
    assert!(s_orig.normalized_intercontact_cv() > 1.1);
    assert!(s_synth.normalized_intercontact_cv() < 1.15);

    // The greedy OPT allocations on both rate matrices are similar.
    let demand = Popularity::pareto(15, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(15, original.nodes());
    let utility = Step::new(60.0);
    let opt_of = |stats: &TraceStats| {
        let hsys = HeterogeneousSystem::pure_p2p(stats.rates().clone(), 3);
        greedy_heterogeneous(&hsys, &demand, &profile, &utility)
            .to_counts()
            .as_f64()
    };
    let a = opt_of(&s_orig);
    let b = opt_of(&s_synth);
    let l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
    let total: f64 = a.iter().sum();
    assert!(
        l1 < 0.5 * total,
        "OPT allocations diverged (L1 {l1:.0} of {total:.0})"
    );
}

#[test]
fn streaming_matches_materialized_on_a_fixed_imported_trace() {
    // The zero-copy cursor (`run_trial`) and the realize-then-replay
    // reference (`run_trial_materialized`) must produce bit-for-bit the
    // same outcome on a trace that went through the full on-disk
    // round-trip, across several seeds.
    use impatience_sim::engine::{run_trial, run_trial_materialized};
    let mut rng = Xoshiro256::seed_from_u64(11);
    let original = small_conference(&mut rng);
    let mut bytes = Vec::new();
    write_trace(&original, &mut bytes).unwrap();
    let loaded = read_trace(bytes.as_slice()).unwrap();

    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(60.0));
    let config = SimConfig::builder(15, 3)
        .demand(Popularity::pareto(15, 1.0).demand_rates(1.0))
        .profile(DemandProfile::uniform(15, loaded.nodes()))
        .utility(utility)
        .bin(60.0)
        .build();
    let source = ContactSource::trace(loaded);
    for seed in [1u64, 9, 42] {
        let lazy = run_trial(&config, &source, PolicyKind::qcr_default(), seed);
        let mat = run_trial_materialized(&config, &source, PolicyKind::qcr_default(), seed);
        assert_eq!(lazy.final_replicas, mat.final_replicas, "seed {seed}");
        assert_eq!(lazy.label, mat.label);
        assert_eq!(
            lazy.metrics.requests_created, mat.metrics.requests_created,
            "seed {seed}"
        );
        assert_eq!(lazy.metrics.immediate_hits, mat.metrics.immediate_hits);
        assert_eq!(lazy.metrics.unfulfilled, mat.metrics.unfulfilled);
        assert_eq!(lazy.metrics.transmissions, mat.metrics.transmissions);
        assert_eq!(lazy.metrics.fulfillments(), mat.metrics.fulfillments());
        assert_eq!(
            lazy.metrics.observed_rate_series(),
            mat.metrics.observed_rate_series(),
            "seed {seed}: observed series diverged"
        );
    }
}

#[test]
fn discrete_contact_sequence_is_policy_independent() {
    // The slotted engine's contacts come from a generator forked off the
    // trial RNG (`DiscreteSource::stream`), so the contact trajectory is
    // a function of the seed alone: two runs with different policies —
    // which consume different amounts of demand randomness — must still
    // see the identical contact sequence. This is the determinism
    // contract that lets the lazy geometric-skipping sampler replace the
    // dense per-pair Bernoulli scan.
    use impatience_core::prelude::uniform;
    use impatience_obs::{Event, MemorySink, Recorder};
    use impatience_sim::engine_discrete::{run_trial_discrete_observed, DiscreteSource};

    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
    let config = SimConfig::builder(12, 2)
        .demand(Popularity::pareto(12, 1.0).demand_rates(1.0))
        .utility(utility)
        .bin(50.0)
        .build();
    let source = DiscreteSource {
        nodes: 12,
        mu: 0.05,
        delta: 0.5,
        slots: 2_000,
    };
    let contacts_under = |policy: PolicyKind| -> Vec<Event> {
        let mut rec = Recorder::new(MemorySink::new());
        run_trial_discrete_observed(&config, &source, policy, 7, &mut rec);
        rec.into_sink()
            .events
            .into_iter()
            .filter(|e| matches!(e, Event::Contact { .. }))
            .collect()
    };
    let qcr = contacts_under(PolicyKind::qcr_default());
    let uni = contacts_under(PolicyKind::Static {
        label: "UNI",
        counts: uniform(12, 12, 2),
    });
    assert!(!qcr.is_empty(), "no contacts recorded");
    assert_eq!(qcr, uni, "contact sequence must not depend on the policy");
}

#[test]
fn select_most_active_matches_paper_preprocessing() {
    // §6.3 keeps the 50 best-covered of 73 participants. Emulate on a
    // smaller population and check the kept nodes really are the busiest.
    let mut rng = Xoshiro256::seed_from_u64(5);
    let trace = small_conference(&mut rng);
    let selected = trace.select_most_active(10);
    assert_eq!(selected.nodes(), 10);
    let min_kept = selected.contact_counts().into_iter().min().unwrap();
    // Every kept node must beat the median of the original population.
    let mut original_counts = trace.contact_counts();
    original_counts.sort_unstable();
    let median = original_counts[original_counts.len() / 2];
    assert!(
        min_kept >= median / 2,
        "selection kept a sparse node ({min_kept} vs median {median})"
    );
}

#[test]
fn conference_day_night_cycle_survives_simulation() {
    // The observed utility of a trace-driven run must show more gain in
    // conference hours than at night (Fig. 5a's pattern).
    let mut rng = Xoshiro256::seed_from_u64(6);
    let trace = small_conference(&mut rng);
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(60.0));
    let config = SimConfig::builder(15, 3)
        .demand(Popularity::pareto(15, 1.0).demand_rates(1.0))
        .profile(DemandProfile::uniform(15, trace.nodes()))
        .utility(utility)
        .bin(60.0)
        .warmup_fraction(0.0)
        .build();
    let agg = run_trials(
        &config,
        &ContactSource::trace(trace),
        &PolicyKind::qcr_default(),
        3,
        8,
    );
    let mut day = 0.0;
    let mut night = 0.0;
    for (h, &v) in agg.observed_series.iter().enumerate() {
        match h % 24 {
            9..=17 => day += v,
            0..=8 => night += v,
            _ => {}
        }
    }
    assert!(
        day > 1.5 * night,
        "no diurnal pattern in observed utility (day {day:.2}, night {night:.2})"
    );
}
