//! End-to-end behaviour of the QCR protocol: does the distributed scheme
//! actually drive the global cache toward the allocation the theory
//! prescribes, and do the paper's qualitative comparisons hold?
//!
//! These are statistical tests over multiple seeded trials; thresholds
//! are deliberately generous so they are robust, but tight enough that a
//! broken reaction function, broken mandate routing, or broken eviction
//! logic fails them.

use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::utility::DelayUtility;
use impatience_sim::config::SimConfig;
use impatience_sim::policy::{PolicyKind, QcrConfig};

fn setting(
    utility: Arc<dyn DelayUtility>,
    duration: f64,
) -> (SimConfig, ContactSource, SystemModel) {
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
    let config = SimConfig::builder(50, 5)
        .demand(demand)
        .utility(utility)
        .bin(100.0)
        .warmup_fraction(0.3)
        .build();
    let source = ContactSource::homogeneous(50, 0.05, duration);
    (config, source, system)
}

#[test]
fn qcr_tracks_the_square_root_allocation_at_alpha_zero() {
    // α = 0 ⇒ x̃_i ∝ √d_i (the Cohen–Shenker point). The time-averaged
    // QCR allocation must be far closer to √-proportional than to
    // proportional or uniform.
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(0.0));
    let (config, source, system) = setting(utility.clone(), 4_000.0);
    let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), 6, 11);

    let relaxed = relaxed_optimum(&system, &config.demand, utility.as_ref());
    let l1 = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
    let to_target = l1(&agg.mean_final_replicas, &relaxed.x);
    let uni: Vec<f64> = vec![5.0; 50];
    let to_uniform = l1(&agg.mean_final_replicas, &uni);
    let prop: Vec<f64> = proportional(&config.demand, 50, 5).as_f64();
    let to_prop = l1(&agg.mean_final_replicas, &prop);
    assert!(
        to_target < to_uniform && to_target < to_prop,
        "QCR allocation (L1 to √: {to_target:.1}, to UNI: {to_uniform:.1}, to PROP: {to_prop:.1})"
    );
}

#[test]
fn qcr_lands_within_a_few_percent_of_opt_for_step_deadlines() {
    for tau in [3.0, 30.0] {
        let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(tau));
        let (config, source, system) = setting(utility.clone(), 4_000.0);
        let opt = greedy_homogeneous(&system, &config.demand, utility.as_ref());
        let qcr = run_trials(&config, &source, &PolicyKind::qcr_default(), 6, 7);
        let opt_sim = run_trials(
            &config,
            &source,
            &PolicyKind::Static {
                label: "OPT",
                counts: opt,
            },
            6,
            7,
        );
        let loss = (qcr.mean_rate - opt_sim.mean_rate) / opt_sim.mean_rate.abs();
        assert!(
            loss > -0.10,
            "τ={tau}: QCR {:.4} vs OPT {:.4} (loss {:.1}%)",
            qcr.mean_rate,
            opt_sim.mean_rate,
            100.0 * loss
        );
    }
}

#[test]
fn mandate_routing_beats_leaving_mandates_at_origin() {
    // The Fig. 3 ablation as a regression test (power α = 0).
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(0.0));
    let (config, source, _) = setting(utility, 4_000.0);
    let with = run_trials(&config, &source, &PolicyKind::qcr_default(), 6, 5);
    let without = run_trials(
        &config,
        &source,
        &PolicyKind::Qcr(QcrConfig {
            mandate_routing: false,
            ..QcrConfig::default()
        }),
        6,
        5,
    );
    assert!(
        with.mean_rate > without.mean_rate,
        "routing {:.4} should beat no-routing {:.4}",
        with.mean_rate,
        without.mean_rate
    );
}

#[test]
fn passive_replication_drifts_toward_proportional() {
    // §6.2: one-replica-per-fulfillment passive replication "resembles"
    // the proportional allocation — its equilibrium follows demand, and
    // its head items end up noticeably above uniform.
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
    let (config, source, _) = setting(utility, 6_000.0);
    let agg = run_trials(
        &config,
        &source,
        &PolicyKind::Passive { replicas: 1.0 },
        6,
        3,
    );
    let x = &agg.mean_final_replicas;
    // Heads above the uniform level, tails below it.
    let head: f64 = x[..5].iter().sum::<f64>() / 5.0;
    let tail: f64 = x[45..].iter().sum::<f64>() / 5.0;
    assert!(
        head > 1.5 * tail,
        "passive allocation should be demand-skewed (head {head:.2}, tail {tail:.2})"
    );
    // And it should correlate with demand better than with uniform.
    let prop = proportional(&config.demand, 50, 5).as_f64();
    let l1_prop: f64 = x.iter().zip(&prop).map(|(a, b)| (a - b).abs()).sum();
    let l1_uni: f64 = x.iter().map(|a| (a - 5.0).abs()).sum();
    assert!(
        l1_prop < l1_uni,
        "closer to PROP ({l1_prop:.1}) than UNI ({l1_uni:.1})"
    );
}

#[test]
fn sticky_replicas_prevent_item_extinction() {
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(1.0));
    let (config, source, _) = setting(utility, 3_000.0);
    // Tight deadline drives extreme skew — exactly when extinction of the
    // tail would otherwise happen.
    let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), 4, 9);
    for (i, &x) in agg.mean_final_replicas.iter().enumerate() {
        assert!(x >= 1.0, "item {i} fell below its sticky copy ({x})");
    }
}

#[test]
fn qcr_budget_is_conserved_through_heavy_churn() {
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(1.0));
    let (config, source, _) = setting(utility, 2_000.0);
    let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), 4, 13);
    let total: f64 = agg.mean_final_replicas.iter().sum();
    assert!((total - 250.0).abs() < 1e-9, "budget drifted to {total}");
    assert!(
        agg.mean_transmissions > 0.0,
        "no replication happened at τ=1"
    );
}

#[test]
fn paired_seeds_make_policy_comparisons_reproducible() {
    let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.5));
    let (config, source, _) = setting(utility, 1_000.0);
    let a = run_trials(&config, &source, &PolicyKind::qcr_default(), 3, 21);
    let b = run_trials(&config, &source, &PolicyKind::qcr_default(), 3, 21);
    assert_eq!(a.rates, b.rates);
    assert_eq!(a.mean_final_replicas, b.mean_final_replicas);
}
