//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this vendors
//! the slice of criterion's API the bench targets use: `Criterion`,
//! benchmark groups with warm-up/measurement-time/sample-size knobs,
//! `bench_function` / `bench_with_input`, `Throughput::Elements`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is real but simple: after a warm-up phase the iteration
//! count is calibrated so each sample fills its share of the measurement
//! window, then per-iteration times are reported as median over samples
//! (with min/max spread). No HTML reports, baselines, or statistics
//! beyond that — enough to compare variants within one run, which is
//! what the workspace's overhead checks do.

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to each bench function by `criterion_group!`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards extra args; honour the first
        // non-flag one as a substring filter like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
        }
    }

    /// Benchmark a single routine outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into().0;
        if self.skips(&id) {
            return;
        }
        run_one(&id, Duration::from_secs(3), Duration::from_secs(5), 100, f);
    }

    fn skips(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }
}

/// A set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// How long to run the routine before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    /// Total time budget for measured samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Number of samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record throughput per iteration (reported alongside times).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark one routine within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into().0);
        if self.criterion.skips(&id) {
            return;
        }
        run_one(&id, self.warm_up, self.measurement, self.sample_size, f);
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (kept for API compatibility; output is immediate).
    pub fn finish(self) {}
}

/// Times a routine; handed to bench closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured number of iterations and record
    /// the total elapsed time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Units-of-work declaration (accepted, not currently reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId(s.clone())
    }
}

fn run_one(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };

    // Warm up and estimate the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut iters_done = 0u64;
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        iters_done += b.iterations;
        // Grow the batch so the warm-up loop itself is cheap for fast
        // routines (sub-microsecond bodies would otherwise spend the
        // whole budget on Instant::now calls).
        if b.elapsed < Duration::from_millis(1) {
            b.iterations = (b.iterations * 2).min(1 << 20);
        }
    }
    let warm_elapsed = warm_start.elapsed();
    let per_iter = warm_elapsed.as_secs_f64() / iters_done.max(1) as f64;

    // Calibrate so `sample_size` samples fill the measurement window.
    let per_sample = measurement.as_secs_f64() / sample_size as f64;
    b.iterations = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 28);

    let mut samples_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / b.iterations as f64
        })
        .collect();
    samples_ns.sort_by(f64::total_cmp);

    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect bench functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($f(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("spin", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(3u64).wrapping_mul(7))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".to_string()),
        };
        let mut ran = false;
        c.bench_function("this_one", |b| {
            ran = true;
            b.iter(|| 1u32)
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(50).0, "50");
        assert_eq!(BenchmarkId::new("qcr", 5).0, "qcr/5");
    }
}
