//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: an exact size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element`, with target size from `size`.
///
/// If the element domain is too small to reach the drawn size, the set
/// is returned smaller rather than looping forever (matching proptest's
/// best-effort behaviour on narrow domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut misses = 0;
        while set.len() < want && misses < 64 {
            if !set.insert(self.element.sample(rng)) {
                misses += 1;
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec_exact_and_ranged_lengths");
        assert_eq!(vec(0.0f64..1.0, 5).sample(&mut rng).len(), 5);
        for _ in 0..100 {
            let v = vec(0u64..9, 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let mut rng = TestRng::for_test("btree_set_is_distinct_and_bounded");
        for _ in 0..100 {
            let s = btree_set(0usize..8, 1..4).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 4);
            assert!(s.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn btree_set_narrow_domain_terminates() {
        let mut rng = TestRng::for_test("btree_set_narrow_domain_terminates");
        let s = btree_set(0usize..2, 5..6).sample(&mut rng);
        assert!(s.len() <= 2);
    }
}
