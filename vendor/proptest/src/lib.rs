//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the slice of proptest's API it actually uses:
//! the `proptest!` macro, range/`prop_map`/`prop_oneof!` strategies,
//! `collection::{vec, btree_set}`, and the `prop_assert*`/`prop_assume!`
//! macros. Generation is a deterministic splitmix64 stream seeded from
//! the test name (override with `PROPTEST_SEED`), so failures reproduce
//! exactly. There is no shrinking: a failing case reports its number and
//! seed instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import: strategies, config, and macros.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declare property tests.
///
/// Supports the common form: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items. Each body
/// runs once per case with freshly sampled arguments; `prop_assert*!`
/// failures abort the test, `prop_assume!` rejections skip the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut case = 0u32;
            let mut rejects = 0u32;
            while case < config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > config.cases * 16 {
                            // Mirrors proptest's give-up behaviour rather
                            // than spinning forever on a dead assume.
                            panic!(
                                "proptest '{}': too many prop_assume! rejections ({rejects})",
                                stringify!($name),
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at case {case} (seed {}): {msg}",
                        stringify!($name),
                        rng.seed(),
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::new();
        $(union = union.or($strat);)+
        union
    }};
}

/// Assert inside a proptest body; failure aborts the test with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({l:?} vs {r:?})",
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
