//! Config, RNG, and case outcome types behind the `proptest!` macro.

/// How many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assert*!` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// Deterministic generator (splitmix64) so failures reproduce.
///
/// Seeded from the test name; set `PROPTEST_SEED` to replay a specific
/// stream across every property.
#[derive(Clone, Debug)]
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    /// The stream for a named test.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or_else(|_| hash_name(&v)),
            Err(_) => hash_name(name),
        };
        TestRng { seed, state: seed }
    }

    /// The seed this stream started from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea & Flood).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is ~2^-50 for the ranges tests use; acceptable here.
        self.next_u64() % n
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_test("y");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn unit_interval() {
        let mut r = TestRng::for_test("unit_interval");
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
