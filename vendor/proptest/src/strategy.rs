//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe so `prop_oneof!` can mix heterogeneous strategies behind
/// `Box<dyn Strategy>`; combinators that consume `self` are gated on
/// `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_oneof!`: a uniform choice between strategies of one value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; sampling panics until an option is added.
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Add an option.
    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union::new()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )+};
}

int_range_strategy!(u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::for_test("tuples_sample_componentwise");
        for _ in 0..200 {
            let (a, b) = (0u32..4, 1u64..1000).sample(&mut rng);
            assert!(a < 4);
            assert!((1..1000).contains(&b));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_test("map_and_union_compose");
        let s = crate::prop_oneof![
            (0u64..10).prop_map(|n| n as i64),
            (100u64..110).prop_map(|n| n as i64),
        ];
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "union never picked one branch");
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::for_test("just_clones");
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
