//! Distributed-runtime differential: the message-passing QCR kernel
//! (`impatience-net`) against the in-process engine on paired seeds.
//!
//! Both runtimes seed trial `k` with `base_seed + k` and fork their
//! streams in the same order, so a pair of trials shares its contact
//! stream, sticky fill, and demand arrivals exactly. The comparison
//! therefore runs on the *paired differences* of the per-trial welfare
//! rates — a much tighter interval than two independent CLT widths,
//! and the honest one: any systematic gap between the runtimes shows up
//! directly in the mean difference instead of being washed out by
//! between-seed variance.
//!
//! The deterministic [`Comparison::allowance`] covers the two documented
//! biases of the distributed runtime:
//!
//! 1. **Protocol latency.** A fulfillment needs advert → request →
//!    fulfill, so every wait is stretched by ≈ 3 one-way message delays
//!    relative to the engine's instantaneous contact service. The rate
//!    effect is bounded by the utility's worst relative decay over such
//!    a stretch.
//! 2. **Cap-pressure routing.** Under mandate-cap pressure both sides of
//!    a meeting may ship mandates simultaneously where the engine's
//!    sequential router would have clamped one direction; pools stay
//!    within the cap (overflow is discarded on receipt) but the final
//!    resting places can differ, a second-order allocation effect.

use impatience_net::{run_net_trial, NetConfig, NetError};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::run_trial;
use impatience_sim::policy::PolicyKind;

use crate::differential::{clt_interval, Comparison};

/// Worst relative decay `1 − h(w + lat)/h(w)` of the utility over a
/// latency stretch `lat`, probed at a small set of waits (plus `0⁺` when
/// `h(0)` is finite). For the convex decreasing utilities used here the
/// ratio is maximized at small waits; the probe set brackets that.
fn latency_decay(config: &SimConfig, lat: f64) -> f64 {
    let u = config.utility.as_ref();
    let mut worst: f64 = 0.0;
    let mut probes = vec![0.1, 1.0, 10.0, 100.0];
    if u.h_zero().is_finite() {
        probes.push(0.0);
    }
    for w in probes {
        let base = u.h(w);
        if base.is_finite() && base > 0.0 {
            worst = worst.max(1.0 - u.h(w + lat) / base);
        }
    }
    worst.clamp(0.0, 1.0)
}

/// Run `trials` paired trials through the engine and the distributed
/// kernel and compare their post-warm-up welfare rates.
///
/// `reference` is the engine's mean rate, `estimate` the kernel's, and
/// `half_width` the CLT interval of the *paired* per-seed differences at
/// the chosen `z`. The allowance bounds the kernel's documented
/// deterministic biases (protocol latency, cap-pressure routing); see
/// the module docs.
///
/// Any kernel error (conservation violation, strict-mode timeout,
/// invalid [`NetConfig`]) aborts the comparison.
///
/// # Panics
/// Panics if `trials == 0`.
pub fn net_vs_engine(
    config: &SimConfig,
    source: &ContactSource,
    net: &NetConfig,
    trials: usize,
    base_seed: u64,
    z: f64,
) -> Result<Comparison, NetError> {
    assert!(trials > 0, "need at least one trial");
    net.validate()?;
    let warmup = config.warmup_fraction;
    let policy = PolicyKind::Qcr(net.qcr.clone());
    let mut engine = Vec::with_capacity(trials);
    let mut distributed = Vec::with_capacity(trials);
    for k in 0..trials {
        let seed = base_seed.wrapping_add(k as u64);
        engine.push(
            run_trial(config, source, policy.clone(), seed)
                .metrics
                .average_observed_rate(warmup),
        );
        distributed.push(
            run_net_trial(config, source, net, seed)?
                .metrics
                .average_observed_rate(warmup),
        );
    }
    let mean_e = engine.iter().sum::<f64>() / trials as f64;
    let mean_n = distributed.iter().sum::<f64>() / trials as f64;
    let diffs: Vec<f64> = distributed
        .iter()
        .zip(&engine)
        .map(|(n, e)| n - e)
        .collect();
    let (_, hw) = clt_interval(&diffs, z);

    // Protocol latency: advert + request + fulfill, one hop each.
    let latency = 3.0 * net.msg_delay;
    let latency_bias = mean_e.abs() * latency_decay(config, latency);
    // Cap-pressure routing: allocation drift, second order in the rate.
    let routing_bias = 0.02 * mean_e.abs();
    Ok(Comparison {
        reference: mean_e,
        estimate: mean_n,
        half_width: hw,
        allowance: latency_bias + routing_bias,
        samples: trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::{Exponential, Step};
    use impatience_sim::faults::MsgFaults;
    use std::sync::Arc;

    fn config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build()
    }

    #[test]
    fn clean_transport_agrees_with_engine() {
        let config = config(10, 2);
        let source = ContactSource::homogeneous(12, 0.1, 1_500.0);
        let cmp = net_vs_engine(&config, &source, &NetConfig::default(), 5, 41, 3.5).unwrap();
        assert!(
            cmp.agrees(),
            "distributed QCR diverged from the engine: {}",
            cmp.describe()
        );
        assert!(cmp.reference > 0.0 && cmp.estimate > 0.0);
    }

    #[test]
    fn agreement_holds_for_exponential_utility() {
        let config = SimConfig::builder(8, 2)
            .demand(Popularity::pareto(8, 1.0).demand_rates(0.5))
            .utility(Arc::new(Exponential::new(0.1)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(10, 0.1, 1_500.0);
        let cmp = net_vs_engine(&config, &source, &NetConfig::default(), 5, 77, 3.5).unwrap();
        assert!(cmp.agrees(), "{}", cmp.describe());
    }

    #[test]
    fn lossy_transport_is_bounded_below_clean() {
        use impatience_sim::faults::FaultConfig;
        let mut config = config(8, 2);
        let source = ContactSource::homogeneous(10, 0.1, 1_500.0);
        let net = NetConfig::default();
        let clean = net_vs_engine(&config, &source, &net, 4, 91, 3.5).unwrap();
        config.faults = Some(FaultConfig {
            msg: Some(MsgFaults {
                loss_p: 0.10,
                dup_p: 0.0,
                reorder_window: 0,
            }),
            ..FaultConfig::default()
        });
        let lossy = net_vs_engine(&config, &source, &net, 4, 91, 3.5).unwrap();
        // Retries mask most loss inside the contact window: welfare must
        // stay within a bounded factor of the clean run, not collapse.
        assert!(
            lossy.estimate > 0.5 * clean.estimate,
            "10% loss collapsed welfare: clean {} vs lossy {}",
            clean.estimate,
            lossy.estimate
        );
    }
}
