//! The seeded conformance matrix: every combination of utility family ×
//! population shape × contact regime × fault injection, each cell a
//! self-describing record reporting pass/fail per invariant.
//!
//! All instances are tiny by construction (4 items, 3 servers, cache
//! ρ = 2) so the brute-force oracle of [`crate::brute`] stays exhaustive,
//! and every scenario derives its randomness from `base_seed` through
//! [`Xoshiro256::split`] — the whole matrix is reproducible from one
//! number.

use std::sync::Arc;
use std::time::Instant;

use impatience_core::allocation::{AllocationMatrix, ReplicaCounts};
use impatience_core::demand::{DemandProfile, DemandRates, Popularity};
use impatience_core::numeric::tolerances;
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::het_greedy::greedy_heterogeneous;
use impatience_core::solver::incremental::{Delta, DeltaOutcome, DeltaSolver};
use impatience_core::solver::relaxed::try_relaxed_optimum;
use impatience_core::types::SystemModel;
use impatience_core::utility::{Custom, DelayUtility, Exponential, NegLog, Power, Step};
use impatience_core::welfare::{
    item_welfare_heterogeneous, social_welfare_heterogeneous, social_welfare_homogeneous,
    ContactRates, HeterogeneousSystem,
};
use impatience_json::Json;
use impatience_obs::{Recorder, Sink};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::run_trial;
use impatience_sim::faults::{ContactDrop, FaultConfig};
use impatience_sim::policy::PolicyKind;

use crate::brute::{brute_force_heterogeneous, brute_force_homogeneous};
use crate::differential::{analytic_vs_simulated, engines_match, slot_refinement_errors};

/// Matrix dimensions, fixed so the brute-force oracle stays exhaustive
/// (`|I| ≤ 8` and `ρ·|S| ≤ 10` everywhere): catalog size, dedicated
/// server count, cache capacity, baseline μ. Node counts vary per
/// population shape — see [`PopKind::nodes`].
const ITEMS: usize = 4;
const SERVERS: usize = 3;
const RHO: usize = 2;
const BASE_MU: f64 = 0.05;

/// The invariants every scenario reports on, in matrix-column order.
pub const INVARIANTS: &[&str] = &[
    "submodularity",
    "equilibrium",
    "monotonicity",
    "greedy_vs_brute",
    "determinism",
    "slot_refinement",
    "solver_variants",
    "analytic_mc",
    "engine_duality",
];

/// Outcome of one invariant check within a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckStatus {
    /// The invariant held.
    Pass,
    /// The invariant was violated.
    Fail,
    /// The invariant does not apply to this cell (with the reason in the
    /// result's detail).
    Skipped,
}

impl CheckStatus {
    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CheckStatus::Pass => "pass",
            CheckStatus::Fail => "fail",
            CheckStatus::Skipped => "skipped",
        }
    }
}

/// One invariant's verdict: name, status, the measured quantity (residual,
/// worst violation, relative gap — NaN when skipped), and a human-readable
/// detail line.
#[derive(Clone, Debug)]
pub struct InvariantResult {
    /// Invariant name (one of [`INVARIANTS`]).
    pub name: &'static str,
    /// Pass / fail / skipped.
    pub status: CheckStatus,
    /// The measured quantity behind the verdict (NaN when skipped).
    pub value: f64,
    /// Human-readable explanation (the skip reason, or what was measured).
    pub detail: String,
}

impl InvariantResult {
    fn pass(name: &'static str, value: f64, detail: impl Into<String>) -> Self {
        InvariantResult {
            name,
            status: CheckStatus::Pass,
            value,
            detail: detail.into(),
        }
    }

    fn fail(name: &'static str, value: f64, detail: impl Into<String>) -> Self {
        InvariantResult {
            name,
            status: CheckStatus::Fail,
            value,
            detail: detail.into(),
        }
    }

    fn skipped(name: &'static str, reason: impl Into<String>) -> Self {
        InvariantResult {
            name,
            status: CheckStatus::Skipped,
            value: f64::NAN,
            detail: reason.into(),
        }
    }

    fn check(name: &'static str, ok: bool, value: f64, detail: impl Into<String>) -> Self {
        if ok {
            InvariantResult::pass(name, value, detail)
        } else {
            InvariantResult::fail(name, value, detail)
        }
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("status", Json::Str(self.status.label().to_string())),
            ("value", Json::Float(self.value)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// One cell of the conformance matrix: what was configured, what was
/// checked, and how it went.
#[derive(Clone, Debug)]
pub struct ScenarioRecord {
    /// Position in the matrix enumeration order.
    pub index: u64,
    /// Stable scenario name, `utility/population/contacts/faults`.
    pub name: String,
    /// The seed all of this cell's randomness derives from.
    pub seed: u64,
    /// Utility-family label.
    pub utility: String,
    /// Population label (`dedicated`, `pure-p2p`, `mixed`).
    pub population: String,
    /// Contact-regime label (`hom`, `het`).
    pub contacts: String,
    /// Whether fault injection was active in the simulation checks.
    pub faults: bool,
    /// Per-invariant verdicts, in [`INVARIANTS`] order.
    pub results: Vec<InvariantResult>,
    /// Wall-clock seconds spent on this cell.
    pub wall_s: f64,
}

impl ScenarioRecord {
    /// Number of invariants that passed.
    pub fn passed(&self) -> u32 {
        self.count(CheckStatus::Pass)
    }

    /// Number of invariants that failed.
    pub fn failed(&self) -> u32 {
        self.count(CheckStatus::Fail)
    }

    /// Number of invariants skipped as not applicable.
    pub fn skipped(&self) -> u32 {
        self.count(CheckStatus::Skipped)
    }

    fn count(&self, status: CheckStatus) -> u32 {
        self.results.iter().filter(|r| r.status == status).count() as u32
    }

    /// Whether any invariant check actually ran in this cell.
    pub fn ran(&self) -> bool {
        self.results
            .iter()
            .any(|r| r.status != CheckStatus::Skipped)
    }

    /// Encode as a self-describing JSON object (one conformance-report
    /// line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::from(self.index)),
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::Str(format!("{:#x}", self.seed))),
            ("utility", Json::Str(self.utility.clone())),
            ("population", Json::Str(self.population.clone())),
            ("contacts", Json::Str(self.contacts.clone())),
            ("faults", Json::Bool(self.faults)),
            ("passed", Json::from(self.passed())),
            ("failed", Json::from(self.failed())),
            ("skipped", Json::from(self.skipped())),
            (
                "results",
                Json::Array(self.results.iter().map(InvariantResult::to_json).collect()),
            ),
            ("wall_s", Json::Float(self.wall_s)),
        ])
    }
}

/// Knobs of a matrix run.
#[derive(Clone, Copy, Debug)]
pub struct MatrixOptions {
    /// Quick mode runs the solver/analytic invariants plus short
    /// determinism trials; full mode adds the Monte-Carlo differential
    /// checks (`analytic_mc`, `engine_duality`).
    pub quick: bool,
    /// Root seed; every scenario's randomness is split from it.
    pub base_seed: u64,
    /// Run only the first `n` cells of the enumeration (`None` = the
    /// whole matrix). Cell seeds do not depend on the limit, so a
    /// truncated run is a prefix of the full one — used by fast unit
    /// tests; the CLI always runs everything.
    pub limit: Option<usize>,
}

impl MatrixOptions {
    /// Quick mode (the CI gate), full matrix.
    pub fn quick(base_seed: u64) -> Self {
        MatrixOptions {
            quick: true,
            base_seed,
            limit: None,
        }
    }

    /// Full mode, including the Monte-Carlo differential checks.
    pub fn full(base_seed: u64) -> Self {
        MatrixOptions {
            quick: false,
            base_seed,
            limit: None,
        }
    }

    /// Restrict the run to the first `n` cells.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PopKind {
    Dedicated,
    PureP2p,
    Mixed,
}

impl PopKind {
    fn label(self) -> &'static str {
        match self {
            PopKind::Dedicated => "dedicated",
            PopKind::PureP2p => "pure-p2p",
            PopKind::Mixed => "mixed",
        }
    }

    /// Node count, sized so the exhaustive oracle stays cheap: the
    /// pure-P2P brute force enumerates `(Σ_{k≤ρ} C(|I|,k))^{nodes}`
    /// configurations, so every node being a server caps the population
    /// harder than the dedicated shape does.
    fn nodes(self) -> usize {
        match self {
            PopKind::Dedicated => 6,
            PopKind::PureP2p => 4,
            PopKind::Mixed => 5,
        }
    }

    fn system(self, rates: ContactRates) -> HeterogeneousSystem {
        match self {
            PopKind::Dedicated => {
                HeterogeneousSystem::dedicated(rates, vec![0, 1, 2], vec![3, 4, 5], RHO)
            }
            PopKind::PureP2p => HeterogeneousSystem::pure_p2p(rates, RHO),
            // Node 2 is both server and client: the general C ∩ S ≠ ∅ case.
            PopKind::Mixed => {
                HeterogeneousSystem::dedicated(rates, vec![0, 1, 2], vec![2, 3, 4], RHO)
            }
        }
    }

    /// The homogeneous [`SystemModel`] this population reduces to under
    /// constant rates, if any (mixed populations have no such reduction).
    fn reduction(self, mu: f64) -> Option<SystemModel> {
        match self {
            PopKind::Dedicated => Some(SystemModel::dedicated(3, SERVERS, RHO, mu)),
            PopKind::PureP2p => Some(SystemModel::pure_p2p(self.nodes(), RHO, mu)),
            PopKind::Mixed => None,
        }
    }
}

fn utilities() -> Vec<(&'static str, Arc<dyn DelayUtility>)> {
    vec![
        ("step", Arc::new(Step::new(5.0))),
        ("exp", Arc::new(Exponential::new(0.5))),
        ("power", Arc::new(Power::new(0.5))),
        ("neglog", Arc::new(NegLog::new())),
        (
            "custom",
            Arc::new(
                Custom::new(|t| 1.0 / (1.0 + t), 1.0, 0.0)
                    .with_derivative(|t| 1.0 / ((1.0 + t) * (1.0 + t))),
            ),
        ),
    ]
}

/// Run the full conformance matrix, streaming one
/// [`Recorder::scenario_done`] event per cell, and return every cell's
/// record. Deterministic given `opts.base_seed` (wall-clock metadata
/// aside).
pub fn run_matrix<S: Sink>(opts: &MatrixOptions, rec: &mut Recorder<S>) -> Vec<ScenarioRecord> {
    let pops = [PopKind::Dedicated, PopKind::PureP2p, PopKind::Mixed];
    // 5 utilities × 3 populations × {hom,het} × {clean,faults}, capped by
    // an explicit --limit. The meter is stderr-only and TTY-gated, so
    // batch runs and the JSONL report never see it.
    let full = utilities().len() * pops.len() * 2 * 2;
    let total = opts.limit.map_or(full, |n| n.min(full)) as u64;
    let mut progress = impatience_obs::Progress::new("verify", total);
    let mut records = Vec::new();
    let mut root = Xoshiro256::seed_from_u64(opts.base_seed);
    let mut index = 0u64;
    'matrix: for (ulabel, utility) in utilities() {
        for pop in pops {
            for het_contacts in [false, true] {
                for faults in [false, true] {
                    if opts.limit.is_some_and(|n| records.len() >= n) {
                        break 'matrix;
                    }
                    let started = Instant::now();
                    let seed = root.split(index).next_u64();
                    let record = run_scenario(
                        opts,
                        index,
                        seed,
                        ulabel,
                        Arc::clone(&utility),
                        pop,
                        het_contacts,
                        faults,
                        started,
                    );
                    rec.scenario_done(
                        index,
                        record.passed(),
                        record.failed(),
                        record.skipped(),
                        record.wall_s,
                    );
                    progress.tick(&record.name);
                    records.push(record);
                    index += 1;
                }
            }
        }
    }
    progress.finish();
    records
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    opts: &MatrixOptions,
    index: u64,
    seed: u64,
    ulabel: &str,
    utility: Arc<dyn DelayUtility>,
    pop: PopKind,
    het_contacts: bool,
    faults: bool,
    started: Instant,
) -> ScenarioRecord {
    let _span = impatience_obs::span!("scenario");
    let contacts_label = if het_contacts { "het" } else { "hom" };
    let faults_label = if faults { "faults" } else { "clean" };
    let name = format!("{ulabel}/{}/{contacts_label}/{faults_label}", pop.label());

    let mut record = ScenarioRecord {
        index,
        name,
        seed,
        utility: ulabel.to_string(),
        population: pop.label().to_string(),
        contacts: contacts_label.to_string(),
        faults,
        results: Vec::new(),
        wall_s: 0.0,
    };

    // h(0⁺) = ∞ families are only meaningful when no client can
    // self-serve (§3.2); the welfare of a self-cached replica would be
    // infinite.
    if utility.requires_dedicated() && pop != PopKind::Dedicated {
        let reason = format!("{ulabel} has h(0+)=∞ and requires a dedicated population");
        record.results = INVARIANTS
            .iter()
            .map(|n| InvariantResult::skipped(n, reason.clone()))
            .collect();
        record.wall_s = started.elapsed().as_secs_f64();
        return record;
    }

    let mut rng = Xoshiro256::seed_from_u64(seed);
    let nodes = pop.nodes();
    let rates = if het_contacts {
        let mut r = ContactRates::homogeneous(nodes, BASE_MU);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                r.set_rate(a, b, rng.range(0.02, 0.08));
            }
        }
        r
    } else {
        ContactRates::homogeneous(nodes, BASE_MU)
    };
    let mu_mean = rates.mean_rate();
    let system = pop.system(rates);
    let demand = Popularity::pareto(ITEMS, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(ITEMS, system.clients.len());
    let util = utility.as_ref();

    record
        .results
        .push(check_submodularity(&system, &demand, &profile, util));
    record
        .results
        .push(check_equilibrium(pop, mu_mean, &demand, util));
    record.results.push(check_monotonicity(
        &system, &demand, &profile, util, &mut rng,
    ));
    record.results.push(check_greedy_vs_brute(
        &system,
        pop,
        het_contacts,
        mu_mean,
        &demand,
        &profile,
        util,
    ));
    record
        .results
        .push(check_determinism(pop, &utility, &demand, faults, seed));
    record
        .results
        .push(check_slot_refinement(pop, mu_mean, &demand, util));
    record
        .results
        .push(check_solver_variants(pop, mu_mean, &demand, &utility, seed));

    if opts.quick {
        record
            .results
            .push(InvariantResult::skipped("analytic_mc", "full mode only"));
        record
            .results
            .push(InvariantResult::skipped("engine_duality", "full mode only"));
    } else {
        record.results.push(check_analytic_mc(
            pop,
            het_contacts,
            &utility,
            &demand,
            faults,
            seed,
        ));
        record.results.push(check_engine_duality(
            pop,
            het_contacts,
            &utility,
            &demand,
            faults,
            seed,
        ));
    }

    record.wall_s = started.elapsed().as_secs_f64();
    record
}

/// Whether welfare under this utility is non-negative (`0 ≤ h ≤ h(0⁺)`),
/// making the submodular `(1−1/e)` bound of Theorem 1 meaningful. For
/// cost-type families (h unbounded below) only dominance by OPT is
/// checkable.
fn non_negative(utility: &dyn DelayUtility) -> bool {
    utility.h_infinity() == 0.0 && utility.h_zero().is_finite() && utility.h_zero() >= 0.0
}

/// Submodularity of per-item marginal gains (the hypothesis of
/// Theorem 1): for holder sets `A ⊆ B` and a server `s ∉ B`,
/// `w(A∪{s}) − w(A) ≥ w(B∪{s}) − w(B)`. With only 3 server columns the
/// check is exhaustive over all chains and items.
fn check_submodularity(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> InvariantResult {
    let cols = system.servers.len();
    let mut worst = f64::NEG_INFINITY;
    let mut checked = 0u32;
    let w = |item: usize, mask: u32| {
        let holders: Vec<usize> = (0..cols).filter(|&c| mask & (1 << c) != 0).collect();
        item_welfare_heterogeneous(system, item, &holders, demand, profile, utility)
    };
    for item in 0..demand.items() {
        for b in 0u32..(1 << cols) {
            for s in 0..cols as u32 {
                if b & (1 << s) != 0 {
                    continue;
                }
                let mut a = b;
                // All subsets A ⊆ B, descending-mask enumeration.
                loop {
                    let wa = w(item, a);
                    if wa > f64::NEG_INFINITY {
                        let ma = w(item, a | (1 << s)) - wa;
                        let mb = w(item, b | (1 << s)) - w(item, b);
                        if mb > f64::NEG_INFINITY {
                            worst = worst.max(mb - ma);
                            checked += 1;
                        }
                    }
                    if a == 0 {
                        break;
                    }
                    a = (a - 1) & b;
                }
            }
        }
    }
    let tol = tolerances::MARGINAL_SLACK;
    InvariantResult::check(
        "submodularity",
        worst <= tol,
        worst,
        format!("worst marginal-gain violation over {checked} exhaustive chains"),
    )
}

/// Property 1: at the relaxed optimum every interior item sits on the
/// common water level `d_i·φ(x̃_i) = λ` — the residual reported by the
/// solver must be tiny.
fn check_equilibrium(
    pop: PopKind,
    mu: f64,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> InvariantResult {
    // The relaxed program is defined on the homogeneous model; mixed
    // populations are exercised through their pure-P2P projection over
    // all nodes.
    let system = pop
        .reduction(mu)
        .unwrap_or_else(|| SystemModel::pure_p2p(pop.nodes(), RHO, mu));
    match try_relaxed_optimum(&system, demand, utility) {
        Ok(relaxed) => {
            let residual = relaxed.equilibrium_residual(&system, demand, utility);
            InvariantResult::check(
                "equilibrium",
                residual < tolerances::EQUILIBRIUM_RESIDUAL,
                residual,
                "max relative deviation of d_i·φ(x̃_i) from the water level over interior items",
            )
        }
        Err(e) => InvariantResult::fail("equilibrium", f64::NAN, format!("solver failed: {e}")),
    }
}

/// `U` is monotone in replicas: placing one more copy into a free slot
/// never decreases welfare. Checked over random base allocations and
/// every feasible single placement on top of each.
fn check_monotonicity(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
    rng: &mut Xoshiro256,
) -> InvariantResult {
    let cols = system.servers.len();
    let mut worst = f64::NEG_INFINITY;
    let mut checked = 0u32;
    for _ in 0..3 {
        let mut alloc = AllocationMatrix::new(ITEMS, cols, RHO);
        for server in 0..cols {
            let fill = rng.index(RHO + 1);
            for _ in 0..fill {
                let item = rng.index(ITEMS);
                if !alloc.holds(item, server) {
                    alloc.place(item, server);
                }
            }
        }
        let before = social_welfare_heterogeneous(system, &alloc, demand, profile, utility);
        for item in 0..ITEMS {
            for server in 0..cols {
                if alloc.holds(item, server) || alloc.free_slots(server) == 0 {
                    continue;
                }
                alloc.place(item, server);
                let after = social_welfare_heterogeneous(system, &alloc, demand, profile, utility);
                alloc.evict(item, server);
                checked += 1;
                if before == f64::NEG_INFINITY {
                    continue; // −∞ → anything is an improvement
                }
                worst = worst.max(before - after);
            }
        }
    }
    let tol = tolerances::MARGINAL_SLACK;
    InvariantResult::check(
        "monotonicity",
        worst <= tol,
        worst,
        format!("worst welfare drop from adding one replica, {checked} placements"),
    )
}

/// Theorem 1 / Theorem 2 against the exhaustive oracle: the homogeneous
/// greedy must match brute force exactly (concavity makes it optimal),
/// the heterogeneous CELF greedy must achieve `(1−1/e)·OPT` for
/// non-negative utilities and never exceed OPT.
fn check_greedy_vs_brute(
    system: &HeterogeneousSystem,
    pop: PopKind,
    het_contacts: bool,
    mu: f64,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> InvariantResult {
    let mut details = Vec::new();
    let mut worst_gap = 0.0f64;
    let mut ok = true;

    // Heterogeneous: greedy vs exhaustive OPT on the actual rate matrix.
    let (_, w_opt) = brute_force_heterogeneous(system, demand, profile, utility);
    let greedy = greedy_heterogeneous(system, demand, profile, utility);
    let w_greedy = social_welfare_heterogeneous(system, &greedy, demand, profile, utility);
    let scale = w_opt.abs().max(1.0);
    if w_greedy > w_opt + tolerances::WELFARE_REL * scale {
        ok = false;
        details.push(format!("greedy {w_greedy} above true optimum {w_opt}"));
    }
    if non_negative(utility) {
        let bound = (1.0 - 1.0 / std::f64::consts::E) * w_opt;
        worst_gap = (bound - w_greedy) / scale;
        if w_greedy < bound - tolerances::WELFARE_REL * scale {
            ok = false;
            details.push(format!(
                "Theorem 1: greedy {w_greedy} < (1−1/e)·OPT = {bound}"
            ));
        } else {
            details.push(format!(
                "het greedy at {:.4} of OPT (bound 1−1/e ≈ 0.632)",
                if w_opt.abs() > 0.0 {
                    w_greedy / w_opt
                } else {
                    1.0
                }
            ));
        }
    } else {
        // Cost-type: the bound is meaningless on negative welfare; require
        // dominance and that greedy reaches a finite value whenever OPT is
        // finite.
        if w_opt > f64::NEG_INFINITY && w_greedy == f64::NEG_INFINITY {
            ok = false;
            details.push("cost-type greedy stuck at −∞ while OPT is finite".to_string());
        } else {
            worst_gap = (w_opt - w_greedy) / scale;
            details.push(format!(
                "cost-type dominance: OPT−greedy = {:.3e}",
                w_opt - w_greedy
            ));
        }
    }

    // Homogeneous reduction (Theorem 2 exactness), where one exists.
    if !het_contacts {
        if let Some(hom) = pop.reduction(mu) {
            let (opt_counts, w_b) = brute_force_homogeneous(&hom, demand, utility);
            let g = greedy_homogeneous(&hom, demand, utility);
            let w_g = social_welfare_homogeneous(&hom, demand, utility, &g.as_f64());
            let gap = (w_b - w_g).abs() / w_b.abs().max(1.0);
            worst_gap = worst_gap.max(gap);
            if gap > tolerances::WELFARE_REL {
                ok = false;
                details.push(format!(
                    "Theorem 2: greedy {w_g} ≠ brute {w_b} (opt counts {:?})",
                    opt_counts.counts()
                ));
            } else {
                details.push("hom greedy exactly matches brute force".to_string());
            }
        }
    }

    InvariantResult::check("greedy_vs_brute", ok, worst_gap, details.join("; "))
}

fn sim_parts(
    pop: PopKind,
    utility: &Arc<dyn DelayUtility>,
    demand: &DemandRates,
    faults: bool,
    seed: u64,
    duration: f64,
) -> (SimConfig, ContactSource, PolicyKind) {
    let mut builder = SimConfig::builder(ITEMS, RHO)
        .demand(demand.clone())
        .utility(Arc::clone(utility))
        .bin(50.0)
        .warmup_fraction(0.2);
    if pop == PopKind::Dedicated {
        builder = builder.dedicated_servers(SERVERS);
    }
    if faults {
        builder = builder.faults(FaultConfig {
            seed: seed ^ 0xFA17,
            churn: None,
            drop: Some(ContactDrop {
                p: 0.3,
                mean_burst: 2.0,
            }),
            cache: None,
            truncate_fraction: None,
            msg: None,
            panic_on_seeds: Vec::new(),
        });
    }
    let config = builder.build();
    let source = ContactSource::homogeneous(pop.nodes(), BASE_MU, duration);
    // The allocation must be declared over the engine's server
    // population: the dedicated trio, or every node in pure P2P.
    let sim_servers = if pop == PopKind::Dedicated {
        SERVERS
    } else {
        pop.nodes()
    };
    let policy = PolicyKind::Static {
        label: "ORACLE",
        counts: ReplicaCounts::new(vec![2, 2, 1, 1], sim_servers),
    };
    (config, source, policy)
}

/// Bit-exact determinism of the simulator: the same seed reproduces the
/// same trajectory; with fault injection on, the fault machinery must
/// actually have fired.
fn check_determinism(
    pop: PopKind,
    utility: &Arc<dyn DelayUtility>,
    demand: &DemandRates,
    faults: bool,
    seed: u64,
) -> InvariantResult {
    // The engine models dedicated or pure-P2P populations; a mixed cell
    // exercises its pure-P2P form (the solver invariants carry the
    // overlap).
    let (config, source, policy) = sim_parts(pop, utility, demand, faults, seed, 400.0);
    let a = run_trial(&config, &source, policy.clone(), seed);
    let b = run_trial(&config, &source, policy, seed);
    let ra = a.metrics.average_observed_rate(config.warmup_fraction);
    let rb = b.metrics.average_observed_rate(config.warmup_fraction);
    if ra.to_bits() != rb.to_bits() || a.final_replicas != b.final_replicas {
        return InvariantResult::fail(
            "determinism",
            (ra - rb).abs(),
            format!("same seed, different trajectory: {ra} vs {rb}"),
        );
    }
    if faults {
        let injected = a.metrics.contacts_dropped + a.metrics.node_outages + a.metrics.cache_faults;
        return InvariantResult::check(
            "determinism",
            injected > 0,
            injected as f64,
            format!("bit-identical replay; {injected} fault events injected"),
        );
    }
    InvariantResult::pass(
        "determinism",
        0.0,
        format!("bit-identical replay at rate {ra:.6}"),
    )
}

/// §3.4 slot refinement: the discrete-time welfare formula approaches the
/// continuous one as δ shrinks.
fn check_slot_refinement(
    pop: PopKind,
    mu: f64,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> InvariantResult {
    let Some(system) = pop.reduction(mu) else {
        return InvariantResult::skipped(
            "slot_refinement",
            "mixed populations have no homogeneous closed form",
        );
    };
    let counts = [2.0, 2.0, 1.0, 1.0];
    let deltas = [4.0, 2.0, 1.0, 0.5, 0.25];
    let errs = slot_refinement_errors(&system, demand, utility, &counts, &deltas);
    let first = errs[0];
    let last = errs[errs.len() - 1];
    // §3.4 claims convergence, not a rate; certify it as (a) the finest
    // slot attaining the smallest error of the sweep and (b) the error
    // shrinking at least like δ^0.4 across the 16× refinement. Smooth
    // families converge like O(δ); Power(α=0.5)'s √t cusp only reaches
    // O(√δ) and step utilities oscillate at coarse δ from grid alignment
    // with τ — both still satisfy this certificate.
    let finest_is_best = errs.iter().all(|&e| last <= e + tolerances::SEQUENCE_SLACK);
    let rate_bound = first * (deltas[deltas.len() - 1] / deltas[0]).powf(0.4);
    InvariantResult::check(
        "slot_refinement",
        finest_is_best && last <= rate_bound.max(tolerances::MARGINAL_SLACK),
        last,
        format!("|U_δ − U| over δ = {deltas:?}: {errs:?}"),
    )
}

/// Solver variants {scratch, incremental, stale-ε} on the homogeneous
/// reduction: a [`DeltaSolver`] replays a short seeded demand-delta
/// sequence and must stay bit-identical to from-scratch greedy (and
/// therefore brute-force optimal, Theorem 2) at every step, while its
/// bounded-staleness twin may only reuse a stale allocation under a
/// *sound* certificate (true gap dominated by the certified gap).
fn check_solver_variants(
    pop: PopKind,
    mu: f64,
    demand: &DemandRates,
    utility: &Arc<dyn DelayUtility>,
    seed: u64,
) -> InvariantResult {
    let Some(system) = pop.reduction(mu) else {
        return InvariantResult::skipped(
            "solver_variants",
            "incremental solver is defined on the homogeneous model",
        );
    };
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xDE17A);
    let mut exact = DeltaSolver::new(system, demand, Arc::clone(utility));
    let mut stale = DeltaSolver::new(system, demand, Arc::clone(utility)).with_staleness(0.05);
    let mut worst = 0.0f64;
    let mut certified = 0u32;
    for step in 0..4 {
        let deltas = [Delta::Demand {
            item: rng.index(ITEMS),
            rate: rng.range(0.05, 2.0),
        }];
        if let Err(e) = exact.apply(&deltas) {
            return InvariantResult::fail(
                "solver_variants",
                f64::NAN,
                format!("exact delta solve failed at step {step}: {e}"),
            );
        }
        let current = DemandRates::new(exact.rates().to_vec());
        let scratch = greedy_homogeneous(&system, &current, utility.as_ref());
        if *exact.counts() != scratch {
            return InvariantResult::fail(
                "solver_variants",
                f64::NAN,
                format!(
                    "step {step}: incremental {:?} ≠ scratch greedy {:?}",
                    exact.counts().counts(),
                    scratch.counts()
                ),
            );
        }
        let (_, w_b) = brute_force_homogeneous(&system, &current, utility.as_ref());
        let w_inc = social_welfare_homogeneous(
            &system,
            &current,
            utility.as_ref(),
            &exact.counts().as_f64(),
        );
        let scale = w_b.abs().max(1.0);
        let gap = if w_inc == f64::NEG_INFINITY && w_b == f64::NEG_INFINITY {
            0.0
        } else {
            (w_inc - w_b).abs() / scale
        };
        worst = worst.max(gap);
        if gap > tolerances::WELFARE_REL {
            return InvariantResult::fail(
                "solver_variants",
                gap,
                format!("step {step}: incremental welfare {w_inc} ≠ brute optimum {w_b}"),
            );
        }
        match stale.apply(&deltas) {
            Ok(DeltaOutcome::CertifiedStale(cert)) => {
                certified += 1;
                let w_fresh = social_welfare_homogeneous(
                    &system,
                    &current,
                    utility.as_ref(),
                    &scratch.as_f64(),
                );
                if w_fresh - cert.stale_welfare > cert.gap + tolerances::WELFARE_REL * cert.scale {
                    return InvariantResult::fail(
                        "solver_variants",
                        w_fresh - cert.stale_welfare,
                        format!(
                            "step {step}: unsound certificate — true gap {} over certified {}",
                            w_fresh - cert.stale_welfare,
                            cert.gap
                        ),
                    );
                }
            }
            Ok(_) => {}
            Err(e) => {
                return InvariantResult::fail(
                    "solver_variants",
                    f64::NAN,
                    format!("stale-ε delta solve failed at step {step}: {e}"),
                );
            }
        }
    }
    InvariantResult::pass(
        "solver_variants",
        worst,
        format!(
            "4 delta steps bit-identical to scratch and brute-optimal; \
             {certified} staleness certificates accepted, all sound"
        ),
    )
}

/// Full-mode engine differential: analytic welfare vs the Monte-Carlo
/// mean under a CLT interval plus the horizon-censoring allowance.
fn check_analytic_mc(
    pop: PopKind,
    het_contacts: bool,
    utility: &Arc<dyn DelayUtility>,
    demand: &DemandRates,
    faults: bool,
    seed: u64,
) -> InvariantResult {
    if faults {
        return InvariantResult::skipped(
            "analytic_mc",
            "fault injection biases the contact process",
        );
    }
    if het_contacts {
        return InvariantResult::skipped(
            "analytic_mc",
            "analytic side assumes homogeneous contacts",
        );
    }
    if pop == PopKind::Mixed {
        return InvariantResult::skipped(
            "analytic_mc",
            "no homogeneous closed form for mixed populations",
        );
    }
    if !non_negative(utility.as_ref()) {
        return InvariantResult::skipped(
            "analytic_mc",
            "censoring allowance requires a bounded utility",
        );
    }
    let (config, source, policy) = sim_parts(pop, utility, demand, false, seed, 3000.0);
    let PolicyKind::Static { counts, .. } = policy else {
        unreachable!("sim_parts pins a static allocation");
    };
    let cmp = analytic_vs_simulated(&config, &source, &counts, 6, seed ^ 0xAC, 4.0);
    InvariantResult::check(
        "analytic_mc",
        cmp.agrees(),
        cmp.difference().abs(),
        cmp.describe(),
    )
}

/// Full-mode cross-engine differential: continuous vs discrete engines on
/// matched pure-P2P regimes.
fn check_engine_duality(
    pop: PopKind,
    het_contacts: bool,
    utility: &Arc<dyn DelayUtility>,
    demand: &DemandRates,
    faults: bool,
    seed: u64,
) -> InvariantResult {
    if faults || het_contacts || pop != PopKind::PureP2p {
        return InvariantResult::skipped(
            "engine_duality",
            "discrete engine models the clean homogeneous pure-P2P setting",
        );
    }
    if !non_negative(utility.as_ref()) {
        return InvariantResult::skipped("engine_duality", "requires a bounded utility");
    }
    let (config, _, policy) = sim_parts(pop, utility, demand, false, seed, 2000.0);
    let PolicyKind::Static { counts, .. } = policy else {
        unreachable!("sim_parts pins a static allocation");
    };
    let cmp = engines_match(
        &config,
        pop.nodes(),
        BASE_MU,
        2000.0,
        0.5,
        &counts,
        5,
        seed ^ 0xD1,
        4.0,
    );
    InvariantResult::check(
        "engine_duality",
        cmp.agrees(),
        cmp.difference().abs(),
        cmp.describe(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_skips() {
        // 5 utilities × 3 populations × 2 contact regimes × 2 fault modes.
        let recs = run_matrix(&MatrixOptions::quick(7), &mut Recorder::disabled());
        assert_eq!(recs.len(), 60);
        let runnable = recs.iter().filter(|r| r.ran()).count();
        // NegLog outside dedicated populations: 2 pops × 2 × 2 = 8 skipped.
        assert_eq!(runnable, 52);
        assert!(runnable >= 40, "conformance floor");
        for r in &recs {
            assert_eq!(r.results.len(), INVARIANTS.len());
            assert_eq!(r.failed(), 0, "scenario {} failed: {:?}", r.name, r.results);
        }
    }

    #[test]
    fn matrix_is_deterministic_given_seed() {
        // A prefix covering both contact regimes, fault modes, and two
        // populations is enough to pin determinism without paying for
        // the full matrix twice in debug builds.
        let opts = MatrixOptions::quick(11).with_limit(8);
        let a = run_matrix(&opts, &mut Recorder::disabled());
        let b = run_matrix(&opts, &mut Recorder::disabled());
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.name, y.name);
            for (rx, ry) in x.results.iter().zip(&y.results) {
                assert_eq!(rx.status, ry.status, "{}/{}", x.name, rx.name);
                assert!(
                    rx.value.to_bits() == ry.value.to_bits()
                        || (rx.value.is_nan() && ry.value.is_nan()),
                    "{}/{}: {} vs {}",
                    x.name,
                    rx.name,
                    rx.value,
                    ry.value
                );
            }
        }
    }

    #[test]
    fn record_json_is_self_describing() {
        let recs = run_matrix(
            &MatrixOptions::quick(3).with_limit(1),
            &mut Recorder::disabled(),
        );
        let j = recs[0].to_json();
        for key in [
            "index",
            "name",
            "seed",
            "utility",
            "population",
            "contacts",
            "faults",
            "results",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let line = j.to_string();
        let parsed = Json::parse(&line).expect("record serializes to valid JSON");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some(recs[0].name.as_str())
        );
    }
}
