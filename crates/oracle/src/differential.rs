//! Differential checks: analytic formulas vs Monte-Carlo estimates, and
//! the continuous engine vs its discrete-time counterpart.
//!
//! Every comparison here is gated by a CLT-derived confidence interval:
//! a disagreement is flagged only when it is *statistically significant*
//! at the chosen `z`, never on a fixed epsilon. Where the simulator has a
//! known deterministic bias (horizon censoring settles still-open
//! requests with their optimistic gain-so-far), the comparison carries an
//! explicit [`Comparison::allowance`] bounding that bias, so the
//! statistical test stays honest instead of being widened ad hoc.

use impatience_core::allocation::ReplicaCounts;
use impatience_core::demand::DemandRates;
use impatience_core::rng::Xoshiro256;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::{
    expected_gain_continuous, expected_gain_pure_p2p, social_welfare_homogeneous,
    social_welfare_homogeneous_discrete,
};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::run_trial;
use impatience_sim::engine_discrete::{run_trial_discrete, DiscreteSource};
use impatience_sim::policy::PolicyKind;

/// Outcome of one differential comparison: a reference value (analytic
/// formula or engine A), a stochastic estimate (Monte-Carlo mean or
/// engine B), the CLT half-width of the difference, and a deterministic
/// bias allowance.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The reference value (analytic formula, or the first engine's mean).
    pub reference: f64,
    /// The stochastic estimate being checked against the reference.
    pub estimate: f64,
    /// CLT half-width of the difference at the chosen `z`.
    pub half_width: f64,
    /// Deterministic bias bound (e.g. horizon censoring), added on top of
    /// the statistical interval.
    pub allowance: f64,
    /// Number of independent samples behind `estimate`.
    pub samples: usize,
}

impl Comparison {
    /// Signed difference `estimate − reference`.
    pub fn difference(&self) -> f64 {
        self.estimate - self.reference
    }

    /// Whether the estimate is statistically compatible with the
    /// reference: `|estimate − reference| ≤ half_width + allowance`.
    pub fn agrees(&self) -> bool {
        self.difference().abs() <= self.half_width + self.allowance
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        format!(
            "ref {:.6} vs est {:.6} (Δ {:+.2e}, CI ±{:.2e}, bias ≤ {:.2e}, n={})",
            self.reference,
            self.estimate,
            self.difference(),
            self.half_width,
            self.allowance,
            self.samples
        )
    }
}

/// Sample mean and CLT confidence half-width `z·s/√n` of a set of i.i.d.
/// samples (`s` the sample standard deviation).
///
/// # Panics
/// Panics on an empty sample or a non-positive `z`.
pub fn clt_interval(samples: &[f64], z: f64) -> (f64, f64) {
    assert!(!samples.is_empty(), "CLT interval of an empty sample");
    assert!(z > 0.0, "z must be positive");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() == 1 {
        return (mean, f64::INFINITY);
    }
    let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

/// Monte-Carlo estimate of the per-request expected gain at `replicas`
/// copies, sampled straight from the paper's delay law, compared with
/// the quadrature-backed analytic value.
///
/// With `nodes = Some(n)` the pure-P2P law of Eq. 5 is sampled: with
/// probability `x/n` the requester holds the item (gain `h(0⁺)`),
/// otherwise it waits `Exp(x·μ)`. With `nodes = None` the dedicated law
/// of Eq. 3 is sampled: the wait is always `Exp(x·μ)`. The reference is
/// [`expected_gain_pure_p2p`] / [`expected_gain_continuous`], which
/// integrate the *same* law by adaptive quadrature — so this check ties
/// the numeric toolbox to an independent sampling path.
///
/// # Panics
/// Panics if `samples == 0`, on cost-type utilities with `replicas = 0`
/// (the analytic value is `−∞`, nothing to estimate), or on a
/// `requires_dedicated` utility sampled in pure-P2P mode.
pub fn mc_gain_estimate(
    utility: &dyn DelayUtility,
    replicas: f64,
    nodes: Option<usize>,
    mu: f64,
    samples: usize,
    seed: u64,
    z: f64,
) -> Comparison {
    assert!(samples > 0, "need at least one sample");
    let analytic = match nodes {
        Some(n) => expected_gain_pure_p2p(utility, replicas, n, mu),
        None => expected_gain_continuous(utility, replicas, mu),
    };
    assert!(
        analytic.is_finite(),
        "analytic gain is not finite ({analytic}); choose replicas > 0 for cost-type utilities"
    );
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let rate = replicas * mu;
    let mut draws = Vec::with_capacity(samples);
    for _ in 0..samples {
        let gain = match nodes {
            Some(n) if rng.f64() < replicas / n as f64 => utility.h_zero(),
            _ => utility.h(rng.exp(rate)),
        };
        draws.push(gain);
    }
    let (mean, half_width) = clt_interval(&draws, z);
    Comparison {
        reference: analytic,
        estimate: mean,
        half_width,
        allowance: 0.0,
        samples,
    }
}

/// Engine-level differential: the analytic welfare of a pinned allocation
/// vs the mean observed gain rate of the event-driven simulator over
/// independent trials.
///
/// Both sides measure gain per unit time — `U(x)` sums `d_i·E[h]` with
/// `d_i` in requests per minute, and [`impatience_sim::metrics::Metrics::
/// average_observed_rate`] divides accumulated gain by window length —
/// so they are directly comparable. The simulator settles requests still
/// open at the horizon with their optimistic gain-so-far `h(age) ≤
/// h(0⁺)`, an upward bias the analytic value does not share; the
/// comparison therefore carries an allowance of
/// `mean(unfulfilled)·h(0⁺) / window`, a deterministic bound on that
/// censoring, on top of the CLT interval.
///
/// Restricted to *bounded* utilities (`0 ≤ h ≤ h(0⁺) < ∞`): for
/// cost-type families the censored tail is unbounded and no finite
/// allowance exists.
///
/// # Panics
/// Panics if `trials == 0` or the utility is unbounded.
pub fn analytic_vs_simulated(
    config: &SimConfig,
    source: &ContactSource,
    counts: &ReplicaCounts,
    trials: usize,
    base_seed: u64,
    z: f64,
) -> Comparison {
    assert!(trials > 0, "need at least one trial");
    let utility = config.utility.as_ref();
    assert!(
        utility.h_zero().is_finite() && utility.h_infinity() == 0.0,
        "analytic-vs-simulated requires a bounded utility (h(0+) finite, h(∞) = 0)"
    );
    let nodes = source.nodes();
    let mu = source.mean_rate();
    let system = match config.dedicated_servers {
        Some(servers) => SystemModel::dedicated(nodes - servers, servers, config.rho, mu),
        None => SystemModel::pure_p2p(nodes, config.rho, mu),
    };
    let analytic = social_welfare_homogeneous(&system, &config.demand, utility, &counts.as_f64());

    let window = (1.0 - config.warmup_fraction) * source.duration();
    let mut rates = Vec::with_capacity(trials);
    let mut censor = 0.0;
    for k in 0..trials {
        let outcome = run_trial(
            config,
            source,
            PolicyKind::Static {
                label: "ORACLE",
                counts: counts.clone(),
            },
            base_seed.wrapping_add(k as u64),
        );
        rates.push(
            outcome
                .metrics
                .average_observed_rate(config.warmup_fraction),
        );
        censor += outcome.metrics.unfulfilled as f64 * utility.h_zero() / window;
    }
    let (mean, half_width) = clt_interval(&rates, z);
    Comparison {
        reference: analytic,
        estimate: mean,
        half_width,
        allowance: censor / trials as f64,
        samples: trials,
    }
}

/// Cross-engine differential: the event-driven continuous engine vs the
/// slotted discrete engine on the same pure-P2P homogeneous system and
/// pinned allocation.
///
/// As `δ → 0` the slotted contact model converges to the Poisson one
/// (§3.4), so for small `μ·δ` the two engines' mean observed rates must
/// agree. The half-width combines both engines' CLT intervals
/// (`z·√(s_c²/n + s_d²/n)`); the discrete engine's within-slot gain
/// convention (`h(δ)` for same-slot fulfillment) contributes a bias no
/// larger than `(h(0⁺) − h(δ))·d_total/… ` which is folded into the
/// allowance as `analytic rate · μ·δ` — first-order in the slot length.
///
/// # Panics
/// Panics if `trials == 0`, on non-pure-P2P configs (the discrete engine
/// rejects them), or on unbounded utilities.
#[allow(clippy::too_many_arguments)]
pub fn engines_match(
    config: &SimConfig,
    nodes: usize,
    mu: f64,
    duration: f64,
    delta: f64,
    counts: &ReplicaCounts,
    trials: usize,
    base_seed: u64,
    z: f64,
) -> Comparison {
    assert!(trials > 0, "need at least one trial");
    let utility = config.utility.as_ref();
    assert!(
        utility.h_zero().is_finite() && utility.h_infinity() == 0.0,
        "engines_match requires a bounded utility"
    );
    let cont_source = ContactSource::homogeneous(nodes, mu, duration);
    let disc_source = DiscreteSource {
        nodes,
        mu,
        delta,
        slots: (duration / delta).round() as u64,
    };
    let policy = || PolicyKind::Static {
        label: "ORACLE",
        counts: counts.clone(),
    };
    let mut cont = Vec::with_capacity(trials);
    let mut disc = Vec::with_capacity(trials);
    for k in 0..trials {
        let seed = base_seed.wrapping_add(k as u64);
        cont.push(
            run_trial(config, &cont_source, policy(), seed)
                .metrics
                .average_observed_rate(config.warmup_fraction),
        );
        disc.push(
            run_trial_discrete(config, &disc_source, policy(), seed ^ 0x5EED_D15C)
                .metrics
                .average_observed_rate(config.warmup_fraction),
        );
    }
    let (mean_c, hw_c) = clt_interval(&cont, z);
    let (mean_d, hw_d) = clt_interval(&disc, z);
    // Discretization bias: the slotted law shifts every wait by O(δ) and
    // rounds gains to h(k·δ); bound its effect on the rate at first order
    // by the rate itself scaled by μ·δ, plus the h(0⁺)−h(δ) rounding of
    // immediate hits.
    let discretization = mean_c.abs() * (mu * delta)
        + (utility.h_zero() - utility.h(delta)).abs() * mean_c.abs().max(1.0) * delta;
    Comparison {
        reference: mean_c,
        estimate: mean_d,
        half_width: (hw_c.powi(2) + hw_d.powi(2)).sqrt(),
        allowance: discretization,
        samples: trials,
    }
}

/// Absolute error of the discrete-time welfare formula against the
/// continuous one at each slot length in `deltas`.
///
/// §3.4 claims the slotted model converges to the continuous one as
/// `δ → 0`; callers assert the returned sequence is (weakly) decreasing
/// and its last element small when `deltas` is sorted descending.
///
/// # Panics
/// Panics if `deltas` is empty or the continuous welfare is not finite.
pub fn slot_refinement_errors(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    counts: &[f64],
    deltas: &[f64],
) -> Vec<f64> {
    assert!(!deltas.is_empty(), "need at least one slot length");
    let continuous = social_welfare_homogeneous(system, demand, utility, counts);
    assert!(
        continuous.is_finite(),
        "continuous welfare is {continuous}; refine only finite instances"
    );
    deltas
        .iter()
        .map(|&delta| {
            let w = social_welfare_homogeneous_discrete(system, demand, utility, counts, delta);
            (w - continuous).abs()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::{Exponential, Power, Step};

    #[test]
    fn clt_interval_basics() {
        let (mean, hw) = clt_interval(&[1.0, 2.0, 3.0], 2.0);
        assert!((mean - 2.0).abs() < 1e-12);
        // s = 1, n = 3 → hw = 2/√3.
        assert!((hw - 2.0 / 3.0f64.sqrt()).abs() < 1e-12);
        let (_, single) = clt_interval(&[5.0], 2.0);
        assert!(single.is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn clt_interval_rejects_empty() {
        let _ = clt_interval(&[], 2.0);
    }

    #[test]
    fn mc_matches_quadrature_dedicated() {
        for utility in [
            Box::new(Step::new(5.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.2)),
            Box::new(Power::new(0.5)),
        ] {
            let cmp = mc_gain_estimate(utility.as_ref(), 3.0, None, 0.05, 40_000, 7, 4.0);
            assert!(cmp.agrees(), "{}", cmp.describe());
        }
    }

    #[test]
    fn mc_matches_quadrature_pure_p2p() {
        let cmp = mc_gain_estimate(&Step::new(5.0), 4.0, Some(20), 0.05, 40_000, 11, 4.0);
        assert!(cmp.agrees(), "{}", cmp.describe());
    }

    #[test]
    fn mc_flags_a_wrong_reference() {
        let mut cmp = mc_gain_estimate(&Step::new(5.0), 3.0, None, 0.05, 40_000, 3, 4.0);
        cmp.reference += 0.2; // a genuinely wrong analytic value
        assert!(!cmp.agrees(), "{}", cmp.describe());
    }

    #[test]
    fn slot_errors_shrink_monotonically() {
        let system = SystemModel::pure_p2p(20, 2, 0.05);
        let demand = Popularity::pareto(4, 1.0).demand_rates(1.0);
        let counts = [5.0, 3.0, 2.0, 1.0];
        let errs = slot_refinement_errors(
            &system,
            &demand,
            &Exponential::new(0.1),
            &counts,
            &[4.0, 2.0, 1.0, 0.5, 0.25],
        );
        for pair in errs.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-12,
                "errors not decreasing: {errs:?}"
            );
        }
        assert!(
            errs[errs.len() - 1] < 1e-2,
            "final error too large: {errs:?}"
        );
    }
}
