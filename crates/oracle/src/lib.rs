//! # impatience-oracle
//!
//! Differential verification of the paper's *relational* guarantees.
//!
//! The theory layer makes claims that relate independent computations to
//! one another rather than to fixed constants: greedy placement is within
//! `(1 − 1/e)` of the true optimum (Theorem 1) and exact under
//! homogeneous contacts (Theorem 2); the analytic welfare of Eqs. (2)–(5)
//! is the mean the Monte-Carlo simulator converges to; the discrete-time
//! model approaches the continuous one as the slot shrinks (§3.4); and at
//! the relaxed optimum every interior item sits on Property 1's common
//! water level `d_i·φ(x̃_i) = λ`. This crate checks those relations
//! systematically:
//!
//! * [`brute`] — exhaustive enumeration of tiny instances, yielding the
//!   *true* OPT against which both greedy solvers are judged;
//! * [`differential`] — analytic-vs-Monte-Carlo comparisons gated by
//!   CLT-derived confidence intervals (disagreement is flagged only when
//!   statistically significant, never on a fixed epsilon), plus the
//!   discrete→continuous slot-refinement convergence check;
//! * [`delta`] — the `delta_vs_scratch` differential: incremental
//!   re-optimization ([`impatience_core::solver::incremental`]) checked
//!   for bit-identity against from-scratch greedy solves, welfare
//!   optimality on brute-forced tiny instances, and soundness of every
//!   bounded-staleness certificate;
//! * [`netdiff`] — the distributed message-passing QCR runtime
//!   (`impatience-net`) against the in-process engine on paired seeds,
//!   with an explicit allowance for its documented protocol biases;
//! * [`scenario`] — the seeded conformance matrix over
//!   {utility families} × {populations} × {contact regimes} × {faults},
//!   each cell a self-describing record with per-invariant pass/fail;
//! * [`report`] — JSONL + summary-table conformance reports written
//!   atomically.
//!
//! The `impatience verify [--quick|--full]` CLI subcommand is a thin
//! wrapper over [`scenario::run_matrix`] + [`report`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod brute;
pub mod delta;
pub mod differential;
pub mod netdiff;
pub mod report;
pub mod scenario;

pub use brute::{brute_force_heterogeneous, brute_force_homogeneous};
pub use delta::{delta_vs_scratch, DeltaSweepReport};
pub use differential::{
    clt_interval, engines_match, mc_gain_estimate, slot_refinement_errors, Comparison,
};
pub use netdiff::net_vs_engine;
pub use report::{summary_table, write_report};
pub use scenario::{
    run_matrix, CheckStatus, InvariantResult, MatrixOptions, ScenarioRecord, INVARIANTS,
};
