//! Conformance reports: a JSONL record stream (one scenario per line,
//! written atomically) and a fixed-width summary table for terminals and
//! docs.

use std::io::{self, Write as _};
use std::path::Path;

use impatience_obs::AtomicFile;

use crate::scenario::{CheckStatus, ScenarioRecord, INVARIANTS};

/// Write the conformance report: one [`ScenarioRecord`] JSON object per
/// line. The file appears atomically (write-temp, sync, rename) — readers
/// never observe a partial matrix.
pub fn write_report(path: &Path, records: &[ScenarioRecord]) -> io::Result<()> {
    let mut file = AtomicFile::create(path)?;
    let mut line = String::new();
    for record in records {
        line.clear();
        record.to_json().write(&mut line);
        line.push('\n');
        file.write_all(line.as_bytes())?;
    }
    file.commit()
}

/// Render the matrix as a fixed-width pass table: one row per scenario,
/// one column per invariant (`ok` / `FAIL` / `-` for skipped), plus a
/// totals footer.
pub fn summary_table(records: &[ScenarioRecord]) -> String {
    let name_width = records
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(8)
        .max("scenario".len());
    let mut out = String::new();
    out.push_str(&format!("{:<name_width$}", "scenario"));
    for inv in INVARIANTS {
        out.push_str(&format!("  {inv}"));
    }
    out.push('\n');
    for record in records {
        out.push_str(&format!("{:<name_width$}", record.name));
        for (inv, result) in INVARIANTS.iter().zip(&record.results) {
            let mark = match result.status {
                CheckStatus::Pass => "ok",
                CheckStatus::Fail => "FAIL",
                CheckStatus::Skipped => "-",
            };
            out.push_str(&format!("  {mark:^width$}", width = inv.len()));
        }
        out.push('\n');
    }
    let (mut passed, mut failed, mut skipped) = (0u32, 0u32, 0u32);
    for record in records {
        passed += record.passed();
        failed += record.failed();
        skipped += record.skipped();
    }
    out.push_str(&format!(
        "{} scenarios ({} runnable): {passed} checks passed, {failed} failed, {skipped} skipped\n",
        records.len(),
        records.iter().filter(|r| r.ran()).count(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::InvariantResult;
    use impatience_json::Json;

    fn sample() -> Vec<ScenarioRecord> {
        let results: Vec<InvariantResult> = INVARIANTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut r = InvariantResult {
                    name,
                    status: CheckStatus::Pass,
                    value: i as f64,
                    detail: "checked".to_string(),
                };
                if i == 2 {
                    r.status = CheckStatus::Skipped;
                }
                r
            })
            .collect();
        vec![ScenarioRecord {
            index: 0,
            name: "step/dedicated/hom/clean".to_string(),
            seed: 0xABCD,
            utility: "step".to_string(),
            population: "dedicated".to_string(),
            contacts: "hom".to_string(),
            faults: false,
            results,
            wall_s: 0.01,
        }]
    }

    #[test]
    fn report_roundtrips_as_jsonl() {
        let dir = std::env::temp_dir().join(format!("oracle-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("conformance.jsonl");
        let records = sample();
        write_report(&path, &records).expect("write report");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len());
        let parsed = Json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("step/dedicated/hom/clean")
        );
        assert_eq!(parsed.get("passed").and_then(Json::as_u64), Some(8));
        assert_eq!(parsed.get("skipped").and_then(Json::as_u64), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_lists_every_invariant_column() {
        let table = summary_table(&sample());
        for inv in INVARIANTS {
            assert!(table.contains(inv), "missing column {inv}");
        }
        assert!(table.contains("1 scenarios (1 runnable)"));
        assert!(!table.contains("FAIL"));
    }
}
