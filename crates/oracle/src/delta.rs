//! The `delta_vs_scratch` differential: incremental re-optimization
//! ([`impatience_core::solver::incremental`]) against from-scratch
//! solves, anchored on the exhaustive brute forcer.
//!
//! Three layers of evidence, mirroring the discipline the engines get:
//!
//! 1. **Exhaustive tiny instances** — every delta step is checked for
//!    bit-identity against a scratch greedy solve *and* for welfare
//!    optimality against [`crate::brute::brute_force_homogeneous`]
//!    (Theorem 2 says they must coincide exactly).
//! 2. **Sampled instances** — too large to enumerate, still cheap to
//!    re-solve: bit-identity against scratch greedy across random delta
//!    batches of mixed size (demand nudges, withdrawals, budget and
//!    contact-rate changes).
//! 3. **Bounded-staleness soundness** — a twin ε-stale solver replays
//!    the same deltas; every accepted certificate is audited against the
//!    *actual* fresh optimum (`W_fresh − W_stale` must not exceed the
//!    certified gap), and the true staleness across all certified reuses
//!    is summarized with a CLT confidence bound that must sit inside ε.
//!
//! Everything is seeded — the sweep is bit-reproducible from one number.

use std::sync::Arc;

use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::numeric::tolerances;
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::incremental::{Delta, DeltaOutcome, DeltaSolver};
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Exponential, NegLog, Power, Step};
use impatience_core::welfare::social_welfare_homogeneous;

use crate::brute::brute_force_homogeneous;
use crate::differential::clt_interval;

/// Outcome of one [`delta_vs_scratch`] sweep.
#[derive(Clone, Debug, Default)]
pub struct DeltaSweepReport {
    /// (instance, utility) cases exercised.
    pub cases: u64,
    /// Delta batches applied across all cases and solver variants.
    pub steps: u64,
    /// Bit-identity comparisons of incremental vs scratch allocations.
    pub exact_checks: u64,
    /// Bit-identity comparisons that failed (must be 0).
    pub exact_mismatches: u64,
    /// Welfare checks against the exhaustive brute-force optimum.
    pub brute_checks: u64,
    /// Brute-force welfare checks that failed (must be 0).
    pub brute_mismatches: u64,
    /// Staleness certificates evaluated by the ε-stale twin solvers.
    pub certificates: u64,
    /// Certificates that accepted the stale allocation.
    pub certified_reuses: u64,
    /// Certificate soundness audits that failed (must be 0): an accepted
    /// certificate whose true gap exceeded the certified gap, or a
    /// certified gap above ε·scale.
    pub certificate_violations: u64,
    /// Mean *true* relative staleness over certified reuses, with its
    /// CLT half-width, and the ε it must stay within (`None` until ≥ 2
    /// certified reuses exist).
    pub certified_gap_clt: Option<(f64, f64, f64)>,
    /// Human-readable description of each violation (empty on success).
    pub violations: Vec<String>,
}

impl DeltaSweepReport {
    /// Whether the whole sweep passed.
    pub fn ok(&self) -> bool {
        self.exact_mismatches == 0
            && self.brute_mismatches == 0
            && self.certificate_violations == 0
            && self.clt_ok()
    }

    /// Whether the CLT summary of true staleness sits within ε (vacuously
    /// true until enough certified reuses accumulate).
    pub fn clt_ok(&self) -> bool {
        match self.certified_gap_clt {
            Some((mean, half_width, eps)) => mean + half_width <= eps,
            None => true,
        }
    }

    /// Multi-line human-readable summary.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "delta_vs_scratch: {} cases, {} delta batches\n  exact     : {} checks, {} mismatches\n  brute     : {} checks, {} mismatches\n  stale-ε   : {} certificates, {} reuses, {} violations\n",
            self.cases,
            self.steps,
            self.exact_checks,
            self.exact_mismatches,
            self.brute_checks,
            self.brute_mismatches,
            self.certificates,
            self.certified_reuses,
            self.certificate_violations,
        );
        match self.certified_gap_clt {
            Some((mean, half_width, eps)) => out.push_str(&format!(
                "  true gap  : mean {mean:.3e} ± {half_width:.3e} (CLT) vs ε = {eps} → {}\n",
                if self.clt_ok() {
                    "within budget"
                } else {
                    "OVER BUDGET"
                }
            )),
            None => out.push_str("  true gap  : too few certified reuses for a CLT bound\n"),
        }
        for v in &self.violations {
            out.push_str(&format!("  violation : {v}\n"));
        }
        out
    }
}

fn sweep_utilities() -> Vec<(&'static str, Arc<dyn DelayUtility>)> {
    vec![
        ("step", Arc::new(Step::new(5.0))),
        ("exp", Arc::new(Exponential::new(0.5))),
        ("power", Arc::new(Power::new(0.5))),
        ("neglog", Arc::new(NegLog::new())),
    ]
}

/// A random delta batch: mostly demand nudges (occasionally a withdrawal
/// to rate 0), sometimes a cache-budget or contact-rate change when
/// `structural` is allowed.
fn random_batch(rng: &mut Xoshiro256, items: usize, size: usize, structural: bool) -> Vec<Delta> {
    let mut batch = Vec::with_capacity(size);
    for _ in 0..size {
        let roll = rng.f64();
        if structural && roll < 0.06 {
            batch.push(Delta::CacheBudget(1 + rng.index(4)));
        } else if structural && roll < 0.12 {
            batch.push(Delta::ContactRate(rng.range(0.02, 0.09)));
        } else if roll < 0.22 {
            batch.push(Delta::Demand {
                item: rng.index(items),
                rate: 0.0,
            });
        } else {
            batch.push(Delta::Demand {
                item: rng.index(items),
                rate: rng.range(0.01, 2.0),
            });
        }
    }
    batch
}

/// Audit one exact-mode step: bit-identity vs scratch greedy, plus (for
/// tiny instances) welfare equality with the exhaustive optimum.
fn audit_exact_step(
    report: &mut DeltaSweepReport,
    label: &str,
    step: usize,
    solver: &DeltaSolver,
    utility: &dyn DelayUtility,
    brute: bool,
) {
    let demand = DemandRates::new(solver.rates().to_vec());
    let scratch = greedy_homogeneous(solver.system(), &demand, utility);
    report.exact_checks += 1;
    if *solver.counts() != scratch {
        report.exact_mismatches += 1;
        report.violations.push(format!(
            "{label} step {step}: incremental {:?} != scratch {:?}",
            solver.counts().counts(),
            scratch.counts()
        ));
    }
    if brute && demand.rates().iter().any(|&d| d > 0.0) {
        let (_, w_best) = brute_force_homogeneous(solver.system(), &demand, utility);
        let w_inc = social_welfare_homogeneous(
            solver.system(),
            &demand,
            utility,
            &solver.counts().as_f64(),
        );
        report.brute_checks += 1;
        let scale = w_best.abs().max(1.0);
        let exact = (w_inc - w_best).abs() <= tolerances::WELFARE_REL * scale
            || (w_inc == f64::NEG_INFINITY && w_best == f64::NEG_INFINITY);
        if !exact {
            report.brute_mismatches += 1;
            report.violations.push(format!(
                "{label} step {step}: incremental welfare {w_inc} != brute optimum {w_best}"
            ));
        }
    }
}

/// Audit one bounded-staleness step: on a certified reuse, recompute the
/// fresh optimum from scratch and require the certificate's gap to
/// dominate the true gap (and respect ε). Returns the true relative gap
/// when a reuse was certified.
fn audit_stale_step(
    report: &mut DeltaSweepReport,
    label: &str,
    step: usize,
    solver: &DeltaSolver,
    utility: &dyn DelayUtility,
    outcome: &DeltaOutcome,
) -> Option<f64> {
    let DeltaOutcome::CertifiedStale(cert) = outcome else {
        return None;
    };
    report.certified_reuses += 1;
    let demand = DemandRates::new(solver.rates().to_vec());
    let fresh = greedy_homogeneous(solver.system(), &demand, utility);
    let w_fresh = social_welfare_homogeneous(solver.system(), &demand, utility, &fresh.as_f64());
    let slack = tolerances::WELFARE_REL * cert.scale;
    if w_fresh - cert.stale_welfare > cert.gap + slack {
        report.certificate_violations += 1;
        report.violations.push(format!(
            "{label} step {step}: certified gap {} below true gap {} (stale {}, fresh {w_fresh})",
            cert.gap,
            w_fresh - cert.stale_welfare,
            cert.stale_welfare
        ));
    }
    if cert.gap > cert.eps * cert.scale {
        report.certificate_violations += 1;
        report.violations.push(format!(
            "{label} step {step}: accepted certificate with gap {} over ε·scale {}",
            cert.gap,
            cert.eps * cert.scale
        ));
    }
    Some(((w_fresh - cert.stale_welfare) / cert.scale).max(0.0))
}

/// Run the `delta_vs_scratch` differential sweep. Deterministic given
/// `seed`; `quick` shrinks the step counts for CI. See the module docs
/// for what is checked.
pub fn delta_vs_scratch(seed: u64, quick: bool) -> DeltaSweepReport {
    let mut report = DeltaSweepReport::default();
    let mut root = Xoshiro256::seed_from_u64(seed);
    let steps_tiny = if quick { 6 } else { 16 };
    let steps_sampled = if quick { 5 } else { 12 };
    let eps = 0.05;
    let mut true_gaps: Vec<f64> = Vec::new();

    // Layer 1: exhaustive tiny instances (brute-force anchored).
    let tiny_items = 4;
    let tiny_systems = [
        ("dedicated", SystemModel::dedicated(6, 3, 2, 0.05)),
        ("pure-p2p", SystemModel::pure_p2p(4, 2, 0.05)),
    ];
    for (ulabel, utility) in sweep_utilities() {
        for (plabel, system) in tiny_systems {
            if utility.requires_dedicated() && system.population.is_pure_p2p() {
                continue;
            }
            let label = format!("tiny/{ulabel}/{plabel}");
            let mut rng = root.split(report.cases);
            let demand = Popularity::pareto(tiny_items, 1.0).demand_rates(1.0);
            let mut solver = DeltaSolver::new(system, &demand, Arc::clone(&utility));
            audit_exact_step(&mut report, &label, 0, &solver, utility.as_ref(), true);
            for step in 1..=steps_tiny {
                let size = 1 + rng.index(3);
                let batch = random_batch(&mut rng, tiny_items, size, true);
                solver
                    .apply(&batch)
                    .expect("tiny instances never fail to solve");
                report.steps += 1;
                audit_exact_step(&mut report, &label, step, &solver, utility.as_ref(), true);
            }
            report.cases += 1;
        }
    }

    // Layers 2 + 3: sampled instances — exact twin and ε-stale twin
    // replay the same delta sequence.
    let sampled = [
        ("sampled/pure-p2p", SystemModel::pure_p2p(50, 5, 0.05), 60),
        (
            "sampled/dedicated",
            SystemModel::dedicated(40, 20, 4, 0.05),
            80,
        ),
    ];
    for (ulabel, utility) in sweep_utilities() {
        for (plabel, system, items) in sampled {
            if utility.requires_dedicated() && system.population.is_pure_p2p() {
                continue;
            }
            let label = format!("{plabel}/{ulabel}");
            let mut rng = root.split(1000 + report.cases);
            let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
            let mut exact = DeltaSolver::new(system, &demand, Arc::clone(&utility));
            let mut stale =
                DeltaSolver::new(system, &demand, Arc::clone(&utility)).with_staleness(eps);
            for step in 1..=steps_sampled {
                // Mixed batch sizes: single-item nudges (the certifiable
                // case), medium bursts, and heavy reshuffles. Structural
                // deltas only on the exact twin's odd steps would fork
                // the sequences, so both twins get demand-only batches.
                let size = [1, 1, 4, 16][rng.index(4)];
                let batch = random_batch(&mut rng, items, size, false);
                exact.apply(&batch).expect("demand deltas cannot fail");
                report.steps += 1;
                audit_exact_step(&mut report, &label, step, &exact, utility.as_ref(), false);
                let outcome = stale.apply(&batch).expect("demand deltas cannot fail");
                if let Some(gap) = audit_stale_step(
                    &mut report,
                    &label,
                    step,
                    &stale,
                    utility.as_ref(),
                    &outcome,
                ) {
                    true_gaps.push(gap);
                }
            }
            report.certificates += stale.stats().certificates;
            report.cases += 1;
        }
    }

    if true_gaps.len() >= 2 {
        let (mean, half_width) = clt_interval(&true_gaps, 4.0);
        report.certified_gap_clt = Some((mean, half_width, eps));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_and_certifies_some_reuse() {
        let report = delta_vs_scratch(2024, true);
        assert!(report.ok(), "{}", report.describe());
        assert!(
            report.exact_checks > 50,
            "sweep too small: {}",
            report.exact_checks
        );
        assert!(report.brute_checks > 20);
        assert!(
            report.certified_reuses > 0,
            "ε = 5% should certify at least one single-item nudge\n{}",
            report.describe()
        );
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let a = delta_vs_scratch(7, true);
        let b = delta_vs_scratch(7, true);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.exact_checks, b.exact_checks);
        assert_eq!(a.certified_reuses, b.certified_reuses);
        match (a.certified_gap_clt, b.certified_gap_clt) {
            (Some((m1, h1, e1)), Some((m2, h2, e2))) => {
                assert_eq!(m1.to_bits(), m2.to_bits());
                assert_eq!(h1.to_bits(), h2.to_bits());
                assert_eq!(e1.to_bits(), e2.to_bits());
            }
            (None, None) => {}
            other => panic!("CLT summaries diverged: {other:?}"),
        }
    }

    #[test]
    fn full_and_quick_share_the_case_inventory() {
        // Quick mode shortens the delta sequences but must not silently
        // drop coverage of a (utility, population) case.
        let quick = delta_vs_scratch(3, true);
        let full = delta_vs_scratch(3, false);
        assert_eq!(quick.cases, full.cases);
        assert!(full.steps > quick.steps);
    }
}
