//! Exhaustive brute-force optima for tiny instances.
//!
//! The greedy solvers come with guarantees *relative to OPT*; checking
//! them needs OPT itself. For instances small enough to enumerate
//! (`|I| ≤ 8`, `ρ|S| ≤ 10` in the conformance matrix) this module walks
//! the entire feasible set and returns the true maximum, giving the
//! property tests an unimpeachable reference.

use std::collections::HashMap;

use impatience_core::allocation::AllocationMatrix;
use impatience_core::demand::{DemandProfile, DemandRates};
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::HeterogeneousSystem;

// The homogeneous brute force lives next to the greedy it validates.
pub use impatience_core::solver::greedy::brute_force_homogeneous;

/// Hard cap on the number of cache configurations the heterogeneous
/// brute force will enumerate.
const MAX_CONFIGURATIONS: f64 = 5_000_000.0;

/// All item subsets of size ≤ `rho` over `items` items, as bitmasks.
fn cache_candidates(items: usize, rho: usize) -> Vec<u32> {
    assert!(items <= 16, "instance too large for brute force");
    (0u32..(1 << items))
        .filter(|m| (m.count_ones() as usize) <= rho)
        .collect()
}

/// True optimal allocation of a heterogeneous instance by exhaustive
/// enumeration of per-server cache contents — exponential, tiny
/// instances only.
///
/// Every server independently picks any subset of at most `ρ` items, so
/// the search space is `(Σ_{k≤ρ} C(|I|,k))^{|S|}` configurations; the
/// function asserts this stays below an internal cap. Returns the best
/// allocation and its welfare (which may be `−∞` only if *every*
/// feasible allocation is, e.g. a cost-type utility with more demanded
/// items than total cache slots).
///
/// # Panics
/// Panics if the instance is too large to enumerate.
pub fn brute_force_heterogeneous(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> (AllocationMatrix, f64) {
    let items = demand.items();
    let servers = system.servers.len();
    let candidates = cache_candidates(items, system.rho);
    assert!(
        (candidates.len() as f64).powi(servers as i32) <= MAX_CONFIGURATIONS,
        "instance too large for brute force: {}^{servers} configurations",
        candidates.len()
    );

    // `choice[s]` indexes `candidates`; odometer over all servers.
    let mut choice = vec![0usize; servers];
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut gains = GainCache::default();
    loop {
        let welfare = welfare_of(
            system,
            demand,
            profile,
            utility,
            &candidates,
            &choice,
            &mut gains,
        );
        if best.as_ref().is_none_or(|(_, bw)| welfare > *bw) {
            best = Some((choice.clone(), welfare));
        }
        let mut pos = 0;
        loop {
            if pos == servers {
                let (choice, welfare) =
                    best.expect("the all-empty configuration is always feasible");
                return (materialize(system, items, &candidates, &choice), welfare);
            }
            if choice[pos] + 1 < candidates.len() {
                choice[pos] += 1;
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

/// Memoized `G(λ)` lookups: the enumeration revisits the same fulfillment
/// rates millions of times, and for `Custom` utilities each `gain` call is
/// an adaptive quadrature. The distinct λ set is tiny (sums of a handful
/// of pairwise rates), so caching by bit pattern collapses the cost.
#[derive(Default)]
struct GainCache(HashMap<u64, f64>);

impl GainCache {
    fn gain(&mut self, utility: &dyn DelayUtility, lambda: f64) -> f64 {
        match self.0.get(&lambda.to_bits()) {
            Some(&g) => g,
            None => {
                let g = utility.gain(lambda);
                self.0.insert(lambda.to_bits(), g);
                g
            }
        }
    }
}

/// Welfare of one enumerated configuration: Lemma 1 summed over items,
/// mirroring `item_welfare_heterogeneous` with the gain lookups memoized
/// (the `brute_force_dominates_greedy_and_respects_bound` test pins this
/// against the core implementation).
fn welfare_of(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
    candidates: &[u32],
    choice: &[usize],
    gains: &mut GainCache,
) -> f64 {
    let mut total = 0.0;
    let mut holders = Vec::with_capacity(choice.len());
    for item in 0..demand.items() {
        let d = demand.rate(item);
        if d == 0.0 {
            continue;
        }
        holders.clear();
        for (server, &c) in choice.iter().enumerate() {
            if candidates[c] & (1 << item) != 0 {
                holders.push(server);
            }
        }
        let mut item_total = 0.0;
        for (j, &client_node) in system.clients.iter().enumerate() {
            let pi = profile.pi(item, j);
            if pi == 0.0 {
                continue;
            }
            let self_cached = holders
                .iter()
                .any(|&col| system.servers[col] == client_node);
            let g = if self_cached {
                utility.h_zero()
            } else {
                gains.gain(utility, system.fulfillment_rate(&holders, client_node))
            };
            if g == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            item_total += pi * g;
        }
        total += d * item_total;
    }
    total
}

fn materialize(
    system: &HeterogeneousSystem,
    items: usize,
    candidates: &[u32],
    choice: &[usize],
) -> AllocationMatrix {
    let mut alloc = AllocationMatrix::new(items, choice.len(), system.rho);
    for (server, &c) in choice.iter().enumerate() {
        for item in 0..items {
            if candidates[c] & (1 << item) != 0 {
                alloc.place(item, server);
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::solver::het_greedy::greedy_heterogeneous;
    use impatience_core::utility::{Exponential, Step};
    use impatience_core::welfare::{social_welfare_heterogeneous, ContactRates};

    #[test]
    fn candidates_count_small_subsets() {
        // 1 + C(4,1) + C(4,2) = 11 subsets of ≤ 2 of 4 items.
        assert_eq!(cache_candidates(4, 2).len(), 11);
        assert_eq!(cache_candidates(3, 3).len(), 8);
    }

    #[test]
    fn brute_force_dominates_greedy_and_respects_bound() {
        let rates = ContactRates::from_fn(5, |a, b| 0.02 * ((a * 3 + b) % 4 + 1) as f64);
        let system = HeterogeneousSystem::pure_p2p(rates, 1);
        let demand = Popularity::pareto(3, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(3, 5);
        for utility in [
            Box::new(Step::new(4.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.3)),
        ] {
            let (opt, w_opt) =
                brute_force_heterogeneous(&system, &demand, &profile, utility.as_ref());
            let w_check =
                social_welfare_heterogeneous(&system, &opt, &demand, &profile, utility.as_ref());
            assert!((w_opt - w_check).abs() < 1e-12, "reported welfare mismatch");

            let greedy = greedy_heterogeneous(&system, &demand, &profile, utility.as_ref());
            let w_greedy =
                social_welfare_heterogeneous(&system, &greedy, &demand, &profile, utility.as_ref());
            assert!(w_greedy <= w_opt + 1e-9, "greedy above the true optimum");
            assert!(
                w_greedy >= (1.0 - 1.0 / std::f64::consts::E) * w_opt - 1e-9,
                "Theorem 1 bound violated: {w_greedy} < (1-1/e)·{w_opt}"
            );
        }
    }

    #[test]
    fn matches_homogeneous_brute_force_on_constant_rates() {
        use impatience_core::types::SystemModel;
        use impatience_core::welfare::social_welfare_homogeneous;
        let nodes = 4;
        let mu = 0.05;
        let rates = ContactRates::homogeneous(nodes, mu);
        let system = HeterogeneousSystem::pure_p2p(rates, 1);
        let demand = Popularity::pareto(3, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(3, nodes);
        let utility = Step::new(5.0);
        let (_, w_het) = brute_force_heterogeneous(&system, &demand, &profile, &utility);

        let hom = SystemModel::pure_p2p(nodes, 1, mu);
        let (opt, w_hom) = brute_force_homogeneous(&hom, &demand, &utility);
        let w_eval = social_welfare_homogeneous(&hom, &demand, &utility, &opt.as_f64());
        assert!((w_hom - w_eval).abs() < 1e-12);
        // The heterogeneous enumeration sees concrete placements, the
        // homogeneous closed form their (1−x/N) average — identical under
        // constant rates and uniform π.
        assert!(
            (w_het - w_hom).abs() < 1e-9 * w_hom.abs().max(1.0),
            "het {w_het} vs hom {w_hom}"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_oversized_instances() {
        let rates = ContactRates::homogeneous(20, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 5);
        let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(12, 20);
        let _ = brute_force_heterogeneous(&system, &demand, &profile, &Step::new(1.0));
    }
}
