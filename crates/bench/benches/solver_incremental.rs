//! Incremental re-optimization micro-benchmarks: the `DeltaSolver`
//! absorbing bounded delta batches vs a from-scratch greedy re-solve,
//! plus the cost of a bounded-staleness certificate. The committed
//! baseline (with the acceptance ratios) lives in
//! `BENCH_solver_incremental.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use impatience_core::demand::Popularity;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::incremental::{Delta, DeltaSolver};
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Step};

const ITEMS: usize = 1000;

fn setting() -> SystemModel {
    SystemModel::pure_p2p(50, 5, 0.05)
}

fn bench_incremental(c: &mut Criterion) {
    let system = setting();
    let demand = Popularity::pareto(ITEMS, 1.0).demand_rates(1.0);
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));

    let mut group = c.benchmark_group("solver_incremental");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);

    // Baseline: what a per-epoch re-solve costs without the DeltaSolver.
    group.bench_function("scratch_n1000", |b| {
        b.iter(|| black_box(greedy_homogeneous(&system, &demand, utility.as_ref())));
    });

    // Exact incremental mode at growing batch sizes. Each iteration
    // toggles the chosen items between their base rate and 1.5x it, so
    // every apply() does real rebalancing work in steady state.
    for &batch in &[1usize, 8, 64] {
        let mut solver = DeltaSolver::new(system, &demand, Arc::clone(&utility));
        let mut flip = false;
        group.bench_with_input(BenchmarkId::new("delta", batch), &batch, |b, &batch| {
            b.iter(|| {
                flip = !flip;
                let scale = if flip { 1.5 } else { 1.0 };
                let deltas: Vec<Delta> = (0..batch)
                    .map(|j| {
                        let item = (j * 97) % ITEMS;
                        Delta::Demand {
                            item,
                            rate: demand.rate(item) * scale,
                        }
                    })
                    .collect();
                black_box(solver.apply(&deltas).expect("demand deltas cannot fail"))
            });
        });
    }

    // Bounded-staleness mode under tiny nudges: the steady-state cost of
    // evaluating (and accepting) a weak-duality certificate instead of
    // re-solving.
    let mut certified =
        DeltaSolver::new(system, &demand, Arc::clone(&utility)).with_staleness(0.05);
    let mut flip = false;
    group.bench_function("certified_reuse", |b| {
        b.iter(|| {
            flip = !flip;
            let scale = if flip { 1.001 } else { 1.0 };
            let deltas = [Delta::Demand {
                item: 0,
                rate: demand.rate(0) * scale,
            }];
            black_box(certified.apply(&deltas).expect("demand deltas cannot fail"))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
