//! Delay-utility transform costs: closed forms (Table 1) versus the
//! generic numeric integration path used by `Custom` utilities — the
//! price of not knowing your impatience model analytically.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use impatience_core::utility::{Custom, DelayUtility, Exponential, Power, Step};

fn bench_closed_forms(c: &mut Criterion) {
    let step = Step::new(1.0);
    let expo = Exponential::new(0.5);
    let power = Power::new(0.5);
    let mut group = c.benchmark_group("closed_form");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("step_gain", |b| b.iter(|| black_box(step.gain(0.25))));
    group.bench_function("exp_phi", |b| b.iter(|| black_box(expo.phi(5.0, 0.05))));
    group.bench_function("power_psi", |b| {
        b.iter(|| black_box(power.psi(10.0, 50.0, 0.05)))
    });
    group.finish();
}

fn bench_numeric_fallbacks(c: &mut Criterion) {
    let expo = Exponential::new(0.5);
    let custom = Custom::new(|t| (-0.5 * t).exp(), 1.0, 0.0);
    let mut group = c.benchmark_group("numeric_vs_closed");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    group.bench_function("exp_gain_closed", |b| b.iter(|| black_box(expo.gain(0.25))));
    group.bench_function("exp_gain_numeric", |b| {
        b.iter(|| black_box(expo.gain_numeric(0.25).unwrap()))
    });
    group.bench_function("custom_phi_numeric", |b| {
        b.iter(|| black_box(custom.phi(5.0, 0.05)))
    });
    group.finish();
}

fn bench_welfare_evaluation(c: &mut Criterion) {
    use impatience_core::demand::Popularity;
    use impatience_core::types::SystemModel;
    use impatience_core::welfare::social_welfare_homogeneous;
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = Popularity::pareto(1_000, 1.0).demand_rates(1.0);
    let counts: Vec<f64> = (0..1_000).map(|i| (i % 10) as f64 + 1.0).collect();
    let step = Step::new(10.0);
    c.bench_function("welfare_homogeneous_1000_items", |b| {
        b.iter(|| black_box(social_welfare_homogeneous(&system, &demand, &step, &counts)))
    });
}

criterion_group!(
    benches,
    bench_closed_forms,
    bench_numeric_fallbacks,
    bench_welfare_evaluation
);
criterion_main!(benches);
