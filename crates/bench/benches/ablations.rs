//! Runtime cost of the QCR design choices that DESIGN.md calls out:
//! mandate routing, rewriting, the mandate cap, and reaction
//! normalization. (Their *quality* impact is measured by the
//! `ablation_qcr` binary; this bench measures their *overhead*.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use impatience_core::demand::Popularity;
use impatience_core::utility::{DelayUtility, Power};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::run_trial;
use impatience_sim::policy::{PolicyKind, QcrConfig, Reaction};

fn setup() -> (SimConfig, ContactSource) {
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(0.0));
    let config = SimConfig::builder(50, 5)
        .demand(Popularity::pareto(50, 1.0).demand_rates(1.0))
        .utility(utility)
        .bin(100.0)
        .build();
    let source = ContactSource::homogeneous(50, 0.05, 1_000.0);
    (config, source)
}

fn bench_qcr_knobs(c: &mut Criterion) {
    let (config, source) = setup();
    let contacts = (1_225.0 * 0.05 * 1_000.0) as u64;
    let variants: Vec<(&str, QcrConfig)> = vec![
        ("default", QcrConfig::default()),
        (
            "no_routing",
            QcrConfig {
                mandate_routing: false,
                ..QcrConfig::default()
            },
        ),
        (
            "rewriting",
            QcrConfig {
                rewriting: true,
                ..QcrConfig::default()
            },
        ),
        (
            "uncapped",
            QcrConfig {
                mandate_cap: u64::MAX,
                ..QcrConfig::default()
            },
        ),
        (
            "no_normalization_low_gain",
            QcrConfig {
                normalize_reaction: false,
                gain_scale: 0.02,
                ..QcrConfig::default()
            },
        ),
        (
            "passive_constant",
            QcrConfig {
                reaction: Reaction::Constant(1.0),
                ..QcrConfig::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("qcr_knobs_runtime");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(contacts));
    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_trial(&config, &source, PolicyKind::Qcr(cfg.clone()), 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qcr_knobs);
criterion_main!(benches);
