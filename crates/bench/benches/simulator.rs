//! Simulator throughput: contacts processed per second for the QCR
//! policy and a pinned allocation, on the paper's §6.2 system size.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use impatience_core::demand::Popularity;
use impatience_core::prelude::uniform;
use impatience_core::utility::{DelayUtility, Step};
use impatience_obs::{JsonlSink, Recorder, TallySink};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::engine::{run_trial, run_trial_materialized, run_trial_observed};
use impatience_sim::policy::PolicyKind;
use impatience_sim::sharded::run_trial_sharded;

fn setup(duration: f64) -> (SimConfig, ContactSource, u64) {
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
    let config = SimConfig::builder(50, 5)
        .demand(Popularity::pareto(50, 1.0).demand_rates(1.0))
        .utility(utility)
        .bin(100.0)
        .build();
    let source = ContactSource::homogeneous(50, 0.05, duration);
    // 1225 pairs × 0.05/min × duration contacts expected.
    let contacts = (1_225.0 * 0.05 * duration) as u64;
    (config, source, contacts)
}

fn bench_trial_throughput(c: &mut Criterion) {
    let (config, source, contacts) = setup(1_000.0);
    let mut group = c.benchmark_group("run_trial_50n_1000min");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(contacts));
    group.bench_function("qcr", |b| {
        b.iter(|| black_box(run_trial(&config, &source, PolicyKind::qcr_default(), 1)))
    });
    group.bench_function("static_uni", |b| {
        let policy = PolicyKind::Static {
            label: "UNI",
            counts: uniform(50, 50, 5),
        };
        b.iter(|| black_box(run_trial(&config, &source, policy.clone(), 1)))
    });
    group.finish();
}

fn bench_trace_realization(c: &mut Criterion) {
    let (_, source, contacts) = setup(1_000.0);
    let mut group = c.benchmark_group("contact_generation");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    group.throughput(Throughput::Elements(contacts));
    group.bench_function("poisson_homogeneous_50n", |b| {
        let mut rng = impatience_core::rng::Xoshiro256::seed_from_u64(3);
        b.iter(|| black_box(source.realize(&mut rng)))
    });
    group.finish();
}

/// The zero-cost claim, measured. `uninstrumented` is `run_trial` — the
/// public API with every hook monomorphized against `NoopSink` and
/// span probes cold; `noop` drives `run_trial_observed` with an explicit
/// `Recorder::disabled()`, the documented no-op configuration. The CI
/// gate (`ci/check_overhead.py`) holds `noop` within 2 % of
/// `uninstrumented`; they must compile to the same machine code, so a
/// gap means someone broke the static-dispatch design. `noop_profiled`
/// arms the span probes (two monotonic-clock reads per span, including
/// the per-contact spans) — the honest price of `--profile`. `tally`
/// shows counters + histograms, `jsonl` the cost of serializing every
/// event (to an in-memory buffer, so disks don't pollute the
/// comparison).
fn bench_observability_overhead(c: &mut Criterion) {
    let (config, source, contacts) = setup(1_000.0);
    let policy = PolicyKind::qcr_default();
    let mut group = c.benchmark_group("observability_overhead");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(contacts));
    group.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(run_trial(&config, &source, policy.clone(), 1)))
    });
    group.bench_function("noop", |b| {
        b.iter(|| {
            let mut rec = Recorder::disabled();
            black_box(run_trial_observed(
                &config,
                &source,
                policy.clone(),
                1,
                &mut rec,
            ))
        })
    });
    impatience_obs::span::enable();
    group.bench_function("noop_profiled", |b| {
        b.iter(|| black_box(run_trial(&config, &source, policy.clone(), 1)))
    });
    impatience_obs::span::disable();
    // Drain what the armed rows recorded so later benches start clean.
    let _ = impatience_obs::span::take_report();
    group.bench_function("tally", |b| {
        b.iter(|| {
            let mut rec = Recorder::new(TallySink);
            black_box(run_trial_observed(
                &config,
                &source,
                policy.clone(),
                1,
                &mut rec,
            ))
        })
    });
    group.bench_function("jsonl", |b| {
        b.iter(|| {
            let mut rec = Recorder::new(JsonlSink::new(Vec::with_capacity(1 << 20)));
            black_box(run_trial_observed(
                &config,
                &source,
                policy.clone(),
                1,
                &mut rec,
            ))
        })
    });
    group.finish();
}

/// Streaming vs materialized contact pipeline at growing node counts.
///
/// Three rows per population size, all running the identical event loop:
///
/// * `streaming` — the lazy superposition sampler ([`run_trial`]):
///   O(1) trace memory, one `ln` + two bounded draws per contact.
/// * `collected` — [`run_trial_materialized`]: drains the *same* stream
///   into a `ContactTrace` first, then replays through a cursor. The
///   bit-for-bit regression reference; its overhead is pure
///   materialization (O(contacts) memory + a second pass).
/// * `materialized` — the pre-streaming pipeline: per-pair exponential
///   sequences pushed into one Vec and globally sorted
///   (`poisson_homogeneous`), then replayed. This is what every trial
///   paid before the streaming rewrite.
///
/// The duration shrinks with n so every size processes a comparable
/// number of contacts (~2M, ≈32 MB materialized — deliberately past the
/// cache hierarchy, the regime the streaming path exists for). A pinned
/// allocation keeps per-contact policy work negligible so the rows
/// measure the pipeline, not QCR's decision logic (benchmarked by
/// `run_trial_50n_1000min`). `BENCH_contact_pipeline.json` at the repo
/// root pins the measured baseline.
fn bench_contact_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("contact_pipeline");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for &n in &[50usize, 200, 1000] {
        let pairs = (n * (n - 1) / 2) as f64;
        let duration = 2_000_000.0 / (pairs * 0.05);
        let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
        let config = SimConfig::builder(50, 5)
            .demand(Popularity::pareto(50, 1.0).demand_rates(1.0))
            .utility(utility)
            .bin(duration.min(100.0))
            .build();
        let source = ContactSource::homogeneous(n, 0.05, duration);
        let contacts = (pairs * 0.05 * duration) as u64;
        let policy = PolicyKind::Static {
            label: "UNI",
            counts: uniform(50, n, 5),
        };
        group.throughput(Throughput::Elements(contacts));
        group.bench_function(format!("streaming_n{n}"), |b| {
            b.iter(|| black_box(run_trial(&config, &source, policy.clone(), 1)))
        });
        group.bench_function(format!("collected_n{n}"), |b| {
            b.iter(|| black_box(run_trial_materialized(&config, &source, policy.clone(), 1)))
        });
        group.bench_function(format!("materialized_n{n}"), |b| {
            b.iter(|| {
                let mut rng = impatience_core::rng::Xoshiro256::seed_from_u64(1);
                let trace =
                    impatience_traces::gen::poisson_homogeneous(n, 0.05, duration, &mut rng);
                let seed_source = ContactSource::trace(trace);
                black_box(run_trial(&config, &seed_source, policy.clone(), 1))
            })
        });
    }
    group.finish();
}

/// The intra-trial sharded engine at a population the serial engine can
/// also still handle, so the single-thread serial row is a direct
/// reference: `serial` is [`run_trial`] on the identical config/source,
/// `sharded_w{1,2,8}` spread the same trial over 1/2/8 worker threads
/// (bit-identical outputs; only the wall clock may differ). n = 20 000
/// keeps every epoch above the engine's inline threshold so the threaded
/// path is what gets measured. ~2M contacts per trial, matching the
/// `contact_pipeline` rows. On a single-core host the w2/w8 rows measure
/// scheduling overhead, not speedup — read them next to the `host` note
/// in `BENCH_contact_pipeline.json`.
fn bench_sharded_engine(c: &mut Criterion) {
    let n = 20_000usize;
    let mu = 1.67e-5;
    let duration = 600.0;
    let pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let contacts = (pairs * mu * duration) as u64;
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
    let config = SimConfig::builder(50, 5)
        .demand(Popularity::pareto(50, 1.0).demand_rates(1.0))
        .utility(utility)
        .bin(100.0)
        .build();
    let source = ContactSource::homogeneous(n, mu, duration);
    let policy = PolicyKind::qcr_default();
    let mut group = c.benchmark_group("sharded_engine");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.throughput(Throughput::Elements(contacts));
    group.bench_function("serial_n20000", |b| {
        b.iter(|| black_box(run_trial(&config, &source, policy.clone(), 1)))
    });
    for workers in [1usize, 2, 8] {
        group.bench_function(format!("sharded_n20000_w{workers}"), |b| {
            b.iter(|| {
                black_box(
                    run_trial_sharded(&config, &source, policy.clone(), 1, workers)
                        .expect("supported configuration"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trial_throughput,
    bench_trace_realization,
    bench_observability_overhead,
    bench_contact_pipeline,
    bench_sharded_engine
);
criterion_main!(benches);
