//! Solver micro-benchmarks: the greedy of Theorem 2 (with its
//! `O(|I| + ρ|S| log |I|)` bound), the water-filling relaxed optimum of
//! Property 1, the CELF heterogeneous greedy of Theorem 1, and the fixed
//! heuristics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use impatience_core::demand::{DemandProfile, Popularity};
use impatience_core::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::het_greedy::greedy_heterogeneous;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::types::SystemModel;
use impatience_core::utility::{Exponential, Step};
use impatience_core::welfare::{ContactRates, HeterogeneousSystem};

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_homogeneous");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    for &items in &[50usize, 500, 5_000] {
        let system = SystemModel::pure_p2p(50, 5, 0.05);
        let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
        let utility = Step::new(10.0);
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, _| {
            b.iter(|| black_box(greedy_homogeneous(&system, &demand, &utility)));
        });
    }
    group.finish();
}

fn bench_relaxed(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_water_filling");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    for &items in &[50usize, 500] {
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
        let utility = Exponential::new(0.5);
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, _| {
            b.iter(|| black_box(relaxed_optimum(&system, &demand, &utility)));
        });
    }
    group.finish();
}

fn bench_het_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("heterogeneous_celf_greedy");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for &nodes in &[20usize, 50] {
        let rates = ContactRates::from_fn(nodes, |a, b| 0.01 * ((a + b) % 7 + 1) as f64);
        let system = HeterogeneousSystem::pure_p2p(rates, 5);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(50, nodes);
        let utility = Step::new(10.0);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(greedy_heterogeneous(&system, &demand, &profile, &utility)));
        });
    }
    group.finish();
}

fn bench_fixed_heuristics(c: &mut Criterion) {
    let demand = Popularity::pareto(5_000, 1.0).demand_rates(1.0);
    let mut group = c.benchmark_group("fixed_allocations_5000_items");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(30);
    group.bench_function("uniform", |b| b.iter(|| black_box(uniform(5_000, 50, 5))));
    group.bench_function("sqrt", |b| {
        b.iter(|| black_box(sqrt_proportional(&demand, 50, 5)))
    });
    group.bench_function("prop", |b| {
        b.iter(|| black_box(proportional(&demand, 50, 5)))
    });
    group.bench_function("dom", |b| b.iter(|| black_box(dominant(&demand, 50, 5))));
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_scaling,
    bench_relaxed,
    bench_het_greedy,
    bench_fixed_heuristics
);
criterion_main!(benches);
