//! Trace-infrastructure benchmarks: synthetic generation (Poisson,
//! conference, vehicular), statistics estimation, and I/O.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use impatience_core::rng::Xoshiro256;
use impatience_traces::gen::{poisson_homogeneous, ConferenceConfig, VehicularConfig};
use impatience_traces::{read_trace, resynthesize_memoryless, write_trace, TraceStats};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.bench_function("poisson_50n_5000min", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| black_box(poisson_homogeneous(50, 0.05, 5_000.0, &mut rng)))
    });
    group.bench_function("conference_50n_3days", |b| {
        let cfg = ConferenceConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| black_box(cfg.generate(&mut rng)))
    });
    group.bench_function("vehicular_20cabs_4h", |b| {
        let cfg = VehicularConfig {
            cabs: 20,
            duration: 240.0,
            city_size: 4_000.0,
            sample_step: 0.25,
            ..VehicularConfig::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(3);
        b.iter(|| black_box(cfg.generate(&mut rng)))
    });
    group.finish();
}

fn bench_stats_and_synthesis(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from_u64(4);
    let trace = poisson_homogeneous(50, 0.05, 5_000.0, &mut rng);
    let mut group = c.benchmark_group("trace_analysis");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.bench_function("stats_estimation", |b| {
        b.iter(|| black_box(TraceStats::from_trace(&trace)))
    });
    group.bench_function("memoryless_resynthesis", |b| {
        let mut rng = Xoshiro256::seed_from_u64(5);
        b.iter(|| black_box(resynthesize_memoryless(&trace, &mut rng)))
    });
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from_u64(6);
    let trace = poisson_homogeneous(50, 0.05, 2_000.0, &mut rng);
    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).unwrap();
    let mut group = c.benchmark_group("trace_io");
    group.warm_up_time(Duration::from_millis(800));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    group.bench_function("write_text", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_trace(&trace, &mut buf).unwrap();
            black_box(buf)
        })
    });
    group.bench_function("read_text", |b| {
        b.iter(|| black_box(read_trace(encoded.as_slice()).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_stats_and_synthesis,
    bench_io
);
criterion_main!(benches);
