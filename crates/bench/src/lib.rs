//! # impatience-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each `src/bin/*` binary reproduces one
//! figure/table and writes CSV series under `results/`; this library
//! holds the shared plumbing: competitor construction, normalized-loss
//! computation, and CSV output.
//!
//! Binaries (`cargo run -p impatience-bench --release --bin …`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_closed_forms` | Table 1 (closed forms vs numerics) |
//! | `fig1_delay_utilities` | Fig. 1 (delay-utility families) |
//! | `fig2_alloc_exponent` | Fig. 2 (optimal allocation exponent) |
//! | `fig3_mandate_routing` | Fig. 3 (mandate-routing ablation) |
//! | `fig4_homogeneous` | Fig. 4 (QCR vs fixed allocations) |
//! | `fig5_conference` | Fig. 5 (conference trace) |
//! | `fig6_vehicular` | Fig. 6 (vehicular trace) |
//!
//! All binaries accept `--quick` for a reduced-size run (CI-friendly) and
//! `--out <dir>` to redirect the CSV output (default `results/`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use impatience_core::allocation::ReplicaCounts;
use impatience_core::demand::{DemandProfile, DemandRates};
use impatience_core::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::het_greedy::greedy_heterogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::HeterogeneousSystem;
use impatience_json::Json;
use impatience_obs::{AtomicFile, Manifest};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::{run_trials, TrialAggregate};
use impatience_traces::TraceStats;

/// Common command-line options of the figure binaries.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Reduced problem sizes / trial counts for smoke runs.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl RunOptions {
    /// Parse from `std::env::args` (supports `--quick`, `--out DIR`).
    pub fn from_args() -> Self {
        let mut quick = false;
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    out_dir =
                        PathBuf::from(args.next().expect("--out requires a directory argument"));
                }
                other => panic!("unknown argument `{other}` (expected --quick / --out DIR)"),
            }
        }
        RunOptions { quick, out_dir }
    }

    /// Scale a full-size count down for quick runs.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Scale a full-size duration down for quick runs.
    pub fn scaled_f(&self, full: f64, quick: f64) -> f64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Write CSV rows (first row = header) to `<out_dir>/<name>.csv`,
/// creating the directory if needed, and echo the path.
///
/// The CSV commits atomically (write-temp-then-rename), so a crashed or
/// killed experiment never leaves a truncated results file behind — at
/// worst the previous version survives untouched.
///
/// Every CSV gets a `.manifest.json` sibling recording provenance: the
/// producing binary and its arguments, git revision, creation time,
/// header, and row count — enough to tell which code produced a results
/// file without trusting a shared log.
pub fn write_csv(out_dir: &Path, name: &str, header: &str, rows: &[String]) {
    fs::create_dir_all(out_dir).expect("cannot create output directory");
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = AtomicFile::create(&path).expect("cannot create CSV file");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    f.commit().expect("cannot commit CSV file");
    println!("wrote {}", path.display());

    let argv: Vec<String> = std::env::args().collect();
    let binary = argv
        .first()
        .map(|s| {
            Path::new(s)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| s.clone())
        })
        .unwrap_or_default();
    let mut manifest = Manifest::new("bench_csv");
    manifest.set("binary", binary);
    manifest.set("args", Json::from(argv[1..].to_vec()));
    manifest.set("csv", path.display().to_string());
    manifest.set("header", header);
    manifest.set("rows", rows.len() as u64);
    let mpath = Manifest::sibling_path(&path);
    manifest.write_to(&mpath).expect("cannot write manifest");
    println!("wrote {}", mpath.display());
}

/// The §6.1 competitor suite for a *homogeneous* setting: OPT (exact
/// greedy of Theorem 2), UNI, SQRT, PROP, DOM.
pub fn homogeneous_competitors(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> Vec<PolicyKind> {
    let servers = system.servers();
    let rho = system.cache_capacity;
    vec![
        PolicyKind::Static {
            label: "OPT",
            counts: greedy_homogeneous(system, demand, utility),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(demand.items(), servers, rho),
        },
        PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(demand, servers, rho),
        },
        PolicyKind::Static {
            label: "PROP",
            counts: proportional(demand, servers, rho),
        },
        PolicyKind::Static {
            label: "DOM",
            counts: dominant(demand, servers, rho),
        },
    ]
}

/// The competitor suite for a *trace* setting: OPT is the submodular
/// greedy of Theorem 1 on rates estimated from the trace (the paper's
/// memoryless approximation, §6.3); the others are rate-blind.
pub fn trace_competitors(
    trace_stats: &TraceStats,
    rho: usize,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> Vec<PolicyKind> {
    let nodes = trace_stats.nodes();
    let mut rates = trace_stats.rates().clone();
    if utility.h_infinity() == f64::NEG_INFINITY {
        // Unbounded waiting costs make the memoryless welfare −∞ whenever
        // some client cannot reach any holder, which degenerates the
        // greedy (every placement looks equally worthless and OPT
        // collapses to DOM). Never-observed pairs are a finite-observation
        // artifact, so smooth them with a small ambient rate (2 % of the
        // trace mean) before estimating OPT.
        let floor = (rates.mean_rate() * 0.02).max(1e-12);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                if rates.rate(a, b) == 0.0 {
                    rates.set_rate(a, b, floor);
                }
            }
        }
    }
    let hsys = HeterogeneousSystem::pure_p2p(rates, rho);
    let opt_matrix = greedy_heterogeneous(&hsys, demand, profile, utility);
    vec![
        PolicyKind::Static {
            label: "OPT",
            counts: opt_matrix.to_counts(),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(demand.items(), nodes, rho),
        },
        PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(demand, nodes, rho),
        },
        PolicyKind::Static {
            label: "PROP",
            counts: proportional(demand, nodes, rho),
        },
        PolicyKind::Static {
            label: "DOM",
            counts: dominant(demand, nodes, rho),
        },
    ]
}

/// Run QCR plus a competitor list, returning `(label, aggregate)` pairs.
///
/// All policies share `base_seed` (paired randomness) so their contact
/// and demand realizations match trial-for-trial.
pub fn run_policy_suite(
    config: &SimConfig,
    source: &ContactSource,
    competitors: Vec<PolicyKind>,
    trials: usize,
    base_seed: u64,
) -> Vec<(String, TrialAggregate)> {
    let mut policies = vec![PolicyKind::qcr_default()];
    policies.extend(competitors);
    policies
        .into_iter()
        .map(|p| {
            let agg = run_trials(config, source, &p, trials, base_seed);
            (p.label(), agg)
        })
        .collect()
}

/// Extract `(U − U_OPT)/|U_OPT|` in percent for every non-OPT policy,
/// using the *simulated* OPT utility as the reference (as the paper's
/// Fig. 4–6 do).
pub fn normalized_losses(suite: &[(String, TrialAggregate)]) -> Vec<(String, f64)> {
    let u_opt = suite
        .iter()
        .find(|(l, _)| l == "OPT")
        .map(|(_, a)| a.mean_rate)
        .expect("suite must contain OPT");
    suite
        .iter()
        .filter(|(l, _)| l != "OPT")
        .map(|(l, a)| {
            (
                l.clone(),
                impatience_sim::metrics::normalized_loss_percent(a.mean_rate, u_opt),
            )
        })
        .collect()
}

/// Convenience: the paper's §6.2 homogeneous setting (50 pure-P2P nodes,
/// 50 items, ρ = 5, μ = 0.05, Pareto(ω = 1) demand).
pub fn paper_homogeneous_setting(
    utility: Arc<dyn DelayUtility>,
    duration: f64,
) -> (SimConfig, ContactSource, SystemModel) {
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = impatience_core::demand::Popularity::pareto(50, 1.0).demand_rates(1.0);
    let config = SimConfig::builder(50, 5)
        .demand(demand)
        .utility(utility)
        .bin(60.0)
        .warmup_fraction(0.3)
        .build();
    let source = ContactSource::homogeneous(50, 0.05, duration);
    (config, source, system)
}

/// Pretty-print a suite summary to stdout.
pub fn print_suite(title: &str, suite: &[(String, TrialAggregate)]) {
    println!("\n=== {title} ===");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "policy", "mean U", "p5", "p95", "transmissions"
    );
    for (label, agg) in suite {
        println!(
            "{:<16} {:>12.5} {:>12.5} {:>12.5} {:>14.1}",
            label, agg.mean_rate, agg.p5_rate, agg.p95_rate, agg.mean_transmissions
        );
    }
    for (label, loss) in normalized_losses(suite) {
        println!("  loss vs OPT  {label:<14} {loss:>9.2}%");
    }
}

/// Format one CSV row of a loss table.
pub fn loss_row(param: f64, losses: &[(String, f64)]) -> String {
    let mut row = format!("{param}");
    for (_, loss) in losses {
        row.push_str(&format!(",{loss}"));
    }
    row
}

/// Header matching [`loss_row`].
pub fn loss_header(param_name: &str, losses: &[(String, f64)]) -> String {
    let mut h = param_name.to_string();
    for (label, _) in losses {
        h.push_str(&format!(",{label}"));
    }
    h
}

/// A fixed-allocation policy from explicit counts (helper for ablations).
pub fn static_policy(label: &'static str, counts: ReplicaCounts) -> PolicyKind {
    PolicyKind::Static { label, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;

    #[test]
    fn competitor_suite_has_expected_labels() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
        let comp = homogeneous_competitors(&system, &demand, &Step::new(1.0));
        let labels: Vec<String> = comp.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["OPT", "UNI", "SQRT", "PROP", "DOM"]);
        // All competitors use the full budget.
        for p in &comp {
            if let PolicyKind::Static { counts, .. } = p {
                assert_eq!(counts.total(), 20);
            }
        }
    }

    #[test]
    fn loss_table_formatting() {
        let losses = vec![("QCR".to_string(), -1.5), ("UNI".to_string(), -20.0)];
        assert_eq!(loss_header("tau", &losses), "tau,QCR,UNI");
        assert_eq!(loss_row(2.0, &losses), "2,-1.5,-20");
    }
}
