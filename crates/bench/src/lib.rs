//! # impatience-bench
//!
//! Criterion micro-benchmarks for the workspace's hot paths: the greedy
//! solvers (Theorems 1–2), the delay-utility evaluations and closed
//! forms, the discrete-event simulator, and trace generation /
//! statistics. Run them with:
//!
//! ```text
//! cargo bench -p impatience-bench
//! ```
//!
//! The figure/table **experiment harness** that used to live in this
//! crate's `src/bin/` has moved to the declarative pipeline in
//! `impatience-exp`: every paper figure, ablation, and extension is now
//! a TOML spec under `experiments/`, executed with
//! `impatience reproduce` (see EXPERIMENTS.md). This crate keeps only
//! the performance benchmarks, which measure code speed rather than
//! reproduce results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
