//! Extension experiment (§7 future work): **evolving demand**.
//!
//! The paper closes by noting that "distributed mechanisms like QCR
//! naturally adapt to a dynamic demand" while pinned allocations cannot.
//! This experiment quantifies that: halfway through the run the
//! popularity ranking reverses (yesterday's blockbuster is today's
//! archive), and we track the utility over time of
//!
//! * QCR (no knowledge of the shift — it only sees query counters),
//! * OPT-stale (the pre-shift optimum, pinned),
//! * OPT-fresh (the post-shift optimum, pinned — an oracle for the
//!   second half, handicapped in the first),
//! * UNI (shift-proof by construction).

use std::sync::Arc;

use impatience_bench::{write_csv, RunOptions};
use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::solver::fixed::uniform;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Step};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::run_trials;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 4);
    let duration = opts.scaled_f(10_000.0, 3_000.0);
    let (items, nodes, rho, mu) = (50, 50, 5, 0.05);
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(1.0));

    let before = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let after = DemandRates::new(before.rates().iter().rev().copied().collect());

    let config = SimConfig::builder(items, rho)
        .demand(before.clone())
        .utility(utility.clone())
        .demand_shift(duration / 2.0, after.clone())
        .bin(100.0)
        .warmup_fraction(0.0)
        .build();
    let source = ContactSource::homogeneous(nodes, mu, duration);
    let system = SystemModel::pure_p2p(nodes, rho, mu);

    let policies = vec![
        PolicyKind::qcr_default(),
        PolicyKind::Static {
            label: "OPT-stale",
            counts: greedy_homogeneous(&system, &before, utility.as_ref()),
        },
        PolicyKind::Static {
            label: "OPT-fresh",
            counts: greedy_homogeneous(&system, &after, utility.as_ref()),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, nodes, rho),
        },
    ];

    let mut aggregates = Vec::new();
    println!("demand reverses at t = {}", duration / 2.0);
    for p in &policies {
        let agg = run_trials(&config, &source, p, trials, 2_024);
        // Split the mean observed rate into pre/post-shift halves.
        let bins = agg.observed_series.len();
        let pre: f64 = agg.observed_series[..bins / 2].iter().sum::<f64>() / (bins / 2) as f64;
        let post: f64 =
            agg.observed_series[bins / 2..].iter().sum::<f64>() / (bins - bins / 2) as f64;
        println!(
            "{:<10} pre-shift {pre:>8.4}/min   post-shift {post:>8.4}/min",
            agg.label
        );
        aggregates.push(agg);
    }

    // Time series CSV.
    let mut header = "time".to_string();
    for a in &aggregates {
        header.push_str(&format!(",{}", a.label));
    }
    let mut rows = Vec::new();
    for b in 0..aggregates[0].observed_series.len() {
        let mut row = format!("{}", b as f64 * config.bin);
        for a in &aggregates {
            row.push_str(&format!(",{}", a.observed_series[b]));
        }
        rows.push(row);
    }
    write_csv(&opts.out_dir, "ext_dynamic_demand", &header, &rows);

    // Sanity: QCR must beat the stale optimum after the shift.
    let post_of = |label: &str| {
        let a = aggregates.iter().find(|a| a.label == label).unwrap();
        let bins = a.observed_series.len();
        a.observed_series[bins / 2..].iter().sum::<f64>() / (bins - bins / 2) as f64
    };
    assert!(
        post_of("QCR") > post_of("OPT-stale"),
        "QCR should out-adapt the stale pinned optimum"
    );
    println!("\nQCR re-converged after the shift; pinned OPT could not.");
}
