//! Fig. 3 reproduction: the effect of mandate routing (homogeneous
//! contacts, power delay-utility with α = 0, i.e. `h(t) = −t`).
//!
//! Panels:
//! (a) expected utility `U(x(t))` over time for DOM, UNI, OPT, QCR
//!     without mandate routing (QCRWOM), and QCR;
//! (b) observed utility over time for the same policies;
//! (c) replica counts of the five most-requested items over time, QCR
//!     *with* mandate routing — they fluctuate around the target;
//! (d) the same *without* mandate routing — popular items overshoot and
//!     the allocation drifts.
//!
//! The paper's headline observation: without routing, utility
//! "dramatically decreases with time" while mandates for rarely requested
//! items diverge; with routing QCR "quickly converges and stays near
//! optimal utility".

use std::sync::Arc;

use impatience_bench::{homogeneous_competitors, paper_homogeneous_setting, write_csv, RunOptions};
use impatience_core::utility::Power;
use impatience_sim::policy::{PolicyKind, QcrConfig};
use impatience_sim::runner::run_trials;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 4);
    let duration = opts.scaled_f(5_000.0, 2_000.0);

    let utility = Arc::new(Power::new(0.0));
    let (config, source, system) = paper_homogeneous_setting(utility.clone(), duration);

    let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
    let mut policies: Vec<PolicyKind> = vec![
        PolicyKind::qcr_default(),
        PolicyKind::Qcr(QcrConfig {
            mandate_routing: false,
            ..QcrConfig::default()
        }),
    ];
    // DOM, UNI, OPT as in the paper's panel legends.
    policies.extend(
        competitors
            .into_iter()
            .filter(|p| ["OPT", "UNI", "DOM"].contains(&p.label().as_str())),
    );

    let mut aggregates = Vec::new();
    for p in &policies {
        let agg = run_trials(&config, &source, p, trials, 42);
        println!(
            "{:<16} mean observed {:>10.4}  mean expected {:>10.4}",
            agg.label,
            agg.mean_rate,
            mean_finite(&agg.expected_series)
        );
        aggregates.push(agg);
    }

    // Panels (a) and (b): utility series.
    let bins = aggregates[0].expected_series.len();
    let mut expected_rows = Vec::new();
    let mut observed_rows = Vec::new();
    for b in 0..bins {
        let t = b as f64 * config.bin;
        let mut er = format!("{t}");
        let mut or = format!("{t}");
        for agg in &aggregates {
            er.push_str(&format!(",{}", agg.expected_series[b]));
            or.push_str(&format!(",{}", agg.observed_series[b]));
        }
        expected_rows.push(er);
        observed_rows.push(or);
    }
    let header = {
        let mut h = "time".to_string();
        for agg in &aggregates {
            h.push_str(&format!(",{}", agg.label));
        }
        h
    };
    write_csv(
        &opts.out_dir,
        "fig3a_expected_utility",
        &header,
        &expected_rows,
    );
    write_csv(
        &opts.out_dir,
        "fig3b_observed_utility",
        &header,
        &observed_rows,
    );

    // Panels (c)/(d): top-5 item replica series from a single
    // representative trial of each QCR variant.
    for (name, routing) in [
        ("fig3c_replicas_routing", true),
        ("fig3d_replicas_noroute", false),
    ] {
        let policy = PolicyKind::Qcr(QcrConfig {
            mandate_routing: routing,
            ..QcrConfig::default()
        });
        let out = impatience_sim::engine::run_trial(&config, &source, policy, 42);
        let mut rows = Vec::new();
        let series: Vec<Vec<u32>> = (0..5).map(|i| out.metrics.replica_series_of(i)).collect();
        for b in 0..series[0].len() {
            let t = b as f64 * config.bin;
            let mut row = format!("{t}");
            for s in &series {
                row.push_str(&format!(",{}", s[b]));
            }
            rows.push(row);
        }
        write_csv(&opts.out_dir, name, "time,msg1,msg2,msg3,msg4,msg5", &rows);
    }

    // The headline check: routing must clearly beat no-routing, and land
    // near OPT.
    let by_label = |l: &str| {
        aggregates
            .iter()
            .find(|a| a.label == l)
            .unwrap_or_else(|| panic!("missing {l}"))
    };
    let qcr = by_label("QCR").mean_rate;
    let qcrwom = by_label("QCR-no-routing").mean_rate;
    let opt = by_label("OPT").mean_rate;
    println!("\nQCR {qcr:.4} vs QCR-no-routing {qcrwom:.4} vs OPT {opt:.4}");
    assert!(
        qcr > qcrwom,
        "mandate routing should improve utility (got {qcr} ≤ {qcrwom})"
    );
    println!("Fig. 3 series written ({trials} trials × {duration} min).");
}

fn mean_finite(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
