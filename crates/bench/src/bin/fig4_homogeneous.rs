//! Fig. 4 reproduction: QCR against the fixed allocations under
//! homogeneous contacts (§6.2 setting: 50 pure-P2P nodes, 50 items,
//! ρ = 5, μ = 0.05, Pareto(ω=1) demand).
//!
//! Left panel: power delay-utility, sweeping α; right panel: step
//! delay-utility, sweeping τ. The y-value is the normalized loss
//! `(U − U_OPT)/|U_OPT|` in percent (≤ 0), with `U` the average observed
//! utility rate over ≥ 15 trials.
//!
//! Expected shape (checked in EXPERIMENTS.md): UNI and DOM fail badly at
//! the extremes (small α / small τ), SQRT is a strong all-rounder, PROP
//! suffers under power utilities, and QCR — using only local information —
//! stays within a few percent of the best fixed allocation.

use std::sync::Arc;

use impatience_bench::{
    homogeneous_competitors, loss_header, loss_row, normalized_losses, paper_homogeneous_setting,
    print_suite, run_policy_suite, write_csv, RunOptions,
};
use impatience_core::utility::{DelayUtility, Power, Step};

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 4);
    let duration = opts.scaled_f(5_000.0, 1_500.0);

    // --- Left: power utility, α sweep (paper: −2 … 1) ---
    let alphas: Vec<f64> = if opts.quick {
        vec![-1.0, 0.0, 0.5]
    } else {
        vec![-2.0, -1.5, -1.0, -0.5, 0.0, 0.25, 0.5, 0.75]
    };
    let mut power_rows = Vec::new();
    let mut power_header = String::new();
    for &alpha in &alphas {
        let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(alpha));
        let (config, source, system) = paper_homogeneous_setting(utility.clone(), duration);
        let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
        let suite = run_policy_suite(&config, &source, competitors, trials, 42);
        print_suite(&format!("power α = {alpha}"), &suite);
        let losses = normalized_losses(&suite);
        if power_header.is_empty() {
            power_header = loss_header("alpha", &losses);
        }
        power_rows.push(loss_row(alpha, &losses));
    }
    write_csv(&opts.out_dir, "fig4_power_loss", &power_header, &power_rows);

    // --- Right: step utility, τ sweep (paper: 1 … 1000) ---
    let taus: Vec<f64> = if opts.quick {
        vec![1.0, 10.0, 100.0]
    } else {
        vec![1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0]
    };
    let mut step_rows = Vec::new();
    let mut step_header = String::new();
    for &tau in &taus {
        let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(tau));
        let (config, source, system) = paper_homogeneous_setting(utility.clone(), duration);
        let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
        let suite = run_policy_suite(&config, &source, competitors, trials, 142);
        print_suite(&format!("step τ = {tau}"), &suite);
        let losses = normalized_losses(&suite);
        if step_header.is_empty() {
            step_header = loss_header("tau", &losses);
        }
        step_rows.push(loss_row(tau, &losses));
    }
    write_csv(&opts.out_dir, "fig4_step_loss", &step_header, &step_rows);

    println!(
        "\nFig. 4 series written ({} trials × {duration} min).",
        trials
    );
}
