//! Extension experiment: **per-item delay-utilities** (§3.2 allows each
//! item its own `h_i`; the paper's evaluation uses a single family).
//!
//! Catalog: half the items are *urgent* breaking-news (exponential,
//! ν = 1 — stale within minutes), half are *patient* software patches
//! (exponential, ν = 0.01 — wanted for hours). Demand is identical
//! across the two classes, so any allocation difference is pure
//! impatience. We compare:
//!
//! * the mixed-aware greedy (exact, Theorem 2 per-item), against
//! * single-model greedies that pretend every item is urgent / patient /
//!   "average", and the rate-blind fixed heuristics,
//!
//! all evaluated under the true mixed welfare.

use std::sync::Arc;

use impatience_bench::{write_csv, RunOptions};
use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::solver::fixed::{proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Exponential};
use impatience_core::welfare::{
    greedy_homogeneous_mixed, social_welfare_homogeneous_mixed, UtilityCatalog,
};

fn main() {
    let opts = RunOptions::from_args();
    let (items, nodes, rho, mu) = (50, 50, 5, 0.05);
    let system = SystemModel::pure_p2p(nodes, rho, mu);
    let demand: DemandRates = Popularity::pareto(items, 1.0).demand_rates(1.0);

    let urgent = 1.0;
    let patient = 0.01;
    let catalog = UtilityCatalog::new(
        (0..items)
            .map(|i| -> Arc<dyn DelayUtility> {
                if i % 2 == 0 {
                    Arc::new(Exponential::new(urgent))
                } else {
                    Arc::new(Exponential::new(patient))
                }
            })
            .collect(),
    );

    let evaluate = |counts: &[u32]| {
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        social_welfare_homogeneous_mixed(&system, &demand, &catalog, &xs)
    };

    let mixed_opt = greedy_homogeneous_mixed(&system, &demand, &catalog);
    let w_star = evaluate(mixed_opt.counts());

    let mut rows = Vec::new();
    println!("true mixed welfare of each allocation strategy:");
    println!("{:<22} {:>12} {:>10}", "strategy", "welfare", "loss");
    let mut report = |name: &str, counts: &[u32]| {
        let w = evaluate(counts);
        let loss = 100.0 * (w - w_star) / w_star.abs();
        println!("{name:<22} {w:>12.5} {loss:>9.2}%");
        rows.push(format!("{name},{w},{loss}"));
    };

    report("mixed-aware greedy", mixed_opt.counts());
    for (name, nu) in [
        ("assume-all-urgent", urgent),
        ("assume-all-patient", patient),
        ("assume-average", (urgent * patient).sqrt()),
    ] {
        let counts = greedy_homogeneous(&system, &demand, &Exponential::new(nu));
        report(name, counts.counts());
    }
    report("UNI", uniform(items, nodes, rho).counts());
    report("SQRT", sqrt_proportional(&demand, nodes, rho).counts());
    report("PROP", proportional(&demand, nodes, rho).counts());

    // Same-demand neighbors with different urgency get different shares.
    let (i_urgent, i_patient) = (20usize, 21usize);
    println!(
        "\nitems #{i_urgent} (urgent) vs #{i_patient} (patient), near-equal demand \
         ({:.4} vs {:.4}): {} vs {} replicas",
        demand.rate(i_urgent),
        demand.rate(i_patient),
        mixed_opt.count(i_urgent),
        mixed_opt.count(i_patient)
    );
    assert!(mixed_opt.count(i_urgent) > mixed_opt.count(i_patient));

    write_csv(
        &opts.out_dir,
        "ext_mixed_catalog",
        "strategy,welfare,loss_vs_mixed_pct",
        &rows,
    );
    println!("\nOne impatience model per item — the optimum knows the difference.");
}
