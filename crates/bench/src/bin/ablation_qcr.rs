//! Quality ablation of the QCR implementation choices DESIGN.md calls
//! out. For each knob we run the §6.2 homogeneous setting under two
//! impatience regimes (step τ = 1, power α = −1 — the regimes most
//! sensitive to replication dynamics) and report the achieved utility
//! against simulated OPT.
//!
//! Knobs:
//! * mandate routing on/off (the paper's §5.3 claim);
//! * rewriting on/off (the analysis assumes rewriting, §6.1 runs without);
//! * reaction normalization + steepness damping on/off;
//! * mandate cap ∈ {5, 20, ∞};
//! * reaction function: matched ψ vs constant (passive).

use std::sync::Arc;

use impatience_bench::{paper_homogeneous_setting, write_csv, RunOptions};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::utility::{DelayUtility, Power, Step};
use impatience_sim::policy::{PolicyKind, QcrConfig, Reaction};
use impatience_sim::runner::run_trials;

fn variants() -> Vec<(&'static str, QcrConfig)> {
    vec![
        ("default", QcrConfig::default()),
        (
            "no-routing",
            QcrConfig {
                mandate_routing: false,
                ..QcrConfig::default()
            },
        ),
        (
            "rewriting",
            QcrConfig {
                rewriting: true,
                ..QcrConfig::default()
            },
        ),
        (
            "cap-5",
            QcrConfig {
                mandate_cap: 5,
                ..QcrConfig::default()
            },
        ),
        (
            "uncapped",
            QcrConfig {
                mandate_cap: u64::MAX,
                ..QcrConfig::default()
            },
        ),
        (
            "raw-psi",
            QcrConfig {
                normalize_reaction: false,
                ..QcrConfig::default()
            },
        ),
        (
            "passive-1",
            QcrConfig {
                reaction: Reaction::Constant(1.0),
                ..QcrConfig::default()
            },
        ),
    ]
}

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(12, 4);
    let duration = opts.scaled_f(5_000.0, 1_500.0);

    let regimes: Vec<(&str, Arc<dyn DelayUtility>)> = vec![
        ("step_tau1", Arc::new(Step::new(1.0))),
        ("power_alpha-1", Arc::new(Power::new(-1.0))),
    ];

    let mut rows = Vec::new();
    for (regime, utility) in &regimes {
        let (config, source, system) = paper_homogeneous_setting(utility.clone(), duration);
        let opt_counts = greedy_homogeneous(&system, &config.demand, utility.as_ref());
        let opt = run_trials(
            &config,
            &source,
            &PolicyKind::Static {
                label: "OPT",
                counts: opt_counts,
            },
            trials,
            42,
        );
        println!("\n=== {regime}: OPT = {:.4} ===", opt.mean_rate);
        let mut contenders: Vec<(&str, PolicyKind)> = variants()
            .into_iter()
            .map(|(name, cfg)| (name, PolicyKind::Qcr(cfg)))
            .collect();
        // §4.1's full-knowledge hill climber as an upper-reference for
        // what *local moves* can achieve when the marginals are known.
        contenders.push((
            "hill-climb",
            PolicyKind::HillClimb {
                moves_per_contact: 1,
            },
        ));
        for (name, policy) in contenders {
            let agg = run_trials(&config, &source, &policy, trials, 42);
            let loss = 100.0 * (agg.mean_rate - opt.mean_rate) / opt.mean_rate.abs();
            println!(
                "{name:<12} U = {:>10.4}  loss vs OPT = {loss:>8.2}%  tx = {:>9.0}",
                agg.mean_rate, agg.mean_transmissions
            );
            rows.push(format!(
                "{regime},{name},{},{loss},{}",
                agg.mean_rate, agg.mean_transmissions
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "ablation_qcr",
        "regime,variant,utility,loss_vs_opt_pct,transmissions",
        &rows,
    );
}
