//! Fig. 5 reproduction: the conference scenario (Infocom'06 substitute)
//! with the step delay-utility.
//!
//! (a) utility over time (hourly bins) for τ = 1, showing the day/night
//!     alternation of the trace;
//! (b) normalized loss vs τ on the *actual* (bursty, diurnal) trace;
//! (c) the same on the *synthesized* trace — identical pairwise rates,
//!     memoryless time statistics — isolating heterogeneity from time
//!     correlations, exactly as §6.3 does.
//!
//! Expected shape: DOM and PROP relatively stronger than in the
//! homogeneous case, SQRT and UNI weak until τ grows large, QCR within
//! ~15 % of OPT throughout; on the actual trace some fixed allocations
//! can slightly beat OPT (which is computed under the memoryless
//! approximation).

use std::sync::Arc;

use impatience_bench::{
    loss_header, loss_row, normalized_losses, print_suite, run_policy_suite, trace_competitors,
    write_csv, RunOptions,
};
use impatience_core::demand::{DemandProfile, Popularity};
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::Step;
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_traces::gen::ConferenceConfig;
use impatience_traces::{resynthesize_memoryless, ContactTrace, TraceStats};

fn run_tau_sweep(name: &str, trace: &ContactTrace, taus: &[f64], trials: usize, opts: &RunOptions) {
    let stats = TraceStats::from_trace(trace);
    let items = 50;
    let rho = 5;
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    let source = ContactSource::trace(trace.clone());

    let mut rows = Vec::new();
    let mut header = String::new();
    for &tau in taus {
        let utility = Arc::new(Step::new(tau));
        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .profile(profile.clone())
            .utility(utility.clone())
            .bin(60.0)
            .warmup_fraction(0.25)
            .build();
        let competitors = trace_competitors(&stats, rho, &demand, &profile, utility.as_ref());
        let suite = run_policy_suite(&config, &source, competitors, trials, 4242);
        print_suite(&format!("{name} τ = {tau}"), &suite);
        let losses = normalized_losses(&suite);
        if header.is_empty() {
            header = loss_header("tau", &losses);
        }
        rows.push(loss_row(tau, &losses));
    }
    write_csv(&opts.out_dir, name, &header, &rows);
}

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 3);
    let mut rng = Xoshiro256::seed_from_u64(20_060_424); // Infocom'06 dates

    // 50 attendees over 3 conference days.
    let trace = ConferenceConfig::default().generate(&mut rng);
    let stats = TraceStats::from_trace(&trace);
    println!(
        "conference trace: {} contacts, mean rate {:.4}/min, rate CV {:.2}, burst CV {:.2}",
        trace.len(),
        stats.rates().mean_rate(),
        stats.rate_cv(),
        stats.normalized_intercontact_cv()
    );

    // --- Panel (a): utility over time at τ = 1 ---
    {
        let items = 50;
        let rho = 5;
        let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(items, trace.nodes());
        let utility = Arc::new(Step::new(1.0));
        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .profile(profile.clone())
            .utility(utility.clone())
            .bin(60.0)
            .warmup_fraction(0.25)
            .build();
        let competitors = trace_competitors(&stats, rho, &demand, &profile, utility.as_ref());
        let source = ContactSource::trace(trace.clone());
        let suite = run_policy_suite(&config, &source, competitors, trials, 99);
        print_suite("conference τ = 1 (time series)", &suite);

        let bins = suite[0].1.observed_series.len();
        let mut header = "time".to_string();
        for (label, _) in &suite {
            header.push_str(&format!(",{label}"));
        }
        let mut rows = Vec::new();
        for b in 0..bins {
            let mut row = format!("{}", b as f64 * 60.0);
            for (_, agg) in &suite {
                row.push_str(&format!(",{}", agg.observed_series[b]));
            }
            rows.push(row);
        }
        write_csv(&opts.out_dir, "fig5a_utility_over_time", &header, &rows);
    }

    // --- Panels (b)/(c): loss vs τ, actual and synthesized traces ---
    let taus: Vec<f64> = if opts.quick {
        vec![1.0, 10.0, 100.0]
    } else {
        vec![1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0]
    };
    run_tau_sweep("fig5b_loss_actual", &trace, &taus, trials, &opts);
    let synthesized = resynthesize_memoryless(&trace, &mut rng);
    run_tau_sweep("fig5c_loss_synthesized", &synthesized, &taus, trials, &opts);

    println!("\nFig. 5 series written ({trials} trials).");
}
