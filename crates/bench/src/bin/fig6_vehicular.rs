//! Fig. 6 reproduction: the vehicular scenario (Cabspotting substitute,
//! 50 taxis for one day, 200 m contacts).
//!
//! (a) normalized loss vs α (power delay-utility);
//! (b) normalized loss vs τ (step);
//! (c) normalized loss vs ν (exponential).
//!
//! Expected shape (§6.3): SQRT degrades relative to the homogeneous
//! case, DOM improves under heterogeneity and burstiness, OPT (computed
//! under the memoryless approximation) can occasionally be beaten, and
//! QCR — the only scheme using local information — remains comparatively
//! stable.

use std::sync::Arc;

use impatience_bench::{
    loss_header, loss_row, normalized_losses, print_suite, run_policy_suite, trace_competitors,
    write_csv, RunOptions,
};
use impatience_core::demand::{DemandProfile, Popularity};
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::{DelayUtility, Exponential, Power, Step};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_traces::gen::VehicularConfig;
use impatience_traces::{ContactTrace, TraceStats};

fn sweep(
    name: &str,
    param_name: &str,
    trace: &ContactTrace,
    utilities: Vec<(f64, Arc<dyn DelayUtility>)>,
    trials: usize,
    opts: &RunOptions,
) {
    let stats = TraceStats::from_trace(trace);
    let items = 50;
    let rho = 5;
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    let source = ContactSource::trace(trace.clone());

    let mut rows = Vec::new();
    let mut header = String::new();
    for (param, utility) in utilities {
        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .profile(profile.clone())
            .utility(utility.clone())
            .bin(60.0)
            .warmup_fraction(0.25)
            .build();
        let competitors = trace_competitors(&stats, rho, &demand, &profile, utility.as_ref());
        let suite = run_policy_suite(&config, &source, competitors, trials, 777);
        print_suite(&format!("{name}: {param_name} = {param}"), &suite);
        let losses = normalized_losses(&suite);
        if header.is_empty() {
            header = loss_header(param_name, &losses);
        }
        rows.push(loss_row(param, &losses));
    }
    write_csv(&opts.out_dir, name, &header, &rows);
}

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 3);
    let mut rng = Xoshiro256::seed_from_u64(2_008);

    let cfg = if opts.quick {
        VehicularConfig {
            cabs: 50,
            duration: 720.0,
            sample_step: 0.25,
            ..VehicularConfig::default()
        }
    } else {
        VehicularConfig::default()
    };
    let trace = cfg.generate(&mut rng);
    let stats = TraceStats::from_trace(&trace);
    println!(
        "vehicular trace: {} contacts over {} min, mean rate {:.5}/min, rate CV {:.2}",
        trace.len(),
        trace.duration(),
        stats.rates().mean_rate(),
        stats.rate_cv()
    );

    // (a) power α sweep.
    let alphas: Vec<f64> = if opts.quick {
        vec![-1.0, 0.0, 0.5]
    } else {
        vec![-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 0.75]
    };
    let utilities: Vec<(f64, Arc<dyn DelayUtility>)> = alphas
        .iter()
        .map(|&a| (a, Arc::new(Power::new(a)) as Arc<dyn DelayUtility>))
        .collect();
    sweep(
        "fig6a_power_loss",
        "alpha",
        &trace,
        utilities,
        trials,
        &opts,
    );

    // (b) step τ sweep.
    let taus: Vec<f64> = if opts.quick {
        vec![1.0, 10.0, 100.0]
    } else {
        vec![1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0]
    };
    let utilities: Vec<(f64, Arc<dyn DelayUtility>)> = taus
        .iter()
        .map(|&t| (t, Arc::new(Step::new(t)) as Arc<dyn DelayUtility>))
        .collect();
    sweep("fig6b_step_loss", "tau", &trace, utilities, trials, &opts);

    // (c) exponential ν sweep (the paper's axis spans decades).
    let nus: Vec<f64> = if opts.quick {
        vec![0.01, 0.1, 1.0]
    } else {
        vec![0.000_1, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0]
    };
    let utilities: Vec<(f64, Arc<dyn DelayUtility>)> = nus
        .iter()
        .map(|&n| (n, Arc::new(Exponential::new(n)) as Arc<dyn DelayUtility>))
        .collect();
    sweep("fig6c_exp_loss", "nu", &trace, utilities, trials, &opts);

    println!("\nFig. 6 series written ({trials} trials).");
}
