//! Fig. 2 reproduction: the coefficient of the optimal allocation for
//! power delay-utilities. The relaxed optimum satisfies
//! `x̃_i ∝ d_i^{1/(2−α)}` — uniform as α → −∞, square-root at α = 0,
//! proportional at α = 1, and winner-take-all as α → 2.
//!
//! For each α we solve the relaxed problem (Property 1 water-filling) on
//! a Pareto catalog and fit the log-log slope of `x̃_i` against `d_i`,
//! comparing it with the analytic `1/(2−α)`.

use impatience_bench::{write_csv, RunOptions};
use impatience_core::demand::Popularity;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, NegLog, Power};

fn fit_slope(d: &[f64], x: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = d
        .iter()
        .zip(x)
        .filter(|&(&di, &xi)| di > 0.0 && xi > 1e-7)
        .map(|(&di, &xi)| (di.ln(), xi.ln()))
        .collect();
    let n = pts.len() as f64;
    let (sx, sy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u, b + v));
    let (sxx, sxy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u * u, b + u * v));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let opts = RunOptions::from_args();
    // Large server pool and ρ = 1 keep every x̃_i strictly inside the box
    // so the fitted exponent is clean (no cap saturation).
    let system = SystemModel::dedicated(100, 400, 1, 0.05);
    let demand = Popularity::pareto(40, 1.0).demand_rates(1.0);

    let mut rows = Vec::new();
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "alpha", "fitted", "1/(2-a)", "abs.err"
    );
    let alphas: Vec<f64> = (-20..=18)
        .map(|k| 0.1 * k as f64)
        .filter(|a| (*a - 1.0).abs() > 1e-9)
        .collect();
    let mut worst: f64 = 0.0;
    for &alpha in &alphas {
        let utility = Power::new(alpha);
        let relaxed = relaxed_optimum(&system, &demand, &utility);
        let fitted = fit_slope(demand.rates(), &relaxed.x);
        let expect = 1.0 / (2.0 - alpha);
        let err = (fitted - expect).abs();
        worst = worst.max(err);
        println!("{alpha:>8.1} {fitted:>12.4} {expect:>12.4} {err:>10.2e}");
        rows.push(format!("{alpha},{fitted},{expect}"));
    }
    // The α = 1 point via NegLog: exactly proportional.
    let relaxed = relaxed_optimum(&system, &demand, &NegLog::new());
    let fitted = fit_slope(demand.rates(), &relaxed.x);
    println!("{:>8} {fitted:>12.4} {:>12.4}", "1 (log)", 1.0);
    rows.push(format!("1,{fitted},1"));
    worst = worst.max((fitted - 1.0).abs());

    write_csv(
        &opts.out_dir,
        "fig2_alloc_exponent",
        "alpha,fitted_exponent,analytic_exponent",
        &rows,
    );
    println!("\nworst |fitted − analytic| = {worst:.3e}");
    assert!(worst < 0.05, "allocation exponent deviates from 1/(2−α)");
    println!("Fig. 2 verified: x̃_i ∝ d_i^(1/(2−α)).");
    let _ = opts.quick; // sweep is cheap; no scaling needed
    let _: &dyn DelayUtility = &Power::new(0.0);
}
