//! Degraded-network experiment: how much of the optimal allocation's
//! advantage survives when the network itself misbehaves?
//!
//! Two sweeps over the §6.2 homogeneous setting (50 pure-P2P nodes,
//! 50 items, ρ = 5, μ = 0.05, Pareto(ω=1) demand, step(τ=10) utility),
//! comparing the greedy optimum (OPT), QCR, and random/uniform (UNI):
//!
//! * **contact drops** — each contact is lost with probability `p`
//!   (bursty, mean burst 2), sweeping `p`;
//! * **server churn** — nodes cycle exponentially between up and down,
//!   sweeping the fraction of time spent down.
//!
//! Output: `degraded_drop.csv` / `degraded_churn.csv` with absolute mean
//! observed utility per policy, plus the usual provenance manifests.
//! Faults are seeded, so every row is reproducible bit-for-bit.
//!
//! Expected shape (checked in EXPERIMENTS.md): welfare decays for every
//! policy as faults intensify, but the *ordering* OPT ≥ QCR ≥ UNI is
//! stable — optimal replication degrades gracefully rather than being an
//! artifact of a clean network.

use std::sync::Arc;

use impatience_bench::{
    homogeneous_competitors, paper_homogeneous_setting, run_policy_suite, write_csv, RunOptions,
};
use impatience_core::utility::{DelayUtility, Step};
use impatience_sim::faults::{Churn, ContactDrop, FaultConfig};

/// Mean observed utility for QCR/OPT/UNI under a given fault model.
fn run_point(faults: Option<FaultConfig>, trials: usize, duration: f64) -> Vec<(String, f64)> {
    let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
    let (config, source, system) = paper_homogeneous_setting(utility.clone(), duration);
    let config = match faults {
        Some(fc) => {
            let mut c = config;
            c.faults = Some(fc);
            c
        }
        None => config,
    };
    let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
    run_policy_suite(&config, &source, competitors, trials, 42)
        .into_iter()
        .filter(|(label, _)| label == "QCR" || label == "OPT" || label == "UNI")
        .map(|(label, agg)| (label, agg.mean_rate))
        .collect()
}

fn header_for(points: &[(String, f64)], param: &str) -> String {
    let mut h = param.to_string();
    for (label, _) in points {
        h.push_str(&format!(",{label}"));
    }
    h
}

fn row_for(param: f64, points: &[(String, f64)]) -> String {
    let mut row = format!("{param}");
    for (_, u) in points {
        row.push_str(&format!(",{u}"));
    }
    row
}

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 3);
    let duration = opts.scaled_f(5_000.0, 1_200.0);

    // --- Sweep 1: bursty contact loss ---
    let drops: Vec<f64> = if opts.quick {
        vec![0.0, 0.3, 0.6]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    };
    let mut rows = Vec::new();
    let mut header = String::new();
    for &p in &drops {
        let faults = (p > 0.0).then(|| FaultConfig {
            seed: 0xD20,
            drop: Some(ContactDrop { p, mean_burst: 2.0 }),
            ..FaultConfig::default()
        });
        let points = run_point(faults, trials, duration);
        if header.is_empty() {
            header = header_for(&points, "drop_p");
        }
        println!("drop p = {p}: {points:?}");
        rows.push(row_for(p, &points));
    }
    write_csv(&opts.out_dir, "degraded_drop", &header, &rows);

    // --- Sweep 2: exponential server churn ---
    // Mean cycle 250 min; sweep the down-time fraction.
    let down_fractions: Vec<f64> = if opts.quick {
        vec![0.0, 0.2, 0.5]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    };
    let mut rows = Vec::new();
    let mut header = String::new();
    for &f in &down_fractions {
        let faults = (f > 0.0).then(|| FaultConfig {
            seed: 0xC4A2,
            churn: Some(Churn {
                mean_up: 250.0 * (1.0 - f),
                mean_down: 250.0 * f,
            }),
            ..FaultConfig::default()
        });
        let points = run_point(faults, trials, duration);
        if header.is_empty() {
            header = header_for(&points, "down_fraction");
        }
        println!("down fraction = {f}: {points:?}");
        rows.push(row_for(f, &points));
    }
    write_csv(&opts.out_dir, "degraded_churn", &header, &rows);

    println!("\nDegraded-network series written ({trials} trials × {duration} min).");
}
