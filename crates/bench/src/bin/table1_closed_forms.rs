//! Table 1 reproduction: for every delay-utility family, print the
//! closed-form differential utility `c`, gain `U`/`G`, equilibrium
//! transform `φ` and reaction function `ψ`, and cross-validate each
//! integral quantity against direct numerical integration.
//!
//! The paper's Table 1 is analytic; "reproducing" it means demonstrating
//! that the implemented closed forms are the transforms the theory
//! defines. Columns: family, parameter, evaluation point, closed form,
//! numeric integral, relative error.

use impatience_bench::{write_csv, RunOptions};
use impatience_core::utility::{DelayUtility, Exponential, NegLog, Power, Step};

fn rel_err(closed: f64, numeric: f64) -> f64 {
    if closed == numeric {
        return 0.0;
    }
    (closed - numeric).abs() / closed.abs().max(numeric.abs()).max(1e-300)
}

fn main() {
    let opts = RunOptions::from_args();
    let mu = 0.05;
    let servers = 50.0;

    let families: Vec<(String, Box<dyn DelayUtility>)> = vec![
        ("step(tau=1)".into(), Box::new(Step::new(1.0))),
        ("step(tau=10)".into(), Box::new(Step::new(10.0))),
        ("exp(nu=0.1)".into(), Box::new(Exponential::new(0.1))),
        ("exp(nu=1)".into(), Box::new(Exponential::new(1.0))),
        ("power(alpha=-1)".into(), Box::new(Power::new(-1.0))),
        ("power(alpha=0)".into(), Box::new(Power::new(0.0))),
        ("power(alpha=0.5)".into(), Box::new(Power::new(0.5))),
        ("power(alpha=1.5)".into(), Box::new(Power::new(1.5))),
        ("neglog".into(), Box::new(NegLog::new())),
    ];

    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    println!(
        "{:<18} {:<10} {:>8} {:>14} {:>14} {:>10}",
        "family", "quantity", "point", "closed", "numeric", "rel.err"
    );
    for (name, u) in &families {
        // Gain G(λ) at a few rates (λ = μ·x).
        for x in [1.0, 5.0, 25.0] {
            let lambda = mu * x;
            let closed = u.gain(lambda);
            let numeric = u.gain_numeric(lambda).expect("gain integral");
            let e = rel_err(closed, numeric);
            worst = worst.max(e);
            println!(
                "{name:<18} {:<10} {x:>8} {closed:>14.6e} {numeric:>14.6e} {e:>10.2e}",
                "gain"
            );
            rows.push(format!("{name},gain,{x},{closed},{numeric},{e}"));
        }
        // φ(x): the step family's c is a Dirac measure, so its numeric
        // column uses a finite-difference of the (already verified) gain.
        for x in [1.0, 5.0, 25.0] {
            let closed = u.phi(x, mu);
            let numeric = match u.kind() {
                impatience_core::utility::UtilityKind::Step { .. } => {
                    let eps = 1e-6 * x;
                    (u.gain(mu * (x + eps)) - u.gain(mu * (x - eps))) / (2.0 * eps)
                }
                _ => u.phi_numeric(x, mu).expect("phi integral"),
            };
            let e = rel_err(closed, numeric);
            worst = worst.max(e);
            println!(
                "{name:<18} {:<10} {x:>8} {closed:>14.6e} {numeric:>14.6e} {e:>10.2e}",
                "phi"
            );
            rows.push(format!("{name},phi,{x},{closed},{numeric},{e}"));
        }
        // ψ(y) against the defining relation (s/y)·φ(s/y).
        for y in [2.0, 10.0, 50.0] {
            let closed = u.psi(y, servers, mu);
            let x = servers / y;
            let numeric = x * u.phi(x, mu);
            let e = rel_err(closed, numeric);
            worst = worst.max(e);
            println!(
                "{name:<18} {:<10} {y:>8} {closed:>14.6e} {numeric:>14.6e} {e:>10.2e}",
                "psi"
            );
            rows.push(format!("{name},psi,{y},{closed},{numeric},{e}"));
        }
    }

    write_csv(
        &opts.out_dir,
        "table1_closed_forms",
        "family,quantity,point,closed,numeric,rel_err",
        &rows,
    );
    println!("\nworst relative error: {worst:.3e}");
    assert!(
        worst < 1e-4,
        "closed forms diverge from numeric integration"
    );
    println!("Table 1 closed forms verified.");
}
