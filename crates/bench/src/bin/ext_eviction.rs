//! Extension ablation: **cache-eviction rules**.
//!
//! The paper's model — and the mean-field analysis behind QCR's
//! equilibrium (Eq. 7) — assumes *random* replacement: every replica is
//! equally likely to be overwritten, so deletion pressure on item `i` is
//! proportional to `x_i` and the ψ-balance lands on Property 1's
//! optimum. Recency-based rules (LRU/FIFO) couple deletions to the
//! request and replication processes instead, biasing the allocation.
//! This experiment quantifies the effect under the §6.2 setting for a
//! tight deadline (step τ = 1, where the allocation is strongly skewed)
//! and a waiting cost (power α = 0, where it is square-root).

use std::sync::Arc;

use impatience_bench::{paper_homogeneous_setting, write_csv, RunOptions};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::utility::{DelayUtility, Power, Step};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::run_trials;
use impatience_sim::EvictionPolicy;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(12, 4);
    let duration = opts.scaled_f(5_000.0, 1_500.0);

    let regimes: Vec<(&str, Arc<dyn DelayUtility>)> = vec![
        ("step_tau1", Arc::new(Step::new(1.0))),
        ("power_alpha0", Arc::new(Power::new(0.0))),
    ];
    let rules = [
        ("random", EvictionPolicy::Random),
        ("lru", EvictionPolicy::Lru),
        ("fifo", EvictionPolicy::Fifo),
    ];

    let mut rows = Vec::new();
    for (regime, utility) in &regimes {
        let (base_config, source, system) = paper_homogeneous_setting(utility.clone(), duration);
        let opt_counts = greedy_homogeneous(&system, &base_config.demand, utility.as_ref());
        let opt = run_trials(
            &base_config,
            &source,
            &PolicyKind::Static {
                label: "OPT",
                counts: opt_counts,
            },
            trials,
            900,
        );
        println!("\n=== {regime}: OPT = {:.4} ===", opt.mean_rate);
        for (name, rule) in rules {
            let mut config = base_config.clone();
            config.eviction = rule;
            let agg = run_trials(&config, &source, &PolicyKind::qcr_default(), trials, 900);
            let loss = 100.0 * (agg.mean_rate - opt.mean_rate) / opt.mean_rate.abs();
            println!(
                "QCR + {name:<7} U = {:>10.4}   loss vs OPT = {loss:>8.2}%",
                agg.mean_rate
            );
            rows.push(format!("{regime},{name},{},{loss}", agg.mean_rate));
        }
    }
    write_csv(
        &opts.out_dir,
        "ext_eviction",
        "regime,eviction,utility,loss_vs_opt_pct",
        &rows,
    );
    println!("\nRecency rules couple deletions to demand: they can even *help*");
    println!("(LRU shields demanded items under waiting costs) — but they move");
    println!("the equilibrium off Property 1, so the theory no longer predicts it.");
}
