//! Extension experiment: the **dedicated-node population** (§3.1's
//! throwboxes/kiosks case), which the paper analyzes but does not
//! simulate. Dedicated nodes legitimize the time-critical families
//! (`h(0⁺) = ∞`): clients cannot self-serve, so no infinite gains occur.
//!
//! Setup: 10 throwbox servers among 50 nodes, inverse-power impatience
//! swept over `α ∈ (1, 2)`. Competitors are the §6.1 suite computed with
//! the *dedicated* closed forms; QCR runs unchanged (its mandates are
//! minted at clients and routed to the throwboxes).

use std::sync::Arc;

use impatience_bench::{loss_header, loss_row, normalized_losses, write_csv, RunOptions};
use impatience_core::demand::{DemandProfile, Popularity};
use impatience_core::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Power};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::run_trials;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.scaled(15, 4);
    let duration = opts.scaled_f(5_000.0, 1_500.0);
    let (nodes, servers, items, rho, mu) = (50, 10, 50, 5, 0.05);
    let clients = nodes - servers;
    let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
    let system = SystemModel::dedicated(clients, servers, rho, mu);

    let alphas: Vec<f64> = if opts.quick {
        vec![1.25, 1.5]
    } else {
        vec![1.1, 1.25, 1.5, 1.75, 1.9]
    };

    let mut rows = Vec::new();
    let mut header = String::new();
    for &alpha in &alphas {
        let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(alpha));
        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .profile(DemandProfile::uniform(items, clients))
            .utility(utility.clone())
            .dedicated_servers(servers)
            .bin(100.0)
            .warmup_fraction(0.3)
            .build();
        let source = ContactSource::homogeneous(nodes, mu, duration);

        let policies = vec![
            PolicyKind::qcr_default(),
            PolicyKind::Static {
                label: "OPT",
                counts: greedy_homogeneous(&system, &demand, utility.as_ref()),
            },
            PolicyKind::Static {
                label: "UNI",
                counts: uniform(items, servers, rho),
            },
            PolicyKind::Static {
                label: "SQRT",
                counts: sqrt_proportional(&demand, servers, rho),
            },
            PolicyKind::Static {
                label: "PROP",
                counts: proportional(&demand, servers, rho),
            },
            PolicyKind::Static {
                label: "DOM",
                counts: dominant(&demand, servers, rho),
            },
        ];
        let suite: Vec<(String, _)> = policies
            .into_iter()
            .map(|p| {
                let agg = run_trials(&config, &source, &p, trials, 808);
                (p.label(), agg)
            })
            .collect();
        println!("\n=== dedicated throwboxes, power α = {alpha} ===");
        for (label, agg) in &suite {
            println!("{label:<6} U = {:>10.4}/min", agg.mean_rate);
        }
        let losses = normalized_losses(&suite);
        for (label, loss) in &losses {
            println!("  loss vs OPT  {label:<6} {loss:>8.2}%");
        }
        if header.is_empty() {
            header = loss_header("alpha", &losses);
        }
        rows.push(loss_row(alpha, &losses));
    }
    write_csv(&opts.out_dir, "ext_dedicated_power_loss", &header, &rows);
    println!("\nDedicated-population sweep written.");
}
