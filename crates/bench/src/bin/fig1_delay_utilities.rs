//! Fig. 1 reproduction: the delay-utility curves `h(t)` for the three
//! motivating examples —
//!
//! (a) advertising revenue: step (τ=1) and exponential (ν ∈ {0.1, 1});
//! (b) time-critical information: inverse power (α ∈ {2⁻, 1.5, 1⁺});
//! (c) waiting cost: negative power (α ∈ {0.5, 0, −1}).
//!
//! Emits one CSV per panel with `t` in [0, 5] as in the paper's plots.

use impatience_bench::{write_csv, RunOptions};
use impatience_core::utility::{DelayUtility, Exponential, NegLog, Power, Step};

fn series(utilities: &[(&str, Box<dyn DelayUtility>)]) -> (String, Vec<String>) {
    let mut header = "t".to_string();
    for (name, _) in utilities {
        header.push(',');
        header.push_str(name);
    }
    let mut rows = Vec::new();
    for k in 1..=100 {
        let t = 0.05 * k as f64;
        let mut row = format!("{t}");
        for (_, u) in utilities {
            row.push_str(&format!(",{}", u.h(t)));
        }
        rows.push(row);
    }
    (header, rows)
}

fn main() {
    let opts = RunOptions::from_args();

    // Panel (a): advertising revenue.
    let a: Vec<(&str, Box<dyn DelayUtility>)> = vec![
        ("step_tau1", Box::new(Step::new(1.0))),
        ("exp_nu0.1", Box::new(Exponential::new(0.1))),
        ("exp_nu1", Box::new(Exponential::new(1.0))),
    ];
    let (h, rows) = series(&a);
    write_csv(&opts.out_dir, "fig1a_advertising", &h, &rows);

    // Panel (b): time-critical information (1 < α < 2; the paper labels
    // the limiting α = 2 and α = 1 curves, realized here at 1.95/1.05).
    let b: Vec<(&str, Box<dyn DelayUtility>)> = vec![
        ("power_a1.95", Box::new(Power::new(1.95))),
        ("power_a1.5", Box::new(Power::new(1.5))),
        ("power_a1.05", Box::new(Power::new(1.05))),
        ("neglog", Box::new(NegLog::new())),
    ];
    let (h, rows) = series(&b);
    write_csv(&opts.out_dir, "fig1b_time_critical", &h, &rows);

    // Panel (c): waiting cost.
    let c: Vec<(&str, Box<dyn DelayUtility>)> = vec![
        ("power_a0.5", Box::new(Power::new(0.5))),
        ("power_a0", Box::new(Power::new(0.0))),
        ("power_a-1", Box::new(Power::new(-1.0))),
    ];
    let (h, rows) = series(&c);
    write_csv(&opts.out_dir, "fig1c_waiting_cost", &h, &rows);

    // Shape checks mirroring the figure: all curves decrease; the
    // time-critical family blows up near 0; the cost family is ≤ 0.
    for (name, u) in a.iter().chain(b.iter()).chain(c.iter()) {
        assert!(u.h(0.5) >= u.h(4.5), "{name} is not non-increasing");
    }
    assert!(Power::new(1.5).h(0.01) > 10.0);
    assert!(Power::new(0.0).h(3.0) < 0.0);
    println!("Fig. 1 series written.");
}
