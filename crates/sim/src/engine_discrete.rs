//! The discrete-time contact model (§3.4): "the system evolves in a
//! synchronous manner, in a sequence of time slots with duration δ. For
//! each time slot, we assume node contacts occur independently with
//! probability μ·δ."
//!
//! The paper's own simulator was discrete-time; this engine provides the
//! same semantics so that the discrete→continuous convergence claimed in
//! §3.4 can be validated *end to end* (not only at the welfare formulas —
//! see `welfare::social_welfare_homogeneous_discrete` for that level).
//!
//! Only the homogeneous pure-P2P population is supported (the setting of
//! the paper's analysis); trace replay and dedicated populations use the
//! event-driven [`crate::engine`].

use impatience_core::rng::{AliasTable, Xoshiro256};
use impatience_core::types::SystemModel;
use impatience_obs::{Recorder, Sink};
use impatience_traces::SlotContactStream;

use crate::config::SimConfig;

/// RNG stream id forking slot-contact randomness off the trial seed
/// (mirrors the continuous engine's contact-stream fork).
const SLOT_STREAM_ID: u64 = 0xD15C_2E7E_5107_0001;
use crate::engine::{TrialOutcome, TrialScratch};
use crate::metrics::Metrics;
use crate::policy::{Fulfillment, PolicyKind};

/// Parameters of a slotted homogeneous run.
#[derive(Clone, Copy, Debug)]
pub struct DiscreteSource {
    /// Number of (pure-P2P) nodes.
    pub nodes: usize,
    /// Pairwise contact rate μ (per unit time).
    pub mu: f64,
    /// Slot duration δ; each pair meets per slot with probability μ·δ.
    pub delta: f64,
    /// Number of slots to simulate.
    pub slots: u64,
}

impl DiscreteSource {
    /// Total simulated time `slots·δ`.
    pub fn duration(&self) -> f64 {
        self.slots as f64 * self.delta
    }

    /// The lazy slot-contact stream for one trial: each pair meets in
    /// each slot independently with probability `μ·δ`, sampled in
    /// O(contacts) by geometric skipping. Runs on its own generator
    /// forked from `rng`, so the trial's demand randomness is untouched
    /// by how many contacts occur.
    ///
    /// # Panics
    /// Panics unless `μ·δ < 1`.
    pub fn stream(&self, rng: &mut Xoshiro256) -> SlotContactStream {
        SlotContactStream::new(
            self.nodes,
            self.mu * self.delta,
            self.slots,
            rng.split(SLOT_STREAM_ID),
        )
    }
}

/// Run one slotted trial. Waits are multiples of δ; gains are `h(k·δ)`
/// for a request fulfilled `k ≥ 1` slots after creation (within-slot
/// fulfillment earns `h(δ)`, matching the discrete welfare convention of
/// Eq. 2/4 where the leading term is `h(δ)`).
///
/// # Panics
/// Panics unless `μ·δ < 1` (it must be a probability) and the config is
/// valid for a pure-P2P population of `source.nodes` nodes.
pub fn run_trial_discrete(
    config: &SimConfig,
    source: &DiscreteSource,
    policy: PolicyKind,
    seed: u64,
) -> TrialOutcome {
    run_trial_discrete_observed(config, source, policy, seed, &mut Recorder::disabled())
}

/// [`run_trial_discrete`] with instrumentation, mirroring
/// [`crate::engine::run_trial_observed`]: the same hooks, statically
/// compiled away when `rec` carries a `NoopSink`.
pub fn run_trial_discrete_observed<S: Sink>(
    config: &SimConfig,
    source: &DiscreteSource,
    policy: PolicyKind,
    seed: u64,
    rec: &mut Recorder<S>,
) -> TrialOutcome {
    run_trial_discrete_observed_scratch(config, source, policy, seed, rec, &mut TrialScratch::new())
}

/// [`run_trial_discrete_observed`] reusing caller-owned working storage
/// (see [`crate::engine::run_trial_observed_scratch`]).
pub fn run_trial_discrete_observed_scratch<S: Sink>(
    config: &SimConfig,
    source: &DiscreteSource,
    policy: PolicyKind,
    seed: u64,
    rec: &mut Recorder<S>,
    scratch: &mut TrialScratch,
) -> TrialOutcome {
    // Same span vocabulary as the continuous engine (root "trial" with
    // request/contact/exchange/policy children), so phase trees from
    // either engine line up in `trace diff`.
    let _trial_span = impatience_obs::span!("trial");
    let wall_start = rec.is_active().then(std::time::Instant::now);
    rec.trial_start();
    let mut open_requests: u64 = 0;
    assert!(
        source.delta > 0.0 && source.mu * source.delta < 1.0,
        "need μδ < 1 (got {})",
        source.mu * source.delta
    );
    assert!(
        config.dedicated_servers.is_none() && config.demand_shifts.is_empty(),
        "the discrete engine models the paper's plain homogeneous pure-P2P setting"
    );
    let nodes = source.nodes;
    let config = config.for_nodes(nodes);
    config.validate(nodes);
    let duration = source.duration();

    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut contacts = source.stream(&mut rng);
    let TrialScratch {
        state,
        slot_requests: requests,
        fulfilled,
        waits,
        gains,
        ..
    } = scratch;
    state.reset(nodes, nodes, config.items, config.rho);
    state.set_eviction(config.eviction);
    let protocol_utility = config
        .protocol_utility
        .clone()
        .unwrap_or_else(|| config.utility.clone());
    let mut policy_obj = policy.instantiate(
        protocol_utility,
        nodes,
        nodes,
        source.mu,
        config.items,
        config.rho,
        &config.demand,
    );
    policy_obj.initialize(state, &mut rng);

    // Fault injection (see the continuous engine): independent RNG
    // streams, so an inactive model cannot perturb the trajectory.
    if let Some(f) = &config.faults {
        assert!(
            !f.panic_on_seeds.contains(&seed),
            "fault injection: chaos panic for trial seed {seed}"
        );
    }
    let mut faults = config
        .faults
        .as_ref()
        .filter(|f| f.is_active())
        .map(|f| crate::faults::FaultState::new(f, nodes, nodes, duration, seed));

    let mut metrics = Metrics::new(duration, config.bin);
    let total_rate = config.demand.total();
    let item_sampler = (total_rate > 0.0).then(|| AliasTable::new(config.demand.rates()));
    let snapshot_system = SystemModel::pure_p2p(nodes, config.rho, source.mu);
    let snapshot_every = (config.bin / source.delta).max(1.0) as u64;

    requests.reset(nodes);
    fulfilled.clear();

    for slot in 0..source.slots {
        let now = slot as f64 * source.delta;
        if let Some(fs) = faults.as_mut() {
            fs.apply_cache_faults(now, state, &mut metrics, rec);
        }
        if slot % snapshot_every == 0 {
            let _s = impatience_obs::span!("snapshot");
            metrics.record_snapshot(
                now,
                &state.replicas,
                &snapshot_system,
                &config.demand,
                config.utility.as_ref(),
            );
        }

        // --- arrivals this slot (Poisson with mean total_rate·δ) ---
        if let Some(sampler) = &item_sampler {
            let _s = impatience_obs::span!("request");
            let arrivals = rng.poisson(total_rate * source.delta);
            for _ in 0..arrivals {
                let item = sampler.sample(&mut rng) as u32;
                let node = config.profile.sample_origin(item as usize, &mut rng);
                metrics.requests_created += 1;
                rec.request(now, node as u32, item);
                if state.caches.holds(node, item) {
                    metrics.immediate_hits += 1;
                    metrics.record_fulfillment(now, config.utility.h_zero());
                    rec.immediate_hit(now, node as u32, item);
                } else {
                    requests.push(node, item, slot);
                    if rec.is_active() {
                        open_requests += 1;
                        rec.open_requests(open_requests);
                    }
                }
            }
        }

        // --- synchronous contacts: each pair independently w.p. μδ,
        //     drawn lazily from the slot stream in pair order ---
        while contacts.peek_slot() == Some(slot) {
            let _s = impatience_obs::span!("contact");
            let c = contacts.next().expect("peeked above");
            if let Some(fs) = faults.as_mut() {
                if !fs.admit_contact(now, c.a, c.b, &mut metrics, rec) {
                    continue;
                }
            }
            let (a, b) = (c.a as usize, c.b as usize);
            rec.contact(now, c.a, c.b);
            fulfilled.clear();
            let exchange_span = impatience_obs::span!("exchange");
            for (n, m) in [(a, b), (b, a)] {
                let cache_m = state.caches.node(m);
                requests.retain(n, |item, created_slot, queries| {
                    if cache_m.holds(item) {
                        // Waited at least one slot by convention.
                        let k = (slot - created_slot).max(1);
                        fulfilled.push(Fulfillment {
                            node: n,
                            item,
                            queries: *queries + 1,
                            wait: k as f64 * source.delta,
                        });
                        false
                    } else {
                        *queries += 1;
                        true
                    }
                });
            }
            for f in fulfilled.iter() {
                let server = if f.node == a { b } else { a };
                state.caches.node_mut(server).touch(f.item);
            }
            // Batched gain evaluation (waits are k·δ ≥ δ > 0, so the
            // batch's `w > 0` branch always takes the `h(w)` arm —
            // identical to the scalar `h(f.wait)` call).
            waits.clear();
            waits.extend(fulfilled.iter().map(|f| f.wait));
            gains.clear();
            config.utility.h_batch(waits, gains);
            for &gain in gains.iter() {
                metrics.record_fulfillment(now, gain);
            }
            if rec.is_active() {
                for f in fulfilled.iter() {
                    rec.fulfillment(now, f.node as u32, f.item, f.wait, f.queries as u32);
                }
                open_requests -= fulfilled.len() as u64;
            }
            exchange_span.close();
            let _policy_span = impatience_obs::span!("policy");
            let transmissions_before = state.transmissions;
            policy_obj.after_contact(now, a, b, state, fulfilled, &mut metrics, &mut rng);
            rec.replications(now, state.transmissions - transmissions_before);
        }
    }

    let _settle_span = impatience_obs::span!("settle");
    metrics.unfulfilled = requests.len();
    let h_inf = config.utility.h_infinity();
    for (node, item, created_slot) in requests.iter() {
        let age = ((source.slots - created_slot) as f64 * source.delta).max(f64::MIN_POSITIVE);
        let gain = if h_inf.is_finite() {
            h_inf
        } else {
            config.utility.h(age)
        };
        metrics.record_settlement(duration, gain);
        rec.unfulfilled(duration, node as u32, item, age);
    }
    metrics.transmissions = state.transmissions;
    if let Some(start) = wall_start {
        rec.trial_done(seed, start.elapsed().as_secs_f64());
    }
    TrialOutcome {
        metrics,
        final_replicas: state.replicas.clone(),
        label: policy.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::prelude::greedy_homogeneous;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(1.0))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .warmup_fraction(0.3)
            .build()
    }

    #[test]
    fn deterministic_and_conserves_budget() {
        let config = config(10, 2);
        let source = DiscreteSource {
            nodes: 10,
            mu: 0.05,
            delta: 0.5,
            slots: 2_000,
        };
        let a = run_trial_discrete(&config, &source, PolicyKind::qcr_default(), 4);
        let b = run_trial_discrete(&config, &source, PolicyKind::qcr_default(), 4);
        assert_eq!(a.final_replicas, b.final_replicas);
        let total: u32 = a.final_replicas.iter().sum();
        assert_eq!(total, 20);
        assert!(a.metrics.fulfillments() > 0);
    }

    #[test]
    fn discrete_approaches_continuous_as_delta_shrinks() {
        // §3.4's convergence claim, end to end: the slotted simulation of
        // a pinned OPT allocation approaches the event-driven one.
        let items = 20;
        let nodes = 20;
        let rho = 3;
        let mu = 0.05;
        let config = config(items, rho);
        let system = SystemModel::pure_p2p(nodes, rho, mu);
        let opt = greedy_homogeneous(&system, &config.demand, &Step::new(10.0));
        let policy = PolicyKind::Static {
            label: "OPT",
            counts: opt,
        };

        let duration = 4_000.0;
        let continuous = {
            let source = crate::config::ContactSource::homogeneous(nodes, mu, duration);
            let mut acc = 0.0;
            for seed in 0..4 {
                acc += crate::engine::run_trial(&config, &source, policy.clone(), seed)
                    .metrics
                    .average_observed_rate(0.3);
            }
            acc / 4.0
        };
        let discrete_at = |delta: f64| {
            let source = DiscreteSource {
                nodes,
                mu,
                delta,
                slots: (duration / delta) as u64,
            };
            let mut acc = 0.0;
            for seed in 0..4 {
                acc += run_trial_discrete(&config, &source, policy.clone(), seed)
                    .metrics
                    .average_observed_rate(0.3);
            }
            acc / 4.0
        };
        let coarse = discrete_at(4.0);
        let fine = discrete_at(0.25);
        assert!(
            (fine - continuous).abs() < (coarse - continuous).abs() + 0.02,
            "δ=0.25 ({fine}) should be no farther from continuous ({continuous}) than δ=4 ({coarse})"
        );
        assert!(
            (fine - continuous).abs() < 0.05 * continuous.abs(),
            "fine-δ discrete ({fine}) vs continuous ({continuous})"
        );
    }

    #[test]
    fn qcr_converges_in_discrete_time_too() {
        let config = config(20, 3);
        let source = DiscreteSource {
            nodes: 20,
            mu: 0.05,
            delta: 1.0,
            slots: 4_000,
        };
        let qcr = run_trial_discrete(&config, &source, PolicyKind::qcr_default(), 9);
        // Popular items hold more replicas than the tail at steady state.
        let head: u32 = qcr.final_replicas[..3].iter().sum();
        let tail: u32 = qcr.final_replicas[17..].iter().sum();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn observed_discrete_trial_matches_plain_run() {
        use impatience_obs::{Recorder, TallySink};

        let config = config(10, 2);
        let source = DiscreteSource {
            nodes: 10,
            mu: 0.05,
            delta: 0.5,
            slots: 2_000,
        };
        let plain = run_trial_discrete(&config, &source, PolicyKind::qcr_default(), 4);
        let mut rec = Recorder::new(TallySink);
        let observed =
            run_trial_discrete_observed(&config, &source, PolicyKind::qcr_default(), 4, &mut rec);
        assert_eq!(plain.final_replicas, observed.final_replicas);
        assert_eq!(
            plain.metrics.fulfillments(),
            observed.metrics.fulfillments()
        );
        assert_eq!(
            rec.counters.get("requests"),
            observed.metrics.requests_created
        );
        assert_eq!(
            rec.counters.get("transmissions"),
            observed.metrics.transmissions
        );
        assert_eq!(
            rec.counters.get("unfulfilled"),
            observed.metrics.unfulfilled
        );
        assert_eq!(rec.delay.count(), rec.counters.get("fulfillments"));
    }

    #[test]
    fn engine_contacts_equal_independent_stream_on_same_seed() {
        // Stream/engine equivalence: the contacts the engine processes
        // are exactly what the seed's forked slot stream yields —
        // deriving the stream independently reproduces them bit-for-bit.
        use impatience_obs::{Event, MemorySink, Recorder};

        let config = config(10, 2);
        let source = DiscreteSource {
            nodes: 10,
            mu: 0.05,
            delta: 0.5,
            slots: 2_000,
        };
        let seed = 4;
        let mut rec = Recorder::new(MemorySink::new());
        let _ = run_trial_discrete_observed(
            &config,
            &source,
            PolicyKind::qcr_default(),
            seed,
            &mut rec,
        );
        let engine_contacts: Vec<(u32, u32, f64)> = rec
            .sink()
            .events
            .iter()
            .filter_map(|e| match *e {
                Event::Contact { t, a, b } => Some((a, b, t)),
                _ => None,
            })
            .collect();

        let mut rng = Xoshiro256::seed_from_u64(seed);
        let expected: Vec<(u32, u32, f64)> = source
            .stream(&mut rng)
            .map(|c| (c.a, c.b, c.slot as f64 * source.delta))
            .collect();
        assert!(!expected.is_empty());
        assert_eq!(engine_contacts, expected);
    }

    #[test]
    #[should_panic(expected = "μδ < 1")]
    fn rejects_nonprobability_slot() {
        let config = config(5, 2);
        let source = DiscreteSource {
            nodes: 5,
            mu: 0.5,
            delta: 3.0,
            slots: 10,
        };
        let _ = run_trial_discrete(&config, &source, PolicyKind::qcr_default(), 0);
    }
}
