//! Intra-trial sharded engine: one trial spread over worker threads.
//!
//! The serial engine ([`crate::engine`]) processes one global event
//! sequence; at a million nodes and ~10⁹ contacts that single sequence
//! *is* the wall-clock bill. This module shards the population into
//! [`LOGICAL_SHARDS`] contiguous node blocks and splits each trial into
//! fixed-width **epochs** — each metrics bin subdivided so one epoch
//! spans roughly one per-node inter-meeting time `1/(μ(n−1))`, the
//! fastest timescale a pending request can resolve on. Within an epoch:
//!
//! 1. **boundary (serial)** — at bin starts the welfare snapshot is
//!    recorded on the summed per-shard replica counts; at every epoch
//!    boundary the cache-slot faults due by it fire, in schedule order,
//!    from one RNG;
//! 2. **phase A (parallel)** — each shard independently processes its
//!    *intra-shard* contacts and its request arrivals, merged in time
//!    order, exactly like the serial event loop restricted to the block;
//! 3. **phase B (parallel)** — the 120 *cross-shard* pair lanes run in 15
//!    tournament rounds of 8 disjoint shard pairs (the circle method), so
//!    every lane gets exclusive `&mut` access to its two shard states.
//!
//! ## Determinism at any worker count
//!
//! The unit of scheduling is the **task** (a shard in phase A, a shard
//! pair in phase B), and every task owns its entire random state: a
//! contact-lane RNG, a request RNG, and a policy RNG, each forked from
//! the trial master with a fixed stream id in a fixed order at startup.
//! Worker threads only decide *when* a task runs, never *what* it
//! computes — tasks share no mutable state and the barriers between
//! phases are total. Metrics fragments are merged and fault logs
//! concatenated in fixed (shard, then lane) order after the last epoch,
//! so every output bit — welfare series, fault log, event digest — is a
//! pure function of `(config, source, policy, seed)`, independent of
//! `workers`. `tests::worker_counts_are_bit_identical` and the CI shard
//! gate enforce exactly that, fault injection included.
//!
//! The sharded trajectory is a *different* (equally valid) realization of
//! the same stochastic model than the serial engine's: contacts are
//! sampled per lane instead of globally (the superposition of the 136
//! independent lane Poisson processes is the global process), requests
//! per shard, and cross-shard meetings within an epoch observe the state
//! left by phase A of that epoch. Statistics agree; bits do not, and are
//! not required to — the bit-identity discipline of
//! `tests/fault_tolerance.rs` applies *across worker counts*, not across
//! engines.
//!
//! ## Memory at scale
//!
//! Per-lane contacts are sampled **streaming** — each lane keeps one
//! lookahead event plus a [`crate::contact_bin`]-encoded batch buffer of
//! at most [`DEFAULT_BATCH`] fixed-width records, so trace memory is
//! O(lanes), not O(contacts). Node state is the flat SoA
//! [`CacheArena`]/[`RequestArena`] split into per-shard blocks
//! (`split_into_blocks` moves, never copies, slot storage).
//!
//! ## Supported configurations
//!
//! Pure-P2P populations on homogeneous Poisson contact sources, with QCR
//! / Passive / Static policies, uniform demand profiles, and fault
//! injection minus churn. Everything else is rejected up front with
//! [`ConfigError::UnsupportedSharded`]; notably the validator never
//! materializes a population-sized demand profile (at 10⁶ nodes a
//! uniform profile matrix would dwarf the node state itself).

use std::collections::BTreeMap;
use std::sync::Arc;

use impatience_core::rng::{AliasTable, Xoshiro256};
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_traces::{pair_from_index, ContactEvent};

use crate::config::{ConfigError, ContactSource, SimConfig};
use crate::contact_bin::{decode_record_unchecked, encode_record, DEFAULT_BATCH, RECORD_BYTES};
use crate::engine::TrialOutcome;
use crate::faults::ContactDrop;
use crate::metrics::Metrics;
use crate::policy::{Fulfillment, PolicyKind, QcrConfig, Reaction};
use crate::state::{CacheArena, RequestArena, SimState};

/// Number of logical shards, fixed regardless of worker count: tasks are
/// defined per logical shard, workers merely schedule them, which is what
/// makes `--shards 1/2/8` bit-identical by construction.
pub const LOGICAL_SHARDS: usize = 16;

/// Cross-shard lanes: one per unordered shard pair.
const CROSS_LANES: usize = LOGICAL_SHARDS * (LOGICAL_SHARDS - 1) / 2;

// Stream ids for forking per-task RNGs off the trial master (contact /
// request / policy) and off the fault base (drop chains, cache clock).
// The split *order* at startup is fixed; ids only need to be distinct.
const LANE_CONTACT_STREAM: u64 = 0x5AAD_0C01_7AC7_0000;
const SHARD_REQUEST_STREAM: u64 = 0x5AAD_0E02_12E9_0000;
const SHARD_POLICY_STREAM: u64 = 0x5AAD_0203_90C1_0000;
const LANE_POLICY_STREAM: u64 = 0x5AAD_0204_C205_0000;
const LANE_DROP_STREAM: u64 = 0x5AAD_FA17_0002_0000;
const CACHE_FAULT_STREAM: u64 = 0x5AAD_FA17_0003_0000;

/// One injected fault, in the order the owning task observed it — the
/// sharded analogue of the recorder's fault events, kept as a plain
/// vector so the CI bit-identity gate can compare whole logs across
/// worker counts.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRecord {
    /// Event time (minutes).
    pub time: f64,
    /// Fault kind (`"contact_drop"`, `"cache_fault"`, `"trace_truncated"`).
    pub kind: &'static str,
    /// Primary node involved.
    pub node: u32,
    /// Second node (drops) or lost item (cache faults).
    pub aux: u32,
}

/// Result of one sharded trial: the usual [`TrialOutcome`] plus the
/// artifacts the worker-count bit-identity gate compares.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// Metrics, final replicas and label, exactly as the serial engine
    /// reports them.
    pub outcome: TrialOutcome,
    /// Every injected fault, concatenated in fixed (boundary, shard,
    /// lane) order.
    pub fault_log: Vec<FaultRecord>,
    /// FNV-1a digest over every processed meeting (time, pair,
    /// fulfillment count) and per-shard transmission totals, folded in
    /// fixed task order — a compact stand-in for "the full event trace is
    /// identical".
    pub event_digest: u64,
    /// Contacts processed (admitted) across all lanes.
    pub contacts_processed: u64,
}

/// Check that `(config, source, policy)` is inside the sharded engine's
/// supported subset (see the module docs), without materializing any
/// population-sized state.
pub fn validate_sharded(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
) -> Result<(), ConfigError> {
    let unsupported = |feature: &'static str| Err(ConfigError::UnsupportedSharded { feature });
    source.try_validate()?;
    if !matches!(source, ContactSource::Homogeneous { .. }) {
        return unsupported("trace contact sources (only homogeneous Poisson)");
    }
    if matches!(policy, PolicyKind::HillClimb { .. }) {
        return unsupported("the hill-climbing baseline");
    }
    if config.dedicated_servers.is_some() {
        return unsupported("dedicated populations");
    }
    if !config.demand_shifts.is_empty() {
        return unsupported("demand shifts");
    }
    if config.items == 0 {
        return Err(ConfigError::ZeroItems);
    }
    if config.demand.items() != config.items {
        return Err(ConfigError::CatalogMismatch {
            what: "demand",
            expected: config.items,
            found: config.demand.items(),
        });
    }
    // Origins are sampled uniformly per shard; a non-uniform profile has
    // no per-shard factorization. The comparison below touches only the
    // *configured* profile's width — never `nodes` — so validating a
    // million-node run stays O(existing profile size).
    let uniform = impatience_core::demand::DemandProfile::uniform(
        config.items.max(1),
        config.profile.nodes().max(1),
    );
    if config.profile != uniform {
        return unsupported("non-uniform demand profiles");
    }
    if config.utility.requires_dedicated() {
        return Err(ConfigError::RequiresDedicated {
            utility: config.utility.kind().to_string(),
        });
    }
    if config.bin <= 0.0 || config.bin.is_nan() {
        return Err(ConfigError::InvalidBin { bin: config.bin });
    }
    if !(0.0..0.9).contains(&config.warmup_fraction) {
        return Err(ConfigError::InvalidWarmup {
            fraction: config.warmup_fraction,
        });
    }
    if config.rho.checked_mul(source.nodes()).is_none() {
        return Err(ConfigError::CacheOverflow {
            rho: config.rho,
            servers: source.nodes(),
        });
    }
    if let Some(faults) = &config.faults {
        faults.validate()?;
        if faults.churn.is_some() {
            // Churn gates contacts on a *global* per-node up/down state;
            // a lane cannot know toggles scheduled by other lanes'
            // events without a cross-shard barrier per contact.
            return unsupported("server churn (drop/cache/truncation faults are supported)");
        }
    }
    Ok(())
}

/// The `(start, len)` node block of each logical shard: contiguous,
/// sizes differing by at most one (empty blocks when `nodes <
/// LOGICAL_SHARDS`).
fn shard_blocks(nodes: usize) -> Vec<(usize, usize)> {
    let base = nodes / LOGICAL_SHARDS;
    let extra = nodes % LOGICAL_SHARDS;
    let mut blocks = Vec::with_capacity(LOGICAL_SHARDS);
    let mut start = 0;
    for s in 0..LOGICAL_SHARDS {
        let len = base + usize::from(s < extra);
        blocks.push((start, len));
        start += len;
    }
    blocks
}

/// Index of the cross lane for shard pair `s < t` in lexicographic
/// order.
fn cross_index(s: usize, t: usize) -> usize {
    debug_assert!(s < t && t < LOGICAL_SHARDS);
    s * (2 * LOGICAL_SHARDS - s - 1) / 2 + (t - s - 1)
}

/// The 8 disjoint shard pairs of tournament round `round` (0..15),
/// each normalized to `s < t` — the circle method: shard 15 sits still,
/// the rest rotate, so across the 15 rounds every unordered pair occurs
/// exactly once (`tests::tournament_covers_every_pair_once`).
fn round_pairs(round: usize) -> [(usize, usize); LOGICAL_SHARDS / 2] {
    let m = LOGICAL_SHARDS - 1; // 15 rotating shards
    let mut pairs = [(0usize, 0usize); LOGICAL_SHARDS / 2];
    pairs[0] = (round % m, m);
    for (k, slot) in pairs.iter_mut().enumerate().skip(1) {
        let x = (round + k) % m;
        let y = (round + m - k) % m;
        *slot = (x.min(y), x.max(y));
    }
    pairs
}

/// Which node pairs one contact lane covers.
#[derive(Clone, Copy)]
enum LaneKind {
    /// All pairs within one block.
    Intra { start: usize, n: usize },
    /// All pairs between two blocks (`start_a` block precedes
    /// `start_b`'s, so sampled pairs are already normalized `a < b`).
    Cross {
        start_a: usize,
        n_a: usize,
        start_b: usize,
        n_b: usize,
    },
}

/// A streaming contact sampler for one lane, batched through the compact
/// binary record format, with the lane's share of the fault model (the
/// Gilbert drop chain and trace truncation act per lane; cache faults
/// are global and live at the epoch boundary).
struct LaneContacts {
    rng: Xoshiro256,
    kind: LaneKind,
    /// Total Poisson rate of the lane (μ × pair count).
    rate: f64,
    duration: f64,
    t: f64,
    lookahead: Option<ContactEvent>,
    done: bool,
    /// Encoded batch of upcoming events (≤ [`DEFAULT_BATCH`] records),
    /// reused across refills — the lane's whole trace memory.
    buf: Vec<u8>,
    pos: usize,
    // Fault model.
    drop: Option<ContactDrop>,
    in_burst: bool,
    drop_rng: Xoshiro256,
    truncate_at: f64,
    truncation_reported: bool,
}

impl LaneContacts {
    fn new(
        kind: LaneKind,
        mu: f64,
        duration: f64,
        rng: Xoshiro256,
        drop: Option<ContactDrop>,
        mut drop_rng: Xoshiro256,
        truncate_at: f64,
    ) -> Self {
        let pairs = match kind {
            LaneKind::Intra { n, .. } => n * n.saturating_sub(1) / 2,
            LaneKind::Cross { n_a, n_b, .. } => n_a * n_b,
        };
        // Warm the Gilbert chain exactly like the serial FaultState: the
        // first decision is already stationary.
        let in_burst = match drop {
            Some(d) => drop_rng.bernoulli(d.p),
            None => false,
        };
        let mut lane = LaneContacts {
            rng,
            kind,
            rate: mu * pairs as f64,
            duration,
            t: 0.0,
            lookahead: None,
            done: false,
            buf: Vec::new(),
            pos: 0,
            drop,
            in_burst,
            drop_rng,
            truncate_at,
            truncation_reported: false,
        };
        if lane.rate <= 0.0 {
            lane.done = true;
        } else {
            lane.advance();
        }
        lane
    }

    /// Sample the next event into `lookahead` (or mark the lane done).
    fn advance(&mut self) {
        if self.done {
            self.lookahead = None;
            return;
        }
        self.t += self.rng.exp(self.rate);
        if !self.t.is_finite() || self.t > self.duration {
            self.done = true;
            self.lookahead = None;
            return;
        }
        let (a, b) = match self.kind {
            LaneKind::Intra { start, n } => {
                let pairs = (n * (n - 1) / 2) as u64;
                let (la, lb) = pair_from_index(n, self.rng.below(pairs));
                (start as u32 + la, start as u32 + lb)
            }
            LaneKind::Cross {
                start_a,
                n_a,
                start_b,
                n_b,
            } => (
                (start_a + self.rng.index(n_a)) as u32,
                (start_b + self.rng.index(n_b)) as u32,
            ),
        };
        self.lookahead = Some(ContactEvent { time: self.t, a, b });
    }

    /// Refill the batch buffer with events strictly before `limit`.
    fn refill(&mut self, limit: f64) {
        self.buf.clear();
        self.pos = 0;
        while self.buf.len() < DEFAULT_BATCH * RECORD_BYTES {
            match self.lookahead {
                Some(e) if e.time < limit => {
                    encode_record(&e, &mut self.buf);
                    self.advance();
                }
                _ => break,
            }
        }
    }

    /// Next buffered event before `limit` without consuming it.
    fn peek_before(&mut self, limit: f64) -> Option<ContactEvent> {
        if self.pos == self.buf.len() {
            self.refill(limit);
            if self.buf.is_empty() {
                return None;
            }
        }
        Some(decode_record_unchecked(
            &self.buf[self.pos..self.pos + RECORD_BYTES],
        ))
    }

    /// Consume the next event before `limit`.
    fn next_before(&mut self, limit: f64) -> Option<ContactEvent> {
        let e = self.peek_before(limit)?;
        self.pos += RECORD_BYTES;
        Some(e)
    }

    /// Number of currently buffered events before `limit` (refilling if
    /// empty) — a cheap work estimate, saturating at one batch.
    fn buffered(&mut self, limit: f64) -> u64 {
        if self.peek_before(limit).is_none() {
            return 0;
        }
        ((self.buf.len() - self.pos) / RECORD_BYTES) as u64
    }

    /// Fault admission for a sampled contact: truncation first, then one
    /// Gilbert transition per surviving contact — the serial
    /// `FaultState::admit_contact` restricted to this lane's chain.
    fn admit(&mut self, e: &ContactEvent, ctx: &mut TaskCtx) -> bool {
        if e.time > self.truncate_at {
            if !self.truncation_reported {
                self.truncation_reported = true;
                ctx.faults.push(FaultRecord {
                    time: self.truncate_at,
                    kind: "trace_truncated",
                    node: 0,
                    aux: 0,
                });
            }
            ctx.metrics.contacts_dropped += 1;
            return false;
        }
        if let Some(drop) = self.drop {
            if self.in_burst {
                if self.drop_rng.bernoulli(1.0 / drop.mean_burst) {
                    self.in_burst = false;
                }
            } else {
                let enter = drop.p / (drop.mean_burst * (1.0 - drop.p));
                if self.drop_rng.bernoulli(enter) {
                    self.in_burst = true;
                }
            }
            if self.in_burst {
                ctx.metrics.contacts_dropped += 1;
                ctx.faults.push(FaultRecord {
                    time: e.time,
                    kind: "contact_drop",
                    node: e.a,
                    aux: e.b,
                });
                return false;
            }
        }
        true
    }
}

/// One shard's node-owned state: the block's caches, pending requests,
/// per-item replica counts *within the block*, and QCR mandate pools
/// (locally indexed).
struct ShardState {
    start: usize,
    len: usize,
    caches: CacheArena,
    replicas: Vec<u32>,
    mandates: Vec<BTreeMap<u32, u64>>,
    requests: RequestArena<f64>,
    transmissions: u64,
}

/// Per-task accumulators: everything a task writes that outlives it,
/// merged in fixed order after the trial.
struct TaskCtx {
    rng: Xoshiro256,
    metrics: Metrics,
    fulfilled: Vec<Fulfillment>,
    waits: Vec<f64>,
    gains: Vec<f64>,
    digest: u64,
    contacts: u64,
    faults: Vec<FaultRecord>,
}

impl TaskCtx {
    fn new(rng: Xoshiro256, duration: f64, bin: f64) -> Self {
        TaskCtx {
            rng,
            metrics: Metrics::new(duration, bin),
            fulfilled: Vec::new(),
            waits: Vec::new(),
            gains: Vec::new(),
            digest: FNV_OFFSET,
            contacts: 0,
            faults: Vec::new(),
        }
    }
}

/// A phase-A task: shard state plus its intra lane and request process.
struct Shard {
    state: ShardState,
    ctx: TaskCtx,
    contacts: LaneContacts,
    req_rng: Xoshiro256,
    req_rate: f64,
    next_request: f64,
}

/// A phase-B task: the cross lane of one shard pair (shard states are
/// lent to it for the round).
struct CrossLane {
    contacts: LaneContacts,
    ctx: TaskCtx,
}

/// Immutable per-trial context shared (read-only) by every task.
struct SimEnv {
    utility: Arc<dyn DelayUtility>,
    h_zero: f64,
    item_sampler: Option<AliasTable>,
    sticky_owner: Vec<usize>,
    mode: Mode,
}

enum Mode {
    Qcr(QcrParams),
    Static,
}

/// The shard-local port of [`crate::policy::Qcr`]: same reaction scaling,
/// minting, execution and routing arithmetic, but mandate pools live on
/// the shard states (so phase-A/B tasks own them) and all randomness
/// comes from the owning task's policy RNG.
struct QcrParams {
    routing: bool,
    rewriting: bool,
    gain_scale: f64,
    cap: u64,
    reaction: Reaction,
    scale: f64,
    servers: f64,
    mu_ref: f64,
    utility: Arc<dyn DelayUtility>,
}

impl QcrParams {
    /// Mirror of `Qcr::new`'s normalization (ψ reference scaling and
    /// steepness damping) — kept in lockstep with the serial policy.
    fn new(
        cfg: &QcrConfig,
        utility: Arc<dyn DelayUtility>,
        servers: usize,
        mu_ref: f64,
        items: usize,
        rho: usize,
    ) -> Self {
        assert!(cfg.gain_scale > 0.0, "gain scale must be positive");
        let mu_ref = if mu_ref > 0.0 { mu_ref } else { 1.0 };
        let mut scale = cfg.gain_scale;
        if cfg.normalize_reaction {
            if let Reaction::Psi = cfg.reaction {
                let y_ref = (items as f64 / rho.max(1) as f64).max(1.0);
                let psi_ref = utility.psi(y_ref, servers as f64, mu_ref);
                if psi_ref.is_finite() && psi_ref > 0.0 {
                    scale /= psi_ref;
                    let psi_2ref = utility.psi(2.0 * y_ref, servers as f64, mu_ref);
                    let r = psi_2ref / psi_ref;
                    if r.is_finite() && r > 1.0 {
                        scale /= r * r * r;
                    }
                }
            }
        }
        QcrParams {
            routing: cfg.mandate_routing,
            rewriting: cfg.rewriting,
            gain_scale: cfg.gain_scale,
            cap: cfg.mandate_cap,
            reaction: cfg.reaction,
            scale,
            servers: servers as f64,
            mu_ref,
            utility,
        }
    }
}

/// The one or two shard states a meeting touches, with node-id-keyed
/// accessors so the meeting logic is written once for both phases.
enum Ends<'a> {
    One(&'a mut ShardState),
    /// Ordered: `.0`'s block precedes `.1`'s.
    Two(&'a mut ShardState, &'a mut ShardState),
}

impl Ends<'_> {
    fn state_of(&self, node: usize) -> &ShardState {
        match self {
            Ends::One(s) => s,
            Ends::Two(sa, sb) => {
                if node >= sb.start {
                    sb
                } else {
                    sa
                }
            }
        }
    }

    fn state_of_mut(&mut self, node: usize) -> &mut ShardState {
        match self {
            Ends::One(s) => s,
            Ends::Two(sa, sb) => {
                if node >= sb.start {
                    sb
                } else {
                    sa
                }
            }
        }
    }

    fn holds(&self, node: usize, item: u32) -> bool {
        let s = self.state_of(node);
        s.caches.holds(node - s.start, item)
    }

    fn pool(&self, node: usize) -> &BTreeMap<u32, u64> {
        let s = self.state_of(node);
        &s.mandates[node - s.start]
    }

    fn pool_mut(&mut self, node: usize) -> &mut BTreeMap<u32, u64> {
        let s = self.state_of_mut(node);
        let local = node - s.start;
        &mut s.mandates[local]
    }

    /// Copy `item` into `node`'s cache with random replacement, keeping
    /// the owning shard's replica and transmission books — the port of
    /// [`SimState::replicate`].
    fn replicate(&mut self, node: usize, item: u32, rng: &mut Xoshiro256) -> bool {
        let s = self.state_of_mut(node);
        let local = node - s.start;
        match s.caches.node_mut(local).insert_evict(item, rng) {
            Ok(evicted) => {
                s.replicas[item as usize] += 1;
                if let Some(old) = evicted {
                    s.replicas[old as usize] -= 1;
                }
                s.transmissions += 1;
                true
            }
            Err(()) => false,
        }
    }

    /// Both-direction request fulfillment at a meeting, exactly as the
    /// serial exchange: pending requests of each side are walked in
    /// insertion order against the peer's cache; misses increment query
    /// counters. The `created > time` guard skips requests the owning
    /// shard created *later in the epoch* than this cross-shard meeting
    /// — they do not exist yet at the meeting's own time.
    fn exchange(&mut self, time: f64, a: usize, b: usize, fulfilled: &mut Vec<Fulfillment>) {
        for (n, m) in [(a, b), (b, a)] {
            match self {
                Ends::One(s) => {
                    let ShardState {
                        start,
                        caches,
                        requests,
                        ..
                    } = &mut **s;
                    let cache_m = caches.node(m - *start);
                    if cache_m.capacity() == 0 {
                        continue;
                    }
                    requests.retain(n - *start, |item, created, queries| {
                        keep_or_fulfill(cache_m, n, item, created, queries, time, fulfilled)
                    });
                }
                Ends::Two(sa, sb) => {
                    let (sn, sm): (&mut ShardState, &ShardState) =
                        if n >= sb.start { (sb, sa) } else { (sa, sb) };
                    let cache_m = sm.caches.node(m - sm.start);
                    if cache_m.capacity() == 0 {
                        continue;
                    }
                    let start_n = sn.start;
                    sn.requests.retain(n - start_n, |item, created, queries| {
                        keep_or_fulfill(cache_m, n, item, created, queries, time, fulfilled)
                    });
                }
            }
        }
    }

    /// LRU bookkeeping: serving a request counts as a use of the
    /// server's copy.
    fn touch(&mut self, node: usize, item: u32) {
        let s = self.state_of_mut(node);
        let local = node - s.start;
        s.caches.node_mut(local).touch(item);
    }
}

/// The retain body shared by both `Ends` variants.
fn keep_or_fulfill(
    cache_m: crate::state::CacheRef<'_>,
    n: usize,
    item: u32,
    created: f64,
    queries: &mut u64,
    time: f64,
    fulfilled: &mut Vec<Fulfillment>,
) -> bool {
    if created > time {
        return true; // not yet created at this meeting's time
    }
    if cache_m.holds(item) {
        fulfilled.push(Fulfillment {
            node: n,
            item,
            queries: *queries + 1,
            wait: time - created,
        });
        false
    } else {
        *queries += 1;
        true
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn fnv(mut h: u64, x: u64) -> u64 {
    h ^= x;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Process one admitted meeting: exchange, gains, then the policy step.
fn process_meeting(
    time: f64,
    a: usize,
    b: usize,
    ends: &mut Ends<'_>,
    ctx: &mut TaskCtx,
    env: &SimEnv,
) {
    ctx.contacts += 1;
    ctx.fulfilled.clear();
    ends.exchange(time, a, b, &mut ctx.fulfilled);
    for f in ctx.fulfilled.iter() {
        let server = if f.node == a { b } else { a };
        ends.touch(server, f.item);
    }
    // Batched gain evaluation, identical to the serial engine.
    ctx.waits.clear();
    ctx.waits.extend(ctx.fulfilled.iter().map(|f| f.wait));
    ctx.gains.clear();
    env.utility.h_batch(&ctx.waits, &mut ctx.gains);
    for &gain in ctx.gains.iter() {
        ctx.metrics.record_fulfillment(time, gain);
    }
    ctx.digest = fnv(
        fnv(fnv(fnv(ctx.digest, time.to_bits()), a as u64), b as u64),
        ctx.fulfilled.len() as u64,
    );
    if let Mode::Qcr(p) = &env.mode {
        for i in 0..ctx.fulfilled.len() {
            let f = ctx.fulfilled[i];
            mint(p, ends, f.node, f.item, f.queries, ctx);
        }
        execute(p, ends, a, b, ctx);
        execute(p, ends, b, a, ctx);
        if p.routing {
            route(p, ends, a, b, ctx, &env.sticky_owner);
        }
    }
}

/// Port of `Qcr::mint` (reaction, stochastic rounding, caps).
fn mint(
    p: &QcrParams,
    ends: &mut Ends<'_>,
    node: usize,
    item: u32,
    queries: u64,
    ctx: &mut TaskCtx,
) {
    if queries == 0 {
        return;
    }
    let raw = match p.reaction {
        Reaction::Psi => p.utility.psi(queries as f64, p.servers, p.mu_ref) * p.scale,
        Reaction::Constant(k) => k * p.gain_scale,
    };
    if raw.is_nan() || raw <= 0.0 {
        return;
    }
    let mut count = raw.floor() as u64;
    if ctx.rng.bernoulli(raw - count as f64) {
        count += 1;
    }
    if count > p.cap {
        ctx.metrics.mandate_cap_hits += 1;
        count = p.cap;
    }
    if count > 0 {
        let cap = p.cap;
        let pool = ends.pool_mut(node).entry(item).or_insert(0);
        let before = *pool;
        *pool = (*pool + count).min(cap);
        ctx.metrics.mandates_created += *pool - before;
    }
}

/// Port of `Qcr::execute`: the carrier's mandates fire only while it
/// still possesses the item; peers already holding it stall the mandate
/// (or burn it under rewriting).
fn execute(p: &QcrParams, ends: &mut Ends<'_>, carrier: usize, peer: usize, ctx: &mut TaskCtx) {
    let items: Vec<u32> = ends.pool(carrier).keys().copied().collect();
    for item in items {
        if !ends.holds(carrier, item) {
            continue;
        }
        if ends.holds(peer, item) {
            if p.rewriting {
                consume(ends.pool_mut(carrier), item);
            }
            continue;
        }
        if ends.replicate(peer, item, &mut ctx.rng) {
            consume(ends.pool_mut(carrier), item);
        }
    }
}

fn consume(pool: &mut BTreeMap<u32, u64>, item: u32) {
    if let Some(c) = pool.get_mut(&item) {
        *c = c.saturating_sub(1);
        if *c == 0 {
            pool.remove(&item);
        }
    }
}

/// Port of `Qcr::route`: mandates migrate toward replica holders,
/// preferring the sticky seed with a 2/3 share.
fn route(
    p: &QcrParams,
    ends: &mut Ends<'_>,
    a: usize,
    b: usize,
    ctx: &mut TaskCtx,
    sticky_owner: &[usize],
) {
    let mut items: Vec<u32> = ends
        .pool(a)
        .keys()
        .chain(ends.pool(b).keys())
        .copied()
        .collect();
    items.sort_unstable();
    items.dedup();
    for item in items {
        let total = (ends.pool(a).get(&item).copied().unwrap_or(0)
            + ends.pool(b).get(&item).copied().unwrap_or(0))
        .min(p.cap);
        if total == 0 {
            continue;
        }
        let ha = ends.holds(a, item);
        let hb = ends.holds(b, item);
        let sticky = sticky_owner[item as usize];
        let to_a = match (ha, hb) {
            (true, false) => total,
            (false, true) => 0,
            _ => {
                if ha && sticky == a {
                    (total * 2).div_ceil(3)
                } else if hb && sticky == b {
                    total - (total * 2).div_ceil(3)
                } else {
                    let half = total / 2;
                    if total % 2 == 1 && ctx.rng.bernoulli(0.5) {
                        half + 1
                    } else {
                        half
                    }
                }
            }
        };
        set_pool(ends.pool_mut(a), item, to_a);
        set_pool(ends.pool_mut(b), item, total - to_a);
    }
}

fn set_pool(pool: &mut BTreeMap<u32, u64>, item: u32, count: u64) {
    if count == 0 {
        pool.remove(&item);
    } else {
        pool.insert(item, count);
    }
}

/// Phase A for one shard: intra-shard contacts and request arrivals,
/// merged in time order (requests win ties, as in the serial loop),
/// strictly below `limit`.
fn run_phase_a(shard: &mut Shard, env: &SimEnv, limit: f64, duration: f64) {
    let _span = impatience_obs::span!("shard");
    loop {
        let ct = shard
            .contacts
            .peek_before(limit)
            .map_or(f64::INFINITY, |e| e.time);
        let rt = if shard.next_request < limit && shard.next_request <= duration {
            shard.next_request
        } else {
            f64::INFINITY
        };
        if !ct.is_finite() && !rt.is_finite() {
            break;
        }
        if rt <= ct {
            let sampler = env.item_sampler.as_ref().expect("arrivals imply demand");
            let item = sampler.sample(&mut shard.req_rng) as u32;
            let local = shard.req_rng.index(shard.state.len);
            shard.ctx.metrics.requests_created += 1;
            if shard.state.caches.holds(local, item) {
                shard.ctx.metrics.immediate_hits += 1;
                shard.ctx.metrics.record_fulfillment(rt, env.h_zero);
            } else {
                shard.state.requests.push(local, item, rt);
            }
            shard.next_request = rt + shard.req_rng.exp(shard.req_rate);
        } else {
            let e = shard.contacts.next_before(limit).expect("peeked above");
            if !shard.contacts.admit(&e, &mut shard.ctx) {
                continue;
            }
            let (a, b) = (e.a as usize, e.b as usize);
            let mut ends = Ends::One(&mut shard.state);
            process_meeting(e.time, a, b, &mut ends, &mut shard.ctx, env);
        }
    }
}

/// Phase B for one shard pair: drain the cross lane below `limit`.
fn run_phase_b(
    sa: &mut ShardState,
    sb: &mut ShardState,
    lane: &mut CrossLane,
    env: &SimEnv,
    limit: f64,
) {
    let _span = impatience_obs::span!("cross");
    while let Some(e) = lane.contacts.next_before(limit) {
        if !lane.contacts.admit(&e, &mut lane.ctx) {
            continue;
        }
        let (a, b) = (e.a as usize, e.b as usize);
        let mut ends = Ends::Two(sa, sb);
        process_meeting(e.time, a, b, &mut ends, &mut lane.ctx, env);
    }
}

/// Minimum estimated events in a phase before it is worth paying the
/// scoped-thread spawn cost; below it the tasks run inline on the
/// calling thread. Purely a scheduling decision — results are identical
/// either way — but it keeps small populations (whose whole epoch is a
/// handful of events) faster single-threaded than threaded.
const PARALLEL_THRESHOLD: u64 = 4096;

/// Run `f` over every task, spread across at most `workers` scoped
/// threads. Each task is visited exactly once with exclusive `&mut`
/// access and owns all state it touches, so the thread assignment cannot
/// influence any result bit.
fn parallel_for<T: Send, F: Fn(&mut T) + Sync>(tasks: &mut [T], workers: usize, f: &F) {
    if workers <= 1 || tasks.len() <= 1 {
        for t in tasks.iter_mut() {
            f(t);
        }
        return;
    }
    let chunk = tasks.len().div_ceil(workers.min(tasks.len()));
    std::thread::scope(|scope| {
        for slice in tasks.chunks_mut(chunk) {
            scope.spawn(move || {
                for t in slice {
                    f(t);
                }
            });
        }
    });
}

/// The Poisson clock of global cache-slot faults, applied serially at
/// epoch boundaries (a global process cannot be owned by any one task).
struct CacheFaultClock {
    next: f64,
    rate: f64,
    rng: Xoshiro256,
    servers: usize,
}

/// Run one sharded trial. `workers` is the number of OS threads used to
/// execute the fixed per-shard/per-lane task set; any value produces
/// bit-identical output (see the module docs).
///
/// # Errors
/// [`ConfigError`] when the configuration is outside the supported
/// subset ([`validate_sharded`]).
///
/// # Panics
/// Panics for trial seeds listed in `FaultConfig::panic_on_seeds`
/// (the chaos hook), exactly like the serial engine.
pub fn run_trial_sharded(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
    workers: usize,
) -> Result<ShardedOutcome, ConfigError> {
    validate_sharded(config, source, &policy)?;
    let _trial_span = impatience_obs::span!("sharded_trial");
    let (nodes, mu, duration) = match source {
        ContactSource::Homogeneous {
            nodes,
            mu,
            duration,
        } => (*nodes, *mu, *duration),
        ContactSource::Trace(_) => unreachable!("validated"),
    };
    let (items, rho, bin) = (config.items, config.rho, config.bin);
    if let Some(f) = &config.faults {
        assert!(
            !f.panic_on_seeds.contains(&seed),
            "fault injection: chaos panic for trial seed {seed}"
        );
    }
    let faults = config.faults.as_ref().filter(|f| f.is_active());
    let blocks = shard_blocks(nodes);

    // ---- fixed RNG derivation order (independent of everything else) ----
    let mut master = Xoshiro256::seed_from_u64(seed);
    let mut intra_rngs: Vec<Xoshiro256> = (0..LOGICAL_SHARDS)
        .map(|s| master.split(LANE_CONTACT_STREAM ^ s as u64))
        .collect();
    let mut cross_rngs: Vec<Xoshiro256> = (0..CROSS_LANES)
        .map(|j| master.split(LANE_CONTACT_STREAM ^ (LOGICAL_SHARDS + j) as u64))
        .collect();
    let mut req_rngs: Vec<Xoshiro256> = (0..LOGICAL_SHARDS)
        .map(|s| master.split(SHARD_REQUEST_STREAM ^ s as u64))
        .collect();
    let mut shard_policy_rngs: Vec<Xoshiro256> = (0..LOGICAL_SHARDS)
        .map(|s| master.split(SHARD_POLICY_STREAM ^ s as u64))
        .collect();
    let mut lane_policy_rngs: Vec<Xoshiro256> = (0..CROSS_LANES)
        .map(|j| master.split(LANE_POLICY_STREAM ^ j as u64))
        .collect();
    // Fault streams fork from the fault base, never from the master.
    let (mut lane_drop_rngs, cache_clock, truncate_at, drop_cfg) = match faults {
        Some(f) => {
            let mut base = Xoshiro256::seed_from_u64(seed ^ f.seed.rotate_left(23));
            let drops: Vec<Xoshiro256> = (0..LOGICAL_SHARDS + CROSS_LANES)
                .map(|l| base.split(LANE_DROP_STREAM ^ l as u64))
                .collect();
            let mut cache_rng = base.split(CACHE_FAULT_STREAM);
            let rate = f.cache.map_or(0.0, |c| c.rate) * nodes as f64;
            let next = if rate > 0.0 {
                cache_rng.exp(rate)
            } else {
                f64::INFINITY
            };
            let clock = CacheFaultClock {
                next,
                rate,
                rng: cache_rng,
                servers: nodes,
            };
            let truncate_at = f.truncate_fraction.map_or(f64::INFINITY, |x| x * duration);
            (drops, Some(clock), truncate_at, f.drop)
        }
        None => (Vec::new(), None, f64::INFINITY, None),
    };
    let mut next_drop_rng = |l: usize| -> Xoshiro256 {
        if lane_drop_rngs.is_empty() {
            Xoshiro256::seed_from_u64(0)
        } else {
            std::mem::replace(&mut lane_drop_rngs[l], Xoshiro256::seed_from_u64(0))
        }
    };

    // ---- global state init (serial), then split into shard blocks ----
    let protocol_utility = config
        .protocol_utility
        .clone()
        .unwrap_or_else(|| config.utility.clone());
    let mut global = SimState::new(nodes, items, rho);
    global.set_eviction(config.eviction);
    let mut policy_obj = policy.instantiate(
        protocol_utility.clone(),
        nodes,
        nodes,
        mu,
        items,
        rho,
        &config.demand,
    );
    policy_obj.initialize(&mut global, &mut master);
    drop(policy_obj);
    let label = policy.label();
    let mode = match &policy {
        PolicyKind::Qcr(cfg) => Mode::Qcr(QcrParams::new(
            cfg,
            protocol_utility.clone(),
            nodes,
            mu,
            items,
            rho,
        )),
        PolicyKind::Passive { replicas } => {
            let cfg = QcrConfig {
                reaction: Reaction::Constant(*replicas),
                ..QcrConfig::default()
            };
            Mode::Qcr(QcrParams::new(
                &cfg,
                protocol_utility,
                nodes,
                mu,
                items,
                rho,
            ))
        }
        PolicyKind::Static { .. } => Mode::Static,
        PolicyKind::HillClimb { .. } => unreachable!("validated"),
    };
    let SimState {
        caches,
        sticky_owner,
        ..
    } = global;
    let sizes: Vec<usize> = blocks.iter().map(|&(_, len)| len).collect();
    let arenas = caches.split_into_blocks(&sizes);

    let total_rate = config.demand.total();
    let env = SimEnv {
        utility: config.utility.clone(),
        h_zero: config.utility.h_zero(),
        item_sampler: (total_rate > 0.0).then(|| AliasTable::new(config.demand.rates())),
        sticky_owner,
        mode,
    };

    // ---- build tasks ----
    let mut shards: Vec<Shard> = Vec::with_capacity(LOGICAL_SHARDS);
    for (s, arena) in arenas.into_iter().enumerate() {
        let (start, len) = blocks[s];
        let mut replicas = vec![0u32; items];
        for cache in arena.iter() {
            for &item in cache.items() {
                replicas[item as usize] += 1;
            }
        }
        let mut requests = RequestArena::new();
        requests.reset(len);
        let req_rate = if nodes > 0 {
            total_rate * len as f64 / nodes as f64
        } else {
            0.0
        };
        let mut req_rng = std::mem::replace(&mut req_rngs[s], Xoshiro256::seed_from_u64(0));
        let next_request = if req_rate > 0.0 {
            req_rng.exp(req_rate)
        } else {
            f64::INFINITY
        };
        shards.push(Shard {
            state: ShardState {
                start,
                len,
                caches: arena,
                replicas,
                mandates: vec![BTreeMap::new(); len],
                requests,
                transmissions: 0,
            },
            ctx: TaskCtx::new(
                std::mem::replace(&mut shard_policy_rngs[s], Xoshiro256::seed_from_u64(0)),
                duration,
                bin,
            ),
            contacts: LaneContacts::new(
                LaneKind::Intra { start, n: len },
                mu,
                duration,
                std::mem::replace(&mut intra_rngs[s], Xoshiro256::seed_from_u64(0)),
                drop_cfg,
                next_drop_rng(s),
                truncate_at,
            ),
            req_rng,
            req_rate,
            next_request,
        });
    }
    let mut lanes: Vec<CrossLane> = Vec::with_capacity(CROSS_LANES);
    for s in 0..LOGICAL_SHARDS {
        for t in (s + 1)..LOGICAL_SHARDS {
            let j = cross_index(s, t);
            lanes.push(CrossLane {
                contacts: LaneContacts::new(
                    LaneKind::Cross {
                        start_a: blocks[s].0,
                        n_a: blocks[s].1,
                        start_b: blocks[t].0,
                        n_b: blocks[t].1,
                    },
                    mu,
                    duration,
                    std::mem::replace(&mut cross_rngs[j], Xoshiro256::seed_from_u64(0)),
                    drop_cfg,
                    next_drop_rng(LOGICAL_SHARDS + j),
                    truncate_at,
                ),
                ctx: TaskCtx::new(
                    std::mem::replace(&mut lane_policy_rngs[j], Xoshiro256::seed_from_u64(0)),
                    duration,
                    bin,
                ),
            });
        }
    }

    // ---- epoch loop ----
    // The exchange epoch must be short against the fastest dynamics a
    // request sees — the per-node meeting process, rate μ(n−1) — because
    // within one epoch phase A (intra) is processed before phase B
    // (cross) regardless of event times, so waits can be mis-ordered by
    // up to one epoch width. Subdividing each metrics bin so an epoch
    // spans about one per-node inter-meeting time keeps that reordering
    // error far below typical fulfillment delays; the cap bounds barrier
    // overhead when μ·n·bin is huge.
    let epochs_per_bin =
        ((bin * mu * nodes.saturating_sub(1) as f64).ceil() as usize).clamp(1, 256);
    let epoch_width = bin / epochs_per_bin as f64;
    let mut metrics = Metrics::new(duration, bin);
    let mut boundary_faults: Vec<FaultRecord> = Vec::new();
    let mut cache_clock = cache_clock;
    let snapshot_system = (mu > 0.0).then(|| SystemModel::pure_p2p(nodes, rho, mu));
    let mut replica_sum = vec![0u32; items];
    let bins = (duration / bin).ceil() as usize;
    let total_epochs = bins * epochs_per_bin;
    for epoch in 0..total_epochs {
        let (bin_idx, sub) = (epoch / epochs_per_bin, epoch % epochs_per_bin);
        let boundary = bin_idx as f64 * bin + sub as f64 * epoch_width;
        let limit = if epoch + 1 == total_epochs {
            f64::INFINITY
        } else {
            let (nb, ns) = ((epoch + 1) / epochs_per_bin, (epoch + 1) % epochs_per_bin);
            nb as f64 * bin + ns as f64 * epoch_width
        };
        // Serial boundary: at bin starts, snapshot on the summed
        // replicas (the state every lane saw at the end of the previous
        // epoch); at every epoch boundary, the global cache faults due
        // by it.
        if let Some(system) = snapshot_system.as_ref().filter(|_| sub == 0) {
            let _span = impatience_obs::span!("snapshot");
            replica_sum.iter_mut().for_each(|r| *r = 0);
            for sh in &shards {
                for (i, &r) in sh.state.replicas.iter().enumerate() {
                    replica_sum[i] += r;
                }
            }
            metrics.record_snapshot(
                boundary,
                &replica_sum,
                system,
                &config.demand,
                config.utility.as_ref(),
            );
        }
        if let Some(clock) = cache_clock.as_mut() {
            while clock.next <= boundary {
                let when = clock.next;
                clock.next += clock.rng.exp(clock.rate);
                let node = clock.rng.index(clock.servers);
                let s = blocks.partition_point(|&(start, _)| start <= node) - 1;
                let state = &mut shards[s].state;
                let local = node - state.start;
                if let Some(item) = state
                    .caches
                    .node_mut(local)
                    .drop_random_non_sticky(&mut clock.rng)
                {
                    state.replicas[item as usize] -= 1;
                    metrics.cache_faults += 1;
                    boundary_faults.push(FaultRecord {
                        time: when,
                        kind: "cache_fault",
                        node: node as u32,
                        aux: item,
                    });
                }
            }
        }
        // Phase A: all 16 shards in parallel (inline when the buffered
        // work would not cover the spawn cost).
        let mut hint = 0u64;
        for sh in shards.iter_mut() {
            hint += sh.contacts.buffered(limit);
            if sh.req_rate > 0.0 {
                hint += (sh.req_rate * epoch_width) as u64 + 1;
            }
        }
        let phase_a_workers = if hint >= PARALLEL_THRESHOLD {
            workers
        } else {
            1
        };
        parallel_for(&mut shards, phase_a_workers, &|sh| {
            run_phase_a(sh, &env, limit, duration)
        });
        // Phase B: 15 rounds of 8 disjoint pairs.
        let mut lane_slots: Vec<Option<&mut CrossLane>> = lanes.iter_mut().map(Some).collect();
        let mut state_slots: Vec<Option<&mut ShardState>> =
            shards.iter_mut().map(|sh| Some(&mut sh.state)).collect();
        for round in 0..LOGICAL_SHARDS - 1 {
            let pairs = round_pairs(round);
            let mut work: Vec<(&mut ShardState, &mut ShardState, &mut CrossLane)> =
                Vec::with_capacity(pairs.len());
            let mut hint = 0u64;
            for &(s, t) in &pairs {
                let sa = state_slots[s].take().expect("disjoint rounds");
                let sb = state_slots[t].take().expect("disjoint rounds");
                let lane = lane_slots[cross_index(s, t)]
                    .take()
                    .expect("one round per lane");
                hint += lane.contacts.buffered(limit);
                work.push((sa, sb, lane));
            }
            let round_workers = if hint >= PARALLEL_THRESHOLD {
                workers
            } else {
                1
            };
            parallel_for(&mut work, round_workers, &|w| {
                run_phase_b(w.0, w.1, w.2, &env, limit)
            });
            for (&(s, t), (sa, sb, _)) in pairs.iter().zip(work) {
                state_slots[s] = Some(sa);
                state_slots[t] = Some(sb);
            }
        }
    }

    // ---- settlement and fixed-order reduction ----
    let _settle_span = impatience_obs::span!("settle");
    let h_inf = config.utility.h_infinity();
    let mut final_replicas = vec![0u32; items];
    let mut event_digest = FNV_OFFSET;
    let mut contacts_processed = 0;
    let mut fault_log = boundary_faults;
    for sh in shards.iter_mut() {
        sh.ctx.metrics.unfulfilled = sh.state.requests.len();
        for (_, _, created) in sh.state.requests.iter() {
            let age = (duration - created).max(f64::MIN_POSITIVE);
            let gain = if h_inf.is_finite() {
                h_inf
            } else {
                config.utility.h(age)
            };
            sh.ctx.metrics.record_settlement(duration, gain);
        }
        sh.ctx.metrics.transmissions = sh.state.transmissions;
        metrics.merge(&sh.ctx.metrics);
        for (i, &r) in sh.state.replicas.iter().enumerate() {
            final_replicas[i] += r;
        }
        event_digest = fnv(fnv(event_digest, sh.ctx.digest), sh.state.transmissions);
        contacts_processed += sh.ctx.contacts;
        fault_log.append(&mut sh.ctx.faults);
    }
    for lane in lanes.iter_mut() {
        metrics.merge(&lane.ctx.metrics);
        event_digest = fnv(event_digest, lane.ctx.digest);
        contacts_processed += lane.ctx.contacts;
        fault_log.append(&mut lane.ctx.faults);
    }

    Ok(ShardedOutcome {
        outcome: TrialOutcome {
            metrics,
            final_replicas,
            label,
        },
        fault_log,
        event_digest,
        contacts_processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{CacheFaults, Churn, FaultConfig};
    use impatience_core::demand::Popularity;
    use impatience_core::prelude::uniform;
    use impatience_core::utility::Step;

    fn small_config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build()
    }

    fn faulty_config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .faults(FaultConfig {
                seed: 9,
                drop: Some(ContactDrop {
                    p: 0.2,
                    mean_burst: 2.0,
                }),
                cache: Some(CacheFaults { rate: 0.002 }),
                truncate_fraction: Some(0.9),
                ..FaultConfig::default()
            })
            .build()
    }

    #[test]
    fn tournament_covers_every_pair_once() {
        let mut seen = vec![0u32; CROSS_LANES];
        for round in 0..LOGICAL_SHARDS - 1 {
            let pairs = round_pairs(round);
            let mut used = [false; LOGICAL_SHARDS];
            for (s, t) in pairs {
                assert!(s < t && t < LOGICAL_SHARDS, "({s},{t})");
                assert!(!used[s] && !used[t], "round {round} reuses a shard");
                used[s] = true;
                used[t] = true;
                seen[cross_index(s, t)] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn parallel_for_visits_every_task_exactly_once() {
        // Small engines run inline under PARALLEL_THRESHOLD, so the
        // threaded scheduling mechanics get their own direct check.
        for workers in [1usize, 3, 8, 32] {
            let mut tasks: Vec<(usize, u64)> = (0..37).map(|i| (i, 0)).collect();
            parallel_for(&mut tasks, workers, &|t| t.1 += t.0 as u64 * 2 + 1);
            assert!(
                tasks.iter().all(|&(i, v)| v == i as u64 * 2 + 1),
                "workers={workers}: {tasks:?}"
            );
        }
    }

    #[test]
    fn blocks_partition_the_population() {
        for nodes in [0, 1, 5, 16, 17, 100, 1013] {
            let blocks = shard_blocks(nodes);
            assert_eq!(blocks.len(), LOGICAL_SHARDS);
            assert_eq!(blocks.iter().map(|b| b.1).sum::<usize>(), nodes);
            let mut expect = 0;
            for &(start, len) in &blocks {
                assert_eq!(start, expect);
                expect += len;
            }
            let (min, max) = blocks
                .iter()
                .fold((usize::MAX, 0), |(lo, hi), b| (lo.min(b.1), hi.max(b.1)));
            assert!(max - min <= 1, "uneven blocks for {nodes}: {blocks:?}");
        }
    }

    #[test]
    fn worker_counts_are_bit_identical() {
        // The tentpole gate: same seed, 1/2/8 workers, fault injection on
        // — every artifact must match bit for bit.
        let config = faulty_config(10, 2);
        let source = ContactSource::homogeneous(48, 0.02, 1_000.0);
        let runs: Vec<ShardedOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&w| run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 7, w).unwrap())
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.event_digest, runs[0].event_digest);
            assert_eq!(r.fault_log, runs[0].fault_log);
            assert_eq!(r.contacts_processed, runs[0].contacts_processed);
            assert_eq!(r.outcome.final_replicas, runs[0].outcome.final_replicas);
            let (a, b) = (&r.outcome.metrics, &runs[0].outcome.metrics);
            assert_eq!(a.observed_rate_series(), b.observed_rate_series());
            assert_eq!(a.expected_utility_series(), b.expected_utility_series());
            assert_eq!(a.requests_created, b.requests_created);
            assert_eq!(a.transmissions, b.transmissions);
            assert_eq!(a.contacts_dropped, b.contacts_dropped);
            assert_eq!(a.cache_faults, b.cache_faults);
            assert_eq!(a.unfulfilled, b.unfulfilled);
        }
        assert!(runs[0].outcome.metrics.contacts_dropped > 0, "drops active");
        assert!(!runs[0].fault_log.is_empty(), "faults recorded");
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(40, 0.03, 1_000.0);
        let a = run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 3, 2).unwrap();
        let b = run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 3, 2).unwrap();
        assert_eq!(a.event_digest, b.event_digest);
        assert_eq!(a.outcome.final_replicas, b.outcome.final_replicas);
        let c = run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 4, 2).unwrap();
        assert_ne!(a.event_digest, c.event_digest);
    }

    #[test]
    fn qcr_preserves_cache_budget_and_serves_requests() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(40, 0.03, 2_000.0);
        let out = run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 5, 2).unwrap();
        let m = &out.outcome.metrics;
        assert_eq!(out.outcome.label, "QCR");
        let total: u32 = out.outcome.final_replicas.iter().sum();
        assert_eq!(total, 80, "global cache must stay full");
        for (i, &r) in out.outcome.final_replicas.iter().enumerate() {
            assert!(r >= 1, "item {i} lost despite sticky replica");
        }
        assert!(m.requests_created > 300);
        assert!(
            m.fulfillments() > m.requests_created / 2,
            "most requests should be fulfilled ({} of {})",
            m.fulfillments(),
            m.requests_created
        );
        assert!(out.contacts_processed > 0);
        // Snapshots cover every bin.
        let series = m.expected_utility_series();
        assert_eq!(series.len(), 20);
        assert!(series.iter().all(|v| v.is_finite()), "{series:?}");
    }

    #[test]
    fn static_allocation_never_changes() {
        let items = 10;
        let counts = uniform(items, 40, 2);
        let config = small_config(items, 2);
        let source = ContactSource::homogeneous(40, 0.03, 1_000.0);
        let policy = PolicyKind::Static {
            label: "UNI",
            counts: counts.clone(),
        };
        let out = run_trial_sharded(&config, &source, policy, 5, 2).unwrap();
        assert_eq!(out.outcome.final_replicas, counts.counts());
        assert_eq!(out.outcome.metrics.transmissions, 0);
        assert_eq!(out.outcome.label, "UNI");
    }

    #[test]
    fn small_populations_leave_some_shards_empty() {
        let config = small_config(5, 1);
        let source = ContactSource::homogeneous(5, 0.05, 500.0);
        let out = run_trial_sharded(&config, &source, PolicyKind::qcr_default(), 1, 8).unwrap();
        assert!(out.outcome.metrics.requests_created > 0);
        assert_eq!(out.outcome.final_replicas.iter().sum::<u32>(), 5);
    }

    #[test]
    fn unsupported_configurations_are_rejected() {
        let config = small_config(5, 2);
        let source = ContactSource::homogeneous(20, 0.05, 500.0);
        let qcr = PolicyKind::qcr_default;
        // Trace source.
        let trace = ContactSource::trace(impatience_traces::ContactTrace::new(4, 10.0, vec![]));
        assert!(matches!(
            validate_sharded(&config, &trace, &qcr()),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // Hill climbing.
        assert!(matches!(
            validate_sharded(
                &config,
                &source,
                &PolicyKind::HillClimb {
                    moves_per_contact: 1
                }
            ),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // Dedicated population.
        let dedicated = SimConfig::builder(5, 2).dedicated_servers(4).build();
        assert!(matches!(
            validate_sharded(&dedicated, &source, &qcr()),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // Demand shifts.
        let shifted = SimConfig::builder(5, 2)
            .demand_shift(100.0, Popularity::pareto(5, 1.0).demand_rates(1.0))
            .build();
        assert!(matches!(
            validate_sharded(&shifted, &source, &qcr()),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // Churn.
        let churny = SimConfig::builder(5, 2)
            .faults(FaultConfig {
                churn: Some(Churn {
                    mean_up: 50.0,
                    mean_down: 10.0,
                }),
                ..FaultConfig::default()
            })
            .build();
        assert!(matches!(
            validate_sharded(&churny, &source, &qcr()),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // Non-uniform profile.
        let clustered = SimConfig::builder(5, 2)
            .profile(impatience_core::demand::DemandProfile::clustered(
                5, 20, 4, 4.0,
            ))
            .build();
        assert!(matches!(
            validate_sharded(&clustered, &source, &qcr()),
            Err(ConfigError::UnsupportedSharded { .. })
        ));
        // The supported subset passes.
        validate_sharded(&config, &source, &qcr()).unwrap();
    }
}
