//! Simulation configuration.

use std::sync::Arc;

use impatience_core::demand::{DemandProfile, DemandRates, Popularity};
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::{DelayUtility, Step};
use impatience_traces::{ContactStream, ContactTrace};

/// RNG stream id for forking contact randomness off a trial seed: the
/// contact stream draws from its own generator so lazily interleaving
/// contact sampling with demand sampling cannot perturb the trajectory.
const CONTACT_STREAM_ID: u64 = 0xC0217AC7_57BEA000;

/// Where the contact events of a trial come from.
#[derive(Clone)]
pub enum ContactSource {
    /// Fresh homogeneous Poisson contacts per trial (nodes, rate,
    /// duration) — §6.2.
    Homogeneous {
        /// Number of nodes.
        nodes: usize,
        /// Pairwise meeting rate μ.
        mu: f64,
        /// Trace duration (minutes).
        duration: f64,
    },
    /// A fixed trace replayed in every trial (randomness then comes from
    /// demand arrivals and initial placement) — §6.3.
    Trace(Arc<ContactTrace>),
}

impl ContactSource {
    /// Homogeneous Poisson contacts.
    pub fn homogeneous(nodes: usize, mu: f64, duration: f64) -> Self {
        ContactSource::Homogeneous {
            nodes,
            mu,
            duration,
        }
    }

    /// Replay a fixed trace.
    pub fn trace(trace: ContactTrace) -> Self {
        ContactSource::Trace(Arc::new(trace))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match self {
            ContactSource::Homogeneous { nodes, .. } => *nodes,
            ContactSource::Trace(t) => t.nodes(),
        }
    }

    /// Trial duration.
    pub fn duration(&self) -> f64 {
        match self {
            ContactSource::Homogeneous { duration, .. } => *duration,
            ContactSource::Trace(t) => t.duration(),
        }
    }

    /// Mean pairwise rate (exact for homogeneous; per-pair average for
    /// traces) — the `μ` the homogeneous welfare approximation uses.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ContactSource::Homogeneous { mu, .. } => *mu,
            ContactSource::Trace(t) => {
                let n = t.nodes();
                if n < 2 || t.duration() <= 0.0 {
                    return 0.0;
                }
                let pairs = (n * (n - 1) / 2) as f64;
                t.len() as f64 / (pairs * t.duration())
            }
        }
    }

    /// The lazy contact stream for one trial: on-the-fly Poisson
    /// sampling for [`ContactSource::Homogeneous`] (O(1) memory in the
    /// trace length), a zero-copy cursor for [`ContactSource::Trace`].
    ///
    /// For the homogeneous source the stream runs on its own generator
    /// forked from `rng` ([`Xoshiro256::split`]); the trace source does
    /// not touch `rng` at all. Either way the caller's generator ends in
    /// a state independent of how many contacts are later drawn, so the
    /// same seed yields the same trajectory whether contacts are
    /// consumed lazily or materialized first.
    pub fn stream(&self, rng: &mut Xoshiro256) -> ContactStream {
        match self {
            ContactSource::Homogeneous {
                nodes,
                mu,
                duration,
            } => ContactStream::poisson(*nodes, *mu, *duration, rng.split(CONTACT_STREAM_ID)),
            ContactSource::Trace(t) => ContactStream::cursor(Arc::clone(t)),
        }
    }

    /// Materialize the contact events for one trial by draining
    /// [`ContactSource::stream`] — the same events the lazy path yields,
    /// collected into a trace (the regression-reference pipeline).
    pub fn realize(&self, rng: &mut Xoshiro256) -> Arc<ContactTrace> {
        match self {
            ContactSource::Homogeneous { .. } => Arc::new(self.stream(rng).collect_trace()),
            ContactSource::Trace(t) => Arc::clone(t),
        }
    }
}

/// Full description of a simulated system (population, catalog, demand,
/// impatience, measurement).
///
/// By default the simulator models the paper's pure-P2P population
/// (§6.2: every node is both client and server), which requires
/// `h(0⁺) < ∞`. Setting [`SimConfig::dedicated_servers`] switches to the
/// dedicated-node population (§3.1: throwboxes, kiosks, buses): the first
/// `k` trace nodes act as cache-carrying servers, the rest as cache-less
/// clients — which also legitimizes the `h(0⁺) = ∞` families.
#[derive(Clone)]
pub struct SimConfig {
    /// Catalog size |I|.
    pub items: usize,
    /// Per-server cache capacity ρ.
    pub rho: usize,
    /// Demand rates d_i (requests per minute, system-wide).
    pub demand: DemandRates,
    /// Per-node demand profile π (over *client* nodes).
    pub profile: DemandProfile,
    /// The impatience model governing *true* gains (what the metrics
    /// record and the analytic snapshots use).
    pub utility: Arc<dyn DelayUtility>,
    /// The impatience model the *protocol* believes in (drives QCR's
    /// reaction function ψ). Defaults to [`Self::utility`]; set it to a
    /// fitted estimate to study model-mismatch (§7's estimation problem).
    pub protocol_utility: Option<Arc<dyn DelayUtility>>,
    /// Metrics bin width (minutes).
    pub bin: f64,
    /// Fraction of the trial treated as warm-up and excluded from the
    /// average-utility summary (0.0–0.9).
    pub warmup_fraction: f64,
    /// `Some(k)`: dedicated population — trace nodes `0..k` are servers,
    /// the rest clients. `None` (default): pure P2P.
    pub dedicated_servers: Option<usize>,
    /// Demand shifts: at each `(time, rates)` the system-wide demand
    /// switches to `rates` (same catalog size). Models the "evolving
    /// demands" extension of §7; QCR adapts, pinned allocations cannot.
    pub demand_shifts: Vec<(f64, DemandRates)>,
    /// Cache-eviction rule (the paper's model is random replacement;
    /// alternatives are ablation hooks).
    pub eviction: crate::state::EvictionPolicy,
}

impl SimConfig {
    /// Start building a config for `items` items and cache capacity
    /// `rho`. Defaults: Pareto(ω=1) demand at 1 request/min total,
    /// uniform profile over the node count resolved at run time,
    /// `Step(10)` impatience, 60-minute bins, 20 % warm-up.
    pub fn builder(items: usize, rho: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            items,
            rho,
            demand: None,
            profile: None,
            utility: None,
            bin: 60.0,
            warmup_fraction: 0.2,
            dedicated_servers: None,
            demand_shifts: Vec::new(),
            protocol_utility: None,
            eviction: crate::state::EvictionPolicy::Random,
        }
    }

    /// Number of client nodes for a population of `nodes` trace nodes.
    pub fn clients(&self, nodes: usize) -> usize {
        match self.dedicated_servers {
            Some(servers) => nodes - servers,
            None => nodes,
        }
    }

    /// Validate against a node count (profile width, utility finiteness).
    pub fn validate(&self, nodes: usize) {
        assert_eq!(
            self.demand.items(),
            self.items,
            "demand catalog size mismatch"
        );
        assert_eq!(
            self.profile.items(),
            self.items,
            "profile catalog size mismatch"
        );
        if let Some(servers) = self.dedicated_servers {
            assert!(
                servers >= 1 && servers < nodes,
                "dedicated population needs 1 ≤ servers < nodes (got {servers} of {nodes})"
            );
        }
        assert_eq!(
            self.profile.nodes(),
            self.clients(nodes),
            "profile node count must equal the client count"
        );
        assert!(
            !(self.utility.requires_dedicated() && self.dedicated_servers.is_none()),
            "{} has h(0+)=∞; use a dedicated population (SimConfig::dedicated_servers)",
            self.utility.kind()
        );
        for (t, rates) in &self.demand_shifts {
            assert!(
                t.is_finite() && *t >= 0.0,
                "shift times must be finite and ≥ 0"
            );
            assert_eq!(
                rates.items(),
                self.items,
                "shifted demand catalog size mismatch"
            );
        }
        assert!(self.bin > 0.0, "bin width must be positive");
        assert!(
            (0.0..0.9).contains(&self.warmup_fraction),
            "warm-up fraction must be in [0, 0.9)"
        );
    }
}

/// Builder for [`SimConfig`].
pub struct SimConfigBuilder {
    items: usize,
    rho: usize,
    demand: Option<DemandRates>,
    profile: Option<DemandProfile>,
    utility: Option<Arc<dyn DelayUtility>>,
    bin: f64,
    warmup_fraction: f64,
    dedicated_servers: Option<usize>,
    demand_shifts: Vec<(f64, DemandRates)>,
    protocol_utility: Option<Arc<dyn DelayUtility>>,
    eviction: crate::state::EvictionPolicy,
}

impl SimConfigBuilder {
    /// Set the demand rates.
    pub fn demand(mut self, demand: DemandRates) -> Self {
        self.demand = Some(demand);
        self
    }

    /// Set the per-node profile (defaults to uniform at build time).
    pub fn profile(mut self, profile: DemandProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Set the impatience model.
    pub fn utility(mut self, utility: Arc<dyn DelayUtility>) -> Self {
        self.utility = Some(utility);
        self
    }

    /// Set the metrics bin width (minutes).
    pub fn bin(mut self, bin: f64) -> Self {
        self.bin = bin;
        self
    }

    /// Set the warm-up fraction excluded from summary averages.
    pub fn warmup_fraction(mut self, f: f64) -> Self {
        self.warmup_fraction = f;
        self
    }

    /// Use a dedicated population: the first `servers` trace nodes carry
    /// caches, the rest only issue requests (§3.1).
    pub fn dedicated_servers(mut self, servers: usize) -> Self {
        self.dedicated_servers = Some(servers);
        self
    }

    /// Switch the system-wide demand to `rates` at time `t` (may be
    /// called repeatedly; shifts are applied in time order).
    pub fn demand_shift(mut self, t: f64, rates: DemandRates) -> Self {
        self.demand_shifts.push((t, rates));
        self
    }

    /// Set the cache-eviction rule (default: random replacement).
    pub fn eviction(mut self, policy: crate::state::EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Give the protocol a *different* impatience model than the true
    /// one (e.g. a fitted estimate): gains are still recorded under the
    /// truth, but QCR's reaction function uses this model.
    pub fn protocol_utility(mut self, utility: Arc<dyn DelayUtility>) -> Self {
        self.protocol_utility = Some(utility);
        self
    }

    /// Finish building. A missing profile defaults to uniform over the
    /// node count implied at `run_trial` time; here we default to the
    /// catalog-size-free uniform profile lazily via `nodes`.
    pub fn build(self) -> SimConfig {
        let demand = self
            .demand
            .unwrap_or_else(|| Popularity::pareto(self.items, 1.0).demand_rates(1.0));
        SimConfig {
            items: self.items,
            rho: self.rho,
            demand,
            // Placeholder 1-node profile replaced by `with_nodes` /
            // validated at run time; most callers set it explicitly or
            // rely on `for_nodes`.
            profile: self
                .profile
                .unwrap_or_else(|| DemandProfile::uniform(self.items, 1)),
            utility: self.utility.unwrap_or_else(|| Arc::new(Step::new(10.0))),
            bin: self.bin,
            warmup_fraction: self.warmup_fraction,
            dedicated_servers: self.dedicated_servers,
            protocol_utility: self.protocol_utility,
            eviction: self.eviction,
            demand_shifts: {
                let mut shifts = self.demand_shifts;
                shifts.sort_by(|a, b| a.0.total_cmp(&b.0));
                shifts
            },
        }
    }
}

impl SimConfig {
    /// Return a copy whose profile is uniform over `nodes` nodes if the
    /// current profile width disagrees (convenience for default-built
    /// configs).
    pub fn for_nodes(&self, nodes: usize) -> SimConfig {
        let clients = self.clients(nodes);
        if self.profile.nodes() == clients {
            self.clone()
        } else {
            let mut c = self.clone();
            c.profile = DemandProfile::uniform(self.items, clients);
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::utility::Power;
    use impatience_traces::ContactEvent;

    #[test]
    fn builder_defaults() {
        let c = SimConfig::builder(10, 3).build();
        assert_eq!(c.items, 10);
        assert_eq!(c.rho, 3);
        assert_eq!(c.demand.items(), 10);
        assert!((c.demand.total() - 1.0).abs() < 1e-12);
        assert_eq!(c.bin, 60.0);
    }

    #[test]
    fn for_nodes_fixes_profile() {
        let c = SimConfig::builder(5, 2).build().for_nodes(8);
        assert_eq!(c.profile.nodes(), 8);
        c.validate(8);
    }

    #[test]
    #[should_panic(expected = "dedicated population")]
    fn validate_rejects_dedicated_only_utility() {
        let c = SimConfig::builder(5, 2)
            .utility(Arc::new(Power::new(1.5)))
            .build()
            .for_nodes(4);
        c.validate(4);
    }

    #[test]
    fn homogeneous_source_realizes_fresh_traces() {
        let src = ContactSource::homogeneous(5, 0.1, 100.0);
        assert_eq!(src.nodes(), 5);
        assert_eq!(src.duration(), 100.0);
        assert_eq!(src.mean_rate(), 0.1);
        let mut r1 = Xoshiro256::seed_from_u64(1);
        let mut r2 = Xoshiro256::seed_from_u64(2);
        let t1 = src.realize(&mut r1);
        let t2 = src.realize(&mut r2);
        assert_ne!(t1.events(), t2.events(), "trials should differ");
    }

    #[test]
    fn trace_source_is_fixed_and_estimates_rate() {
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                ContactEvent::new(1.0, 0, 1),
                ContactEvent::new(2.0, 1, 2),
                ContactEvent::new(3.0, 0, 2),
            ],
        );
        let src = ContactSource::trace(trace);
        assert_eq!(src.nodes(), 3);
        // 3 contacts / (3 pairs × 100 min) = 0.01.
        assert!((src.mean_rate() - 0.01).abs() < 1e-12);
        let mut rng = Xoshiro256::seed_from_u64(0);
        let a = src.realize(&mut rng);
        let b = src.realize(&mut rng);
        assert_eq!(a.events(), b.events());
    }
}
