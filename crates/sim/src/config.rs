//! Simulation configuration.

use std::fmt;
use std::sync::Arc;

use impatience_core::demand::{DemandProfile, DemandRates, Popularity};
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::{DelayUtility, Step};
use impatience_traces::{ContactStream, ContactTrace};

use crate::faults::FaultConfig;

/// A rejected simulation configuration: what is wrong and with which
/// value, surfaced at construction/validation time instead of a panic
/// mid-campaign. The `Display` strings are stable — the panicking
/// [`SimConfig::validate`] forwards them verbatim.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A rates/profile vector disagrees with the catalog size.
    CatalogMismatch {
        /// Which input ("demand", "profile", "shifted demand").
        what: &'static str,
        /// The catalog size |I|.
        expected: usize,
        /// The offending vector's width.
        found: usize,
    },
    /// The catalog is empty.
    ZeroItems,
    /// A demand rate is negative or non-finite.
    InvalidDemand {
        /// Item index of the offending rate.
        item: usize,
        /// The offending value.
        rate: f64,
    },
    /// The dedicated-server split does not fit the population.
    InvalidPopulation {
        /// Configured server count.
        servers: usize,
        /// Population size.
        nodes: usize,
    },
    /// The demand profile's node count disagrees with the client count.
    ProfileWidth {
        /// Expected client count.
        expected: usize,
        /// The profile's node count.
        found: usize,
    },
    /// The utility has `h(0⁺) = ∞` but the population is pure P2P.
    RequiresDedicated {
        /// The utility family's name.
        utility: String,
    },
    /// A demand shift is malformed.
    InvalidShift {
        /// What is wrong.
        message: String,
    },
    /// Non-positive metrics bin width.
    InvalidBin {
        /// The offending value.
        bin: f64,
    },
    /// Warm-up fraction outside `[0, 0.9)`.
    InvalidWarmup {
        /// The offending value.
        fraction: f64,
    },
    /// The global cache budget `ρ·|S|` overflows.
    CacheOverflow {
        /// Per-server capacity ρ.
        rho: usize,
        /// Server count |S|.
        servers: usize,
    },
    /// A contact-source parameter (μ, duration, node count) is invalid.
    InvalidRate {
        /// What is wrong.
        message: String,
    },
    /// A fault-model parameter is invalid.
    InvalidFaults {
        /// What is wrong.
        message: String,
    },
    /// The intra-trial sharded engine cannot run this configuration
    /// (see [`crate::sharded`] for the supported subset).
    UnsupportedSharded {
        /// The unsupported feature.
        feature: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CatalogMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what} catalog size mismatch (catalog {expected}, got {found})"
            ),
            ConfigError::ZeroItems => write!(f, "catalog must contain at least one item"),
            ConfigError::InvalidDemand { item, rate } => write!(
                f,
                "demand rate of item {item} must be finite and ≥ 0 (got {rate})"
            ),
            ConfigError::InvalidPopulation { servers, nodes } => write!(
                f,
                "dedicated population needs 1 ≤ servers < nodes (got {servers} of {nodes})"
            ),
            ConfigError::ProfileWidth { expected, found } => write!(
                f,
                "profile node count must equal the client count ({expected}, got {found})"
            ),
            ConfigError::RequiresDedicated { utility } => write!(
                f,
                "{utility} has h(0+)=∞; use a dedicated population (SimConfig::dedicated_servers)"
            ),
            ConfigError::InvalidShift { message } => write!(f, "{message}"),
            ConfigError::InvalidBin { bin } => {
                write!(f, "bin width must be positive (got {bin})")
            }
            ConfigError::InvalidWarmup { fraction } => {
                write!(f, "warm-up fraction must be in [0, 0.9) (got {fraction})")
            }
            ConfigError::CacheOverflow { rho, servers } => {
                write!(f, "global cache budget ρ·|S| = {rho}·{servers} overflows")
            }
            ConfigError::InvalidRate { message } => write!(f, "{message}"),
            ConfigError::InvalidFaults { message } => write!(f, "fault model: {message}"),
            ConfigError::UnsupportedSharded { feature } => {
                write!(f, "the sharded engine does not support {feature}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// RNG stream id for forking contact randomness off a trial seed: the
/// contact stream draws from its own generator so lazily interleaving
/// contact sampling with demand sampling cannot perturb the trajectory.
const CONTACT_STREAM_ID: u64 = 0xC0217AC7_57BEA000;

/// Where the contact events of a trial come from.
#[derive(Clone)]
pub enum ContactSource {
    /// Fresh homogeneous Poisson contacts per trial (nodes, rate,
    /// duration) — §6.2.
    Homogeneous {
        /// Number of nodes.
        nodes: usize,
        /// Pairwise meeting rate μ.
        mu: f64,
        /// Trace duration (minutes).
        duration: f64,
    },
    /// A fixed trace replayed in every trial (randomness then comes from
    /// demand arrivals and initial placement) — §6.3.
    Trace(Arc<ContactTrace>),
}

impl ContactSource {
    /// Homogeneous Poisson contacts.
    pub fn homogeneous(nodes: usize, mu: f64, duration: f64) -> Self {
        ContactSource::Homogeneous {
            nodes,
            mu,
            duration,
        }
    }

    /// Replay a fixed trace.
    pub fn trace(trace: ContactTrace) -> Self {
        ContactSource::Trace(Arc::new(trace))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match self {
            ContactSource::Homogeneous { nodes, .. } => *nodes,
            ContactSource::Trace(t) => t.nodes(),
        }
    }

    /// Trial duration.
    pub fn duration(&self) -> f64 {
        match self {
            ContactSource::Homogeneous { duration, .. } => *duration,
            ContactSource::Trace(t) => t.duration(),
        }
    }

    /// Mean pairwise rate (exact for homogeneous; per-pair average for
    /// traces) — the `μ` the homogeneous welfare approximation uses.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ContactSource::Homogeneous { mu, .. } => *mu,
            ContactSource::Trace(t) => {
                let n = t.nodes();
                if n < 2 || t.duration() <= 0.0 {
                    return 0.0;
                }
                let pairs = (n * (n - 1) / 2) as f64;
                t.len() as f64 / (pairs * t.duration())
            }
        }
    }

    /// The lazy contact stream for one trial: on-the-fly Poisson
    /// sampling for [`ContactSource::Homogeneous`] (O(1) memory in the
    /// trace length), a zero-copy cursor for [`ContactSource::Trace`].
    ///
    /// For the homogeneous source the stream runs on its own generator
    /// forked from `rng` ([`Xoshiro256::split`]); the trace source does
    /// not touch `rng` at all. Either way the caller's generator ends in
    /// a state independent of how many contacts are later drawn, so the
    /// same seed yields the same trajectory whether contacts are
    /// consumed lazily or materialized first.
    pub fn stream(&self, rng: &mut Xoshiro256) -> ContactStream {
        match self {
            ContactSource::Homogeneous {
                nodes,
                mu,
                duration,
            } => ContactStream::poisson(*nodes, *mu, *duration, rng.split(CONTACT_STREAM_ID)),
            ContactSource::Trace(t) => ContactStream::cursor(Arc::clone(t)),
        }
    }

    /// Validate the source parameters (node count, rate, duration) as a
    /// typed [`ConfigError`] — the CLI's entry gate for user-supplied μ.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError::InvalidRate { message });
        match self {
            ContactSource::Homogeneous {
                nodes,
                mu,
                duration,
            } => {
                if *nodes < 2 {
                    return err(format!("need at least 2 nodes (got {nodes})"));
                }
                if !(mu.is_finite() && *mu >= 0.0) {
                    return err(format!("contact rate μ must be finite and ≥ 0 (got {mu})"));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return err(format!(
                        "duration must be positive and finite (got {duration})"
                    ));
                }
            }
            ContactSource::Trace(t) => {
                if t.nodes() < 2 {
                    return err(format!("trace needs at least 2 nodes (got {})", t.nodes()));
                }
            }
        }
        Ok(())
    }

    /// Materialize the contact events for one trial by draining
    /// [`ContactSource::stream`] — the same events the lazy path yields,
    /// collected into a trace (the regression-reference pipeline).
    pub fn realize(&self, rng: &mut Xoshiro256) -> Arc<ContactTrace> {
        match self {
            ContactSource::Homogeneous { .. } => Arc::new(self.stream(rng).collect_trace()),
            ContactSource::Trace(t) => Arc::clone(t),
        }
    }
}

/// Full description of a simulated system (population, catalog, demand,
/// impatience, measurement).
///
/// By default the simulator models the paper's pure-P2P population
/// (§6.2: every node is both client and server), which requires
/// `h(0⁺) < ∞`. Setting [`SimConfig::dedicated_servers`] switches to the
/// dedicated-node population (§3.1: throwboxes, kiosks, buses): the first
/// `k` trace nodes act as cache-carrying servers, the rest as cache-less
/// clients — which also legitimizes the `h(0⁺) = ∞` families.
#[derive(Clone)]
pub struct SimConfig {
    /// Catalog size |I|.
    pub items: usize,
    /// Per-server cache capacity ρ.
    pub rho: usize,
    /// Demand rates d_i (requests per minute, system-wide).
    pub demand: DemandRates,
    /// Per-node demand profile π (over *client* nodes).
    pub profile: DemandProfile,
    /// The impatience model governing *true* gains (what the metrics
    /// record and the analytic snapshots use).
    pub utility: Arc<dyn DelayUtility>,
    /// The impatience model the *protocol* believes in (drives QCR's
    /// reaction function ψ). Defaults to [`Self::utility`]; set it to a
    /// fitted estimate to study model-mismatch (§7's estimation problem).
    pub protocol_utility: Option<Arc<dyn DelayUtility>>,
    /// Metrics bin width (minutes).
    pub bin: f64,
    /// Fraction of the trial treated as warm-up and excluded from the
    /// average-utility summary (0.0–0.9).
    pub warmup_fraction: f64,
    /// `Some(k)`: dedicated population — trace nodes `0..k` are servers,
    /// the rest clients. `None` (default): pure P2P.
    pub dedicated_servers: Option<usize>,
    /// Demand shifts: at each `(time, rates)` the system-wide demand
    /// switches to `rates` (same catalog size). Models the "evolving
    /// demands" extension of §7; QCR adapts, pinned allocations cannot.
    pub demand_shifts: Vec<(f64, DemandRates)>,
    /// Cache-eviction rule (the paper's model is random replacement;
    /// alternatives are ablation hooks).
    pub eviction: crate::state::EvictionPolicy,
    /// Fault-injection model (`None` = the clean network).
    pub faults: Option<FaultConfig>,
}

impl SimConfig {
    /// Start building a config for `items` items and cache capacity
    /// `rho`. Defaults: Pareto(ω=1) demand at 1 request/min total,
    /// uniform profile over the node count resolved at run time,
    /// `Step(10)` impatience, 60-minute bins, 20 % warm-up.
    pub fn builder(items: usize, rho: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            items,
            rho,
            demand: None,
            profile: None,
            utility: None,
            bin: 60.0,
            warmup_fraction: 0.2,
            dedicated_servers: None,
            demand_shifts: Vec::new(),
            protocol_utility: None,
            eviction: crate::state::EvictionPolicy::Random,
            faults: None,
        }
    }

    /// Number of client nodes for a population of `nodes` trace nodes.
    pub fn clients(&self, nodes: usize) -> usize {
        match self.dedicated_servers {
            Some(servers) => nodes - servers,
            None => nodes,
        }
    }

    /// Validate against a node count (profile width, utility finiteness).
    ///
    /// # Panics
    /// Panics with the [`ConfigError`] message on the first violation;
    /// fallible callers (the CLI, the campaign runner) use
    /// [`SimConfig::try_validate`] instead.
    pub fn validate(&self, nodes: usize) {
        if let Err(e) = self.try_validate(nodes) {
            panic!("{e}");
        }
    }

    /// Validate against a node count, returning the first violation as a
    /// typed [`ConfigError`] instead of panicking.
    pub fn try_validate(&self, nodes: usize) -> Result<(), ConfigError> {
        if self.items == 0 {
            return Err(ConfigError::ZeroItems);
        }
        if self.demand.items() != self.items {
            return Err(ConfigError::CatalogMismatch {
                what: "demand",
                expected: self.items,
                found: self.demand.items(),
            });
        }
        if let Some((item, &rate)) = self
            .demand
            .rates()
            .iter()
            .enumerate()
            .find(|(_, r)| !(r.is_finite() && **r >= 0.0))
        {
            return Err(ConfigError::InvalidDemand { item, rate });
        }
        if self.profile.items() != self.items {
            return Err(ConfigError::CatalogMismatch {
                what: "profile",
                expected: self.items,
                found: self.profile.items(),
            });
        }
        if let Some(servers) = self.dedicated_servers {
            if !(servers >= 1 && servers < nodes) {
                return Err(ConfigError::InvalidPopulation { servers, nodes });
            }
        }
        let servers = self.dedicated_servers.unwrap_or(nodes);
        if self.rho.checked_mul(servers).is_none() {
            return Err(ConfigError::CacheOverflow {
                rho: self.rho,
                servers,
            });
        }
        if self.profile.nodes() != self.clients(nodes) {
            return Err(ConfigError::ProfileWidth {
                expected: self.clients(nodes),
                found: self.profile.nodes(),
            });
        }
        if self.utility.requires_dedicated() && self.dedicated_servers.is_none() {
            return Err(ConfigError::RequiresDedicated {
                utility: self.utility.kind().to_string(),
            });
        }
        for (t, rates) in &self.demand_shifts {
            if !(t.is_finite() && *t >= 0.0) {
                return Err(ConfigError::InvalidShift {
                    message: format!("shift times must be finite and ≥ 0 (got {t})"),
                });
            }
            if rates.items() != self.items {
                return Err(ConfigError::CatalogMismatch {
                    what: "shifted demand",
                    expected: self.items,
                    found: rates.items(),
                });
            }
        }
        if self.bin <= 0.0 || self.bin.is_nan() {
            return Err(ConfigError::InvalidBin { bin: self.bin });
        }
        if !(0.0..0.9).contains(&self.warmup_fraction) {
            return Err(ConfigError::InvalidWarmup {
                fraction: self.warmup_fraction,
            });
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
pub struct SimConfigBuilder {
    items: usize,
    rho: usize,
    demand: Option<DemandRates>,
    profile: Option<DemandProfile>,
    utility: Option<Arc<dyn DelayUtility>>,
    bin: f64,
    warmup_fraction: f64,
    dedicated_servers: Option<usize>,
    demand_shifts: Vec<(f64, DemandRates)>,
    protocol_utility: Option<Arc<dyn DelayUtility>>,
    eviction: crate::state::EvictionPolicy,
    faults: Option<FaultConfig>,
}

impl SimConfigBuilder {
    /// Set the demand rates.
    pub fn demand(mut self, demand: DemandRates) -> Self {
        self.demand = Some(demand);
        self
    }

    /// Set the per-node profile (defaults to uniform at build time).
    pub fn profile(mut self, profile: DemandProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Set the impatience model.
    pub fn utility(mut self, utility: Arc<dyn DelayUtility>) -> Self {
        self.utility = Some(utility);
        self
    }

    /// Set the metrics bin width (minutes).
    pub fn bin(mut self, bin: f64) -> Self {
        self.bin = bin;
        self
    }

    /// Set the warm-up fraction excluded from summary averages.
    pub fn warmup_fraction(mut self, f: f64) -> Self {
        self.warmup_fraction = f;
        self
    }

    /// Use a dedicated population: the first `servers` trace nodes carry
    /// caches, the rest only issue requests (§3.1).
    pub fn dedicated_servers(mut self, servers: usize) -> Self {
        self.dedicated_servers = Some(servers);
        self
    }

    /// Switch the system-wide demand to `rates` at time `t` (may be
    /// called repeatedly; shifts are applied in time order).
    pub fn demand_shift(mut self, t: f64, rates: DemandRates) -> Self {
        self.demand_shifts.push((t, rates));
        self
    }

    /// Set the cache-eviction rule (default: random replacement).
    pub fn eviction(mut self, policy: crate::state::EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Give the protocol a *different* impatience model than the true
    /// one (e.g. a fitted estimate): gains are still recorded under the
    /// truth, but QCR's reaction function uses this model.
    pub fn protocol_utility(mut self, utility: Arc<dyn DelayUtility>) -> Self {
        self.protocol_utility = Some(utility);
        self
    }

    /// Attach a fault-injection model (see [`crate::faults`]).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Finish building. A missing profile defaults to uniform over the
    /// node count implied at `run_trial` time; here we default to the
    /// catalog-size-free uniform profile lazily via `nodes`.
    pub fn build(self) -> SimConfig {
        let demand = self
            .demand
            .unwrap_or_else(|| Popularity::pareto(self.items, 1.0).demand_rates(1.0));
        SimConfig {
            items: self.items,
            rho: self.rho,
            demand,
            // Placeholder 1-node profile replaced by `with_nodes` /
            // validated at run time; most callers set it explicitly or
            // rely on `for_nodes`.
            profile: self
                .profile
                .unwrap_or_else(|| DemandProfile::uniform(self.items, 1)),
            utility: self.utility.unwrap_or_else(|| Arc::new(Step::new(10.0))),
            bin: self.bin,
            warmup_fraction: self.warmup_fraction,
            dedicated_servers: self.dedicated_servers,
            protocol_utility: self.protocol_utility,
            eviction: self.eviction,
            faults: self.faults,
            demand_shifts: {
                let mut shifts = self.demand_shifts;
                shifts.sort_by(|a, b| a.0.total_cmp(&b.0));
                shifts
            },
        }
    }
}

impl SimConfig {
    /// Return a copy whose profile is uniform over `nodes` nodes if the
    /// current profile width disagrees (convenience for default-built
    /// configs).
    pub fn for_nodes(&self, nodes: usize) -> SimConfig {
        let clients = self.clients(nodes);
        if self.profile.nodes() == clients {
            self.clone()
        } else {
            let mut c = self.clone();
            c.profile = DemandProfile::uniform(self.items, clients);
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::utility::Power;
    use impatience_traces::ContactEvent;

    #[test]
    fn builder_defaults() {
        let c = SimConfig::builder(10, 3).build();
        assert_eq!(c.items, 10);
        assert_eq!(c.rho, 3);
        assert_eq!(c.demand.items(), 10);
        assert!((c.demand.total() - 1.0).abs() < 1e-12);
        assert_eq!(c.bin, 60.0);
    }

    #[test]
    fn for_nodes_fixes_profile() {
        let c = SimConfig::builder(5, 2).build().for_nodes(8);
        assert_eq!(c.profile.nodes(), 8);
        c.validate(8);
    }

    #[test]
    #[should_panic(expected = "dedicated population")]
    fn validate_rejects_dedicated_only_utility() {
        let c = SimConfig::builder(5, 2)
            .utility(Arc::new(Power::new(1.5)))
            .build()
            .for_nodes(4);
        c.validate(4);
    }

    #[test]
    fn try_validate_returns_typed_errors() {
        let c = SimConfig::builder(5, 2).build().for_nodes(8);
        c.try_validate(8).unwrap();

        let mut bad = c.clone();
        bad.warmup_fraction = 0.95;
        assert!(matches!(
            bad.try_validate(8),
            Err(ConfigError::InvalidWarmup { .. })
        ));

        let mut bad = c.clone();
        bad.bin = 0.0;
        assert!(matches!(
            bad.try_validate(8),
            Err(ConfigError::InvalidBin { .. })
        ));

        let mut bad = c.clone();
        bad.items = 0;
        assert_eq!(bad.try_validate(8), Err(ConfigError::ZeroItems));

        // Negative/non-finite rates cannot be built through DemandRates
        // (its constructor rejects them), so the reachable demand error
        // is a catalog size mismatch.
        let mut bad = c.clone();
        bad.demand = impatience_core::demand::DemandRates::new(vec![1.0; 4]);
        assert!(matches!(
            bad.try_validate(8),
            Err(ConfigError::CatalogMismatch { .. })
        ));

        let mut bad = c.clone();
        bad.rho = usize::MAX;
        assert!(matches!(
            bad.try_validate(8),
            Err(ConfigError::CacheOverflow { .. })
        ));

        let mut bad = c;
        bad.faults = Some(crate::faults::FaultConfig {
            truncate_fraction: Some(0.0),
            ..Default::default()
        });
        assert!(matches!(
            bad.try_validate(8),
            Err(ConfigError::InvalidFaults { .. })
        ));
    }

    #[test]
    fn source_try_validate_rejects_bad_rates() {
        ContactSource::homogeneous(5, 0.1, 100.0)
            .try_validate()
            .unwrap();
        assert!(ContactSource::homogeneous(5, -0.1, 100.0)
            .try_validate()
            .is_err());
        assert!(ContactSource::homogeneous(1, 0.1, 100.0)
            .try_validate()
            .is_err());
        assert!(ContactSource::homogeneous(5, 0.1, f64::INFINITY)
            .try_validate()
            .is_err());
    }

    #[test]
    fn homogeneous_source_realizes_fresh_traces() {
        let src = ContactSource::homogeneous(5, 0.1, 100.0);
        assert_eq!(src.nodes(), 5);
        assert_eq!(src.duration(), 100.0);
        assert_eq!(src.mean_rate(), 0.1);
        let mut r1 = Xoshiro256::seed_from_u64(1);
        let mut r2 = Xoshiro256::seed_from_u64(2);
        let t1 = src.realize(&mut r1);
        let t2 = src.realize(&mut r2);
        assert_ne!(t1.events(), t2.events(), "trials should differ");
    }

    #[test]
    fn trace_source_is_fixed_and_estimates_rate() {
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                ContactEvent::new(1.0, 0, 1),
                ContactEvent::new(2.0, 1, 2),
                ContactEvent::new(3.0, 0, 2),
            ],
        );
        let src = ContactSource::trace(trace);
        assert_eq!(src.nodes(), 3);
        // 3 contacts / (3 pairs × 100 min) = 0.01.
        assert!((src.mean_rate() - 0.01).abs() < 1e-12);
        let mut rng = Xoshiro256::seed_from_u64(0);
        let a = src.realize(&mut rng);
        let b = src.realize(&mut rng);
        assert_eq!(a.events(), b.events());
    }
}
