//! Versioned campaign checkpoints: kill a multi-hour run at any trial
//! boundary and resume it to **bit-identical** aggregates.
//!
//! A checkpoint is one JSON object holding the campaign identity (a
//! fingerprint of config + source + policy + trial plan), the CLI
//! arguments that launched it, and every finished trial's full
//! [`TrialOutcome`] — floats encoded as 16-hex-digit bit patterns so the
//! round trip is exact even for the NaN slots in unrecorded snapshot
//! bins. Writes go through [`impatience_obs::AtomicFile`]
//! (write-temp-then-rename), so a crash mid-checkpoint leaves the
//! previous checkpoint intact, never a torn file.
//!
//! Per-trial RNG streams need no state in the file: trial `k` always
//! seeds from `base_seed + k`, so "the RNG stream of an unfinished
//! trial" is just its index. The work-stealing cursor is likewise
//! recovered as the set of indices not yet in `completed`.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use impatience_json::Json;
use impatience_obs::AtomicFile;

use crate::config::{ContactSource, SimConfig};
use crate::engine::TrialOutcome;
use crate::metrics::{f64_to_hex, Metrics};
use crate::policy::PolicyKind;

/// The checkpoint schema this build reads and writes.
pub const CHECKPOINT_SCHEMA: &str = "impatience-checkpoint/1";

/// Why a checkpoint could not be read, written, or matched to the
/// campaign being resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file exists but does not decode as a checkpoint.
    Parse {
        /// The checkpoint path.
        path: PathBuf,
        /// What failed.
        message: String,
    },
    /// The file is a checkpoint of an unsupported schema version.
    Version {
        /// The schema string found in the file.
        found: String,
    },
    /// The checkpoint belongs to a different campaign.
    Mismatch {
        /// Which identity field disagrees.
        field: &'static str,
        /// The resuming campaign's value.
        expected: String,
        /// The checkpoint's value.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            CheckpointError::Parse { path, message } => {
                write!(f, "checkpoint {}: {message}", path.display())
            }
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint schema {found:?} (this build reads {CHECKPOINT_SCHEMA:?})"
            ),
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint belongs to a different campaign: {field} is {found:?}, \
                 resuming run has {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Campaign identity: a human-readable digest of everything that shapes
/// trial trajectories. Two campaigns with equal fingerprints produce
/// bit-identical trials for equal `(base_seed, trial index)`.
pub fn fingerprint(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
) -> String {
    let src = match source {
        ContactSource::Homogeneous {
            nodes,
            mu,
            duration,
        } => format!(
            "hom(n={nodes},mu={},T={})",
            f64_to_hex(*mu),
            f64_to_hex(*duration)
        ),
        ContactSource::Trace(t) => format!(
            "trace(n={},T={},len={})",
            t.nodes(),
            f64_to_hex(t.duration()),
            t.len()
        ),
    };
    let faults = config
        .faults
        .as_ref()
        .map_or("none".to_string(), |f| f.summary());
    format!(
        "{}|trials={trials}|seed={base_seed}|items={}|rho={}|bin={}|warmup={}|util={}|\
         servers={:?}|shifts={}|src={src}|faults={faults}",
        policy.label(),
        config.items,
        config.rho,
        f64_to_hex(config.bin),
        f64_to_hex(config.warmup_fraction),
        config.utility.kind(),
        config.dedicated_servers,
        config.demand_shifts.len(),
    )
}

/// One finished trial in a checkpoint: the outcome, or the panic message
/// of a trial the runner skipped-and-reported.
pub type TrialRecord = Result<TrialOutcome, String>;

/// A campaign snapshot: identity plus every completed trial.
#[derive(Debug)]
pub struct CampaignCheckpoint {
    /// Campaign identity (see [`fingerprint`]).
    pub fingerprint: String,
    /// Seed of trial 0; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Total planned trials.
    pub trials: usize,
    /// The CLI invocation that launched the campaign (`--resume` replays
    /// it).
    pub cli_args: Vec<String>,
    /// `(trial index, outcome-or-error)`, in trial order.
    pub completed: Vec<(usize, TrialRecord)>,
}

fn outcome_to_json(outcome: &TrialOutcome) -> Json {
    Json::obj([
        ("label", Json::from(outcome.label.as_str())),
        (
            "final_replicas",
            Json::Array(outcome.final_replicas.iter().map(|&r| r.into()).collect()),
        ),
        ("metrics", outcome.metrics.to_json()),
    ])
}

fn outcome_from_json(v: &Json) -> Result<TrialOutcome, String> {
    let label = v
        .get("label")
        .and_then(Json::as_str)
        .ok_or("trial outcome: missing label")?
        .to_string();
    let final_replicas = v
        .get("final_replicas")
        .and_then(Json::as_array)
        .ok_or("trial outcome: missing final_replicas")?
        .iter()
        .map(|e| {
            e.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "trial outcome: bad replica count".to_string())
        })
        .collect::<Result<Vec<u32>, String>>()?;
    let metrics = Metrics::from_json(v.get("metrics").ok_or("trial outcome: missing metrics")?)?;
    Ok(TrialOutcome {
        metrics,
        final_replicas,
        label,
    })
}

impl CampaignCheckpoint {
    /// Encode as the one-object JSON document [`CampaignCheckpoint::save`]
    /// writes.
    pub fn to_json(&self) -> Json {
        let completed = self
            .completed
            .iter()
            .map(|(trial, record)| match record {
                Ok(outcome) => Json::obj([
                    ("trial", Json::from(*trial as u64)),
                    ("outcome", outcome_to_json(outcome)),
                ]),
                Err(message) => Json::obj([
                    ("trial", Json::from(*trial as u64)),
                    ("error", Json::from(message.as_str())),
                ]),
            })
            .collect();
        Json::obj([
            ("schema", Json::from(CHECKPOINT_SCHEMA)),
            ("fingerprint", self.fingerprint.as_str().into()),
            ("base_seed", self.base_seed.into()),
            ("trials", (self.trials as u64).into()),
            (
                "cli_args",
                Json::Array(self.cli_args.iter().map(|a| a.as_str().into()).collect()),
            ),
            ("completed", Json::Array(completed)),
        ])
    }

    /// Decode [`CampaignCheckpoint::to_json`]'s output.
    pub fn from_json(v: &Json) -> Result<CampaignCheckpoint, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema field")?;
        if schema != CHECKPOINT_SCHEMA {
            // Surfaced as CheckpointError::Version by `load`.
            return Err(format!("schema:{schema}"));
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let base_seed = v
            .get("base_seed")
            .and_then(Json::as_u64)
            .ok_or("missing base_seed")?;
        let trials = v
            .get("trials")
            .and_then(Json::as_u64)
            .ok_or("missing trials")? as usize;
        let cli_args = v
            .get("cli_args")
            .and_then(Json::as_array)
            .ok_or("missing cli_args")?
            .iter()
            .map(|a| {
                a.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string cli arg".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?;
        let mut completed = Vec::new();
        for entry in v
            .get("completed")
            .and_then(Json::as_array)
            .ok_or("missing completed list")?
        {
            let trial = entry
                .get("trial")
                .and_then(Json::as_u64)
                .ok_or("completed entry: missing trial index")? as usize;
            if trial >= trials {
                return Err(format!("completed trial {trial} out of range 0..{trials}"));
            }
            let record = if let Some(outcome) = entry.get("outcome") {
                Ok(outcome_from_json(outcome)?)
            } else if let Some(error) = entry.get("error").and_then(Json::as_str) {
                Err(error.to_string())
            } else {
                return Err(format!(
                    "completed trial {trial}: neither outcome nor error"
                ));
            };
            if completed
                .iter()
                .any(|(existing, _): &(usize, TrialRecord)| *existing == trial)
            {
                return Err(format!("completed trial {trial} listed twice"));
            }
            completed.push((trial, record));
        }
        completed.sort_by_key(|(trial, _)| *trial);
        Ok(CampaignCheckpoint {
            fingerprint,
            base_seed,
            trials,
            cli_args,
            completed,
        })
    }

    /// Write atomically to `path` (temp file + rename): the previous
    /// checkpoint survives any crash mid-write.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut file = AtomicFile::create(path).map_err(io_err)?;
        let mut text = self.to_json().to_string();
        text.push('\n');
        file.write_all(text.as_bytes()).map_err(io_err)?;
        file.commit().map_err(io_err)
    }

    /// Read and decode the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<CampaignCheckpoint, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let parse_err = |message: String| CheckpointError::Parse {
            path: path.to_path_buf(),
            message,
        };
        let v = Json::parse(text.trim()).map_err(|e| parse_err(format!("not valid JSON: {e}")))?;
        CampaignCheckpoint::from_json(&v).map_err(|message| match message.strip_prefix("schema:") {
            Some(found) => CheckpointError::Version {
                found: found.to_string(),
            },
            None => parse_err(message),
        })
    }

    /// Check that this checkpoint belongs to the campaign identified by
    /// `(fingerprint, trials, base_seed)`.
    pub fn check_identity(
        &self,
        fingerprint: &str,
        trials: usize,
        base_seed: u64,
    ) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::Mismatch {
                field: "fingerprint",
                expected: fingerprint.to_string(),
                found: self.fingerprint.clone(),
            });
        }
        if self.trials != trials {
            return Err(CheckpointError::Mismatch {
                field: "trials",
                expected: trials.to_string(),
                found: self.trials.to_string(),
            });
        }
        if self.base_seed != base_seed {
            return Err(CheckpointError::Mismatch {
                field: "base_seed",
                expected: base_seed.to_string(),
                found: self.base_seed.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_trial;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn setup() -> (SimConfig, ContactSource) {
        let config = SimConfig::builder(6, 2)
            .demand(Popularity::pareto(6, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(6, 0.08, 600.0);
        (config, source)
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("impatience-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn outcome_round_trip_is_bit_exact() {
        let (config, source) = setup();
        let outcome = run_trial(&config, &source, PolicyKind::qcr_default(), 5);
        let back = outcome_from_json(&outcome_to_json(&outcome)).unwrap();
        assert_eq!(back.label, outcome.label);
        assert_eq!(back.final_replicas, outcome.final_replicas);
        assert_eq!(
            back.metrics.average_observed_rate(0.2).to_bits(),
            outcome.metrics.average_observed_rate(0.2).to_bits()
        );
        assert_eq!(
            back.metrics.observed_rate_series(),
            outcome.metrics.observed_rate_series()
        );
    }

    #[test]
    fn save_load_round_trip_via_text() {
        let (config, source) = setup();
        let policy = PolicyKind::qcr_default();
        let outcome = run_trial(&config, &source, policy.clone(), 9);
        let ckpt = CampaignCheckpoint {
            fingerprint: fingerprint(&config, &source, &policy, 4, 9),
            base_seed: 9,
            trials: 4,
            cli_args: vec!["simulate".into(), "--trials".into(), "4".into()],
            completed: vec![(0, Ok(outcome)), (2, Err("boom".into()))],
        };
        let path = scratch("roundtrip.ckpt.json");
        ckpt.save(&path).unwrap();
        let back = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(back.fingerprint, ckpt.fingerprint);
        assert_eq!(back.base_seed, 9);
        assert_eq!(back.trials, 4);
        assert_eq!(back.cli_args, ckpt.cli_args);
        assert_eq!(back.completed.len(), 2);
        assert!(back.completed[0].1.is_ok());
        assert_eq!(back.completed[1].0, 2);
        assert_eq!(back.completed[1].1.as_ref().unwrap_err(), "boom");
        back.check_identity(&ckpt.fingerprint, 4, 9).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_wrong_schema_and_mismatches() {
        let path = scratch("garbage.ckpt.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(&path),
            Err(CheckpointError::Parse { .. })
        ));
        std::fs::write(
            &path,
            r#"{"schema":"impatience-checkpoint/99","fingerprint":"x","base_seed":0,"trials":1,"cli_args":[],"completed":[]}"#,
        )
        .unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(&path),
            Err(CheckpointError::Version { found }) if found == "impatience-checkpoint/99"
        ));
        assert!(matches!(
            CampaignCheckpoint::load(Path::new("/nonexistent/nope.ckpt")),
            Err(CheckpointError::Io { .. })
        ));

        let ckpt = CampaignCheckpoint {
            fingerprint: "A".into(),
            base_seed: 1,
            trials: 2,
            cli_args: vec![],
            completed: vec![],
        };
        assert!(matches!(
            ckpt.check_identity("B", 2, 1),
            Err(CheckpointError::Mismatch {
                field: "fingerprint",
                ..
            })
        ));
        assert!(matches!(
            ckpt.check_identity("A", 3, 1),
            Err(CheckpointError::Mismatch {
                field: "trials",
                ..
            })
        ));
        assert!(matches!(
            ckpt.check_identity("A", 2, 7),
            Err(CheckpointError::Mismatch {
                field: "base_seed",
                ..
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_separates_campaigns() {
        let (config, source) = setup();
        let policy = PolicyKind::qcr_default();
        let base = fingerprint(&config, &source, &policy, 10, 1);
        assert_eq!(base, fingerprint(&config, &source, &policy, 10, 1));
        assert_ne!(base, fingerprint(&config, &source, &policy, 11, 1));
        assert_ne!(base, fingerprint(&config, &source, &policy, 10, 2));
        let mut degraded = config.clone();
        degraded.faults = Some(crate::faults::FaultConfig {
            drop: Some(crate::faults::ContactDrop {
                p: 0.1,
                mean_burst: 1.0,
            }),
            ..Default::default()
        });
        assert_ne!(base, fingerprint(&degraded, &source, &policy, 10, 1));
    }
}
