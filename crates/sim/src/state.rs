//! Mutable simulation state: node caches and replica bookkeeping.
//!
//! Caches follow the paper's rules (§5.1, §6.1): fixed capacity `ρ`,
//! random replacement on insertion, and one *sticky* replica per item that
//! can never be erased — the initial seeder keeps its copy, preventing
//! absorbing states where an item vanishes from the system.

use impatience_core::allocation::{AllocationMatrix, BitSet};
use impatience_core::rng::Xoshiro256;

/// Which occupant a full cache evicts on insertion.
///
/// The paper's model and analysis (Eq. 7) assume **random** replacement;
/// the alternatives are provided for ablation — recency-based policies
/// couple the cache contents to the request process and bias the
/// allocation away from the ψ-driven equilibrium.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Uniformly random non-sticky occupant (the paper's rule).
    #[default]
    Random,
    /// Least recently *used* (an insertion or a served request counts as
    /// a use).
    Lru,
    /// Oldest insertion (first in, first out).
    Fifo,
}

/// One node's cache: `ρ` slots of item ids plus an optional pinned
/// (sticky) slot.
#[derive(Clone, Debug)]
pub struct NodeCache {
    /// Item held in each occupied slot.
    slots: Vec<u32>,
    /// Fast membership lookup.
    has: BitSet,
    /// Capacity (ρ).
    capacity: usize,
    /// Index into `slots` of the sticky item, if any.
    sticky_slot: Option<usize>,
    /// Eviction rule.
    eviction: EvictionPolicy,
    /// Per-slot timestamp (insertion for FIFO, last use for LRU).
    stamps: Vec<u64>,
    /// Logical clock driving the stamps.
    clock: u64,
}

impl NodeCache {
    /// An empty cache of the given capacity over a catalog of `items`,
    /// with random replacement.
    pub fn new(capacity: usize, items: usize) -> Self {
        NodeCache {
            slots: Vec::with_capacity(capacity),
            has: BitSet::new(items),
            capacity,
            sticky_slot: None,
            eviction: EvictionPolicy::Random,
            stamps: Vec::with_capacity(capacity),
            clock: 0,
        }
    }

    /// Change the eviction rule (ablation hook).
    pub fn set_eviction(&mut self, policy: EvictionPolicy) {
        self.eviction = policy;
    }

    /// Record a *use* of `item` (a request served from this cache);
    /// relevant under [`EvictionPolicy::Lru`] only.
    pub fn touch(&mut self, item: u32) {
        if self.eviction != EvictionPolicy::Lru {
            return;
        }
        if let Some(pos) = self.slots.iter().position(|&i| i == item) {
            self.clock += 1;
            self.stamps[pos] = self.clock;
        }
    }

    /// Capacity ρ.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether this node holds `item`.
    #[inline]
    pub fn holds(&self, item: u32) -> bool {
        self.has.contains(item as usize)
    }

    /// The item pinned as sticky here, if any.
    pub fn sticky_item(&self) -> Option<u32> {
        self.sticky_slot.map(|s| self.slots[s])
    }

    /// Items currently cached.
    pub fn items(&self) -> &[u32] {
        &self.slots
    }

    /// Pin `item` as this node's sticky replica (inserting it if absent).
    ///
    /// # Panics
    /// Panics if a different sticky item is already pinned, or if the
    /// cache is full of *other* items and has no free slot (pin sticky
    /// items before filling).
    pub fn pin_sticky(&mut self, item: u32) {
        assert!(
            self.sticky_slot.is_none(),
            "cache already has a sticky item"
        );
        if let Some(pos) = self.slots.iter().position(|&i| i == item) {
            self.sticky_slot = Some(pos);
            return;
        }
        assert!(
            self.slots.len() < self.capacity,
            "no free slot to pin the sticky replica"
        );
        self.clock += 1;
        self.slots.push(item);
        self.stamps.push(self.clock);
        self.has.insert(item as usize);
        self.sticky_slot = Some(self.slots.len() - 1);
    }

    /// Fill a free slot with `item` (no eviction). Returns `false` if the
    /// item is already present.
    ///
    /// # Panics
    /// Panics if the cache is full.
    pub fn fill(&mut self, item: u32) -> bool {
        if self.holds(item) {
            return false;
        }
        assert!(
            self.slots.len() < self.capacity,
            "cache is full; use insert_evict"
        );
        self.clock += 1;
        self.slots.push(item);
        self.stamps.push(self.clock);
        self.has.insert(item as usize);
        true
    }

    /// Replace the specific occupant `old` with `new` (used by the
    /// hill-climbing baseline, which chooses its victim deliberately).
    /// Returns `false` (unchanged) if `old` is absent, sticky, or `new`
    /// is already present.
    pub fn swap_item(&mut self, old: u32, new: u32) -> bool {
        if !self.holds(old) || self.holds(new) {
            return false;
        }
        let Some(pos) = self.slots.iter().position(|&i| i == old) else {
            return false;
        };
        if Some(pos) == self.sticky_slot {
            return false;
        }
        self.has.remove(old as usize);
        self.clock += 1;
        self.slots[pos] = new;
        self.stamps[pos] = self.clock;
        self.has.insert(new as usize);
        true
    }

    /// Insert `item`, evicting a uniformly random non-sticky occupant if
    /// the cache is full. Returns the evicted item, if any.
    ///
    /// Returns `Err(())` without modification when the item is already
    /// present, or when every slot is sticky (cannot evict).
    #[allow(clippy::result_unit_err)] // rejection carries no information beyond itself
    pub fn insert_evict(&mut self, item: u32, rng: &mut Xoshiro256) -> Result<Option<u32>, ()> {
        if self.holds(item) || self.capacity == 0 {
            return Err(());
        }
        if self.slots.len() < self.capacity {
            self.clock += 1;
            self.slots.push(item);
            self.stamps.push(self.clock);
            self.has.insert(item as usize);
            return Ok(None);
        }
        // Choose a victim slot among non-sticky slots.
        let candidates = self.slots.len() - usize::from(self.sticky_slot.is_some());
        if candidates == 0 {
            return Err(());
        }
        let pick = match self.eviction {
            EvictionPolicy::Random => {
                let mut pick = rng.index(candidates);
                if let Some(sticky) = self.sticky_slot {
                    if pick >= sticky {
                        pick += 1;
                    }
                }
                pick
            }
            // LRU and FIFO: smallest stamp among non-sticky slots.
            EvictionPolicy::Lru | EvictionPolicy::Fifo => (0..self.slots.len())
                .filter(|&s| Some(s) != self.sticky_slot)
                .min_by_key(|&s| self.stamps[s])
                .expect("candidates > 0"),
        };
        let evicted = self.slots[pick];
        self.has.remove(evicted as usize);
        self.clock += 1;
        self.slots[pick] = item;
        self.stamps[pick] = self.clock;
        self.has.insert(item as usize);
        Ok(Some(evicted))
    }

    /// Erase a uniformly random non-sticky occupant (fault injection:
    /// a slot failure loses its content without a replacement arriving).
    /// Returns the lost item, or `None` when nothing is erasable.
    pub fn drop_random_non_sticky(&mut self, rng: &mut Xoshiro256) -> Option<u32> {
        let candidates = self.slots.len() - usize::from(self.sticky_slot.is_some());
        if candidates == 0 {
            return None;
        }
        let mut pick = rng.index(candidates);
        if let Some(sticky) = self.sticky_slot {
            if pick >= sticky {
                pick += 1;
            }
        }
        let lost = self.slots.remove(pick);
        self.stamps.remove(pick);
        self.has.remove(lost as usize);
        // The sticky slot's index shifts down when a lower slot vanishes.
        if let Some(sticky) = self.sticky_slot {
            if sticky > pick {
                self.sticky_slot = Some(sticky - 1);
            }
        }
        Some(lost)
    }
}

/// Global mutable simulation state.
#[derive(Clone, Debug)]
pub struct SimState {
    /// Per-node caches.
    pub caches: Vec<NodeCache>,
    /// Live replica count per item (kept in sync with the caches).
    pub replicas: Vec<u32>,
    /// Sticky-seed node of each item (`usize::MAX` = none).
    pub sticky_owner: Vec<usize>,
    /// Total item copies transferred between nodes (energy proxy).
    pub transmissions: u64,
}

impl SimState {
    /// Apply an eviction rule to every cache (ablation hook; call before
    /// seeding).
    pub fn set_eviction(&mut self, policy: EvictionPolicy) {
        for cache in &mut self.caches {
            cache.set_eviction(policy);
        }
    }
}

impl SimState {
    /// Empty caches, no sticky seeds (pure P2P: every node has capacity
    /// `rho`).
    pub fn new(nodes: usize, items: usize, rho: usize) -> Self {
        SimState {
            caches: (0..nodes).map(|_| NodeCache::new(rho, items)).collect(),
            replicas: vec![0; items],
            sticky_owner: vec![usize::MAX; items],
            transmissions: 0,
        }
    }

    /// Dedicated population: nodes `0..servers` carry `rho`-slot caches,
    /// the remaining (client) nodes have zero capacity.
    pub fn new_dedicated(nodes: usize, servers: usize, items: usize, rho: usize) -> Self {
        assert!(servers <= nodes);
        SimState {
            caches: (0..nodes)
                .map(|n| NodeCache::new(if n < servers { rho } else { 0 }, items))
                .collect(),
            replicas: vec![0; items],
            sticky_owner: vec![usize::MAX; items],
            transmissions: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.caches.len()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.replicas.len()
    }

    /// QCR warm start (§6.1): pin item `i`'s sticky replica on a server
    /// (round robin in random server order), then fill every remaining
    /// slot with distinct random items so the global cache starts full.
    /// Zero-capacity (client) caches are skipped.
    pub fn seed_sticky_and_fill(&mut self, rng: &mut Xoshiro256) {
        let items = self.items();
        let mut node_order: Vec<usize> = (0..self.nodes())
            .filter(|&n| self.caches[n].capacity() > 0)
            .collect();
        assert!(!node_order.is_empty(), "no cache-carrying nodes to seed");
        let nodes = node_order.len();
        rng.shuffle(&mut node_order);
        for item in 0..items {
            let node = node_order[item % nodes];
            if self.caches[node].sticky_item().is_none()
                && self.caches[node].len() < self.caches[node].capacity()
            {
                self.caches[node].pin_sticky(item as u32);
                self.sticky_owner[item] = node;
                self.replicas[item] += 1;
            } else if !self.caches[node].holds(item as u32) {
                // More items than nodes: overflow seeds are regular
                // (non-sticky) copies on the next nodes with room.
                if self.caches[node].len() < self.caches[node].capacity() {
                    self.caches[node].fill(item as u32);
                    self.replicas[item] += 1;
                }
            }
        }
        // Fill remaining slots with random distinct items.
        for &node in &node_order {
            let mut guard = 0;
            while self.caches[node].len() < self.caches[node].capacity() {
                let item = rng.index(items) as u32;
                if self.caches[node].fill(item) {
                    self.replicas[item as usize] += 1;
                }
                guard += 1;
                if guard > 100 * items {
                    break; // catalog smaller than capacity: leave free
                }
            }
        }
    }

    /// Number of cache-carrying (server) nodes.
    pub fn servers(&self) -> usize {
        self.caches.iter().filter(|c| c.capacity() > 0).count()
    }

    /// Pin caches to a precomputed allocation (for the fixed-allocation
    /// competitors). No sticky slots; the policies never mutate caches.
    /// Column `k` of the matrix maps to the `k`-th cache-carrying node
    /// (in a dedicated population, servers occupy the low node ids).
    pub fn load_allocation(&mut self, alloc: &AllocationMatrix) {
        assert_eq!(
            alloc.servers(),
            self.servers(),
            "allocation server count mismatch"
        );
        assert_eq!(alloc.items(), self.items());
        let server_ids: Vec<usize> = (0..self.nodes())
            .filter(|&n| self.caches[n].capacity() > 0)
            .collect();
        for (col, &node) in server_ids.iter().enumerate() {
            for item in alloc.cache_of(col) {
                if self.caches[node].fill(item as u32) {
                    self.replicas[item] += 1;
                }
            }
        }
    }

    /// Fault injection: erase a random non-sticky slot of `server`,
    /// keeping the replica count in sync. Returns the lost item, if any.
    pub fn fail_cache_slot(&mut self, server: usize, rng: &mut Xoshiro256) -> Option<u32> {
        let lost = self.caches[server].drop_random_non_sticky(rng)?;
        self.replicas[lost as usize] -= 1;
        Some(lost)
    }

    /// Copy `item` into `to`'s cache with random replacement (respecting
    /// sticky slots). Returns `true` if a new replica was created.
    pub fn replicate(&mut self, item: u32, to: usize, rng: &mut Xoshiro256) -> bool {
        match self.caches[to].insert_evict(item, rng) {
            Ok(evicted) => {
                self.replicas[item as usize] += 1;
                if let Some(old) = evicted {
                    self.replicas[old as usize] -= 1;
                }
                self.transmissions += 1;
                true
            }
            Err(()) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_fill_and_membership() {
        let mut c = NodeCache::new(3, 10);
        assert!(c.fill(4));
        assert!(!c.fill(4));
        assert!(c.fill(7));
        assert!(c.holds(4));
        assert!(!c.holds(5));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn eviction_is_random_but_never_sticky() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut c = NodeCache::new(3, 10);
        c.pin_sticky(0);
        c.fill(1);
        c.fill(2);
        // Insert many items: 0 must survive every eviction.
        for item in 3..10u32 {
            let evicted = c.insert_evict(item, &mut rng).unwrap();
            assert_ne!(evicted, Some(0), "sticky item evicted");
            assert!(c.holds(0));
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut rng = Xoshiro256::seed_from_u64(40);
        let mut c = NodeCache::new(3, 10);
        c.set_eviction(EvictionPolicy::Fifo);
        c.fill(0);
        c.fill(1);
        c.fill(2);
        assert_eq!(c.insert_evict(3, &mut rng), Ok(Some(0)));
        assert_eq!(c.insert_evict(4, &mut rng), Ok(Some(1)));
        assert!(c.holds(2) && c.holds(3) && c.holds(4));
    }

    #[test]
    fn lru_touch_protects_recently_used() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut c = NodeCache::new(3, 10);
        c.set_eviction(EvictionPolicy::Lru);
        c.fill(0);
        c.fill(1);
        c.fill(2);
        // Without a touch, item 0 (oldest) would go; touching it shifts
        // the eviction to item 1.
        c.touch(0);
        assert_eq!(c.insert_evict(3, &mut rng), Ok(Some(1)));
        assert!(c.holds(0));
    }

    #[test]
    fn lru_respects_sticky() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut c = NodeCache::new(2, 10);
        c.set_eviction(EvictionPolicy::Lru);
        c.pin_sticky(0); // oldest stamp, but pinned
        c.fill(1);
        assert_eq!(c.insert_evict(2, &mut rng), Ok(Some(1)));
        assert!(c.holds(0));
    }

    #[test]
    fn touch_is_noop_outside_lru() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        let mut c = NodeCache::new(2, 10);
        c.set_eviction(EvictionPolicy::Fifo);
        c.fill(0);
        c.fill(1);
        c.touch(0); // FIFO ignores uses
        assert_eq!(c.insert_evict(2, &mut rng), Ok(Some(0)));
    }

    #[test]
    fn insert_existing_is_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut c = NodeCache::new(2, 5);
        c.fill(1);
        assert_eq!(c.insert_evict(1, &mut rng), Err(()));
    }

    #[test]
    fn all_sticky_cache_rejects_eviction() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut c = NodeCache::new(1, 5);
        c.pin_sticky(2);
        assert_eq!(c.insert_evict(4, &mut rng), Err(()));
        assert!(c.holds(2));
    }

    #[test]
    fn pin_sticky_on_existing_item() {
        let mut c = NodeCache::new(2, 5);
        c.fill(3);
        c.pin_sticky(3);
        assert_eq!(c.sticky_item(), Some(3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already has a sticky item")]
    fn second_sticky_rejected() {
        let mut c = NodeCache::new(3, 5);
        c.pin_sticky(0);
        c.pin_sticky(1);
    }

    #[test]
    fn seed_sticky_and_fill_invariants() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut state = SimState::new(50, 50, 5);
        state.seed_sticky_and_fill(&mut rng);
        // Every item has a sticky owner and ≥ 1 replica.
        for item in 0..50 {
            assert!(
                state.sticky_owner[item] != usize::MAX,
                "item {item} unseeded"
            );
            assert!(state.replicas[item] >= 1);
            let owner = state.sticky_owner[item];
            assert_eq!(state.caches[owner].sticky_item(), Some(item as u32));
        }
        // Caches are full and replica counts consistent.
        let mut recount = vec![0u32; 50];
        for c in &state.caches {
            assert_eq!(c.len(), 5);
            for &i in c.items() {
                recount[i as usize] += 1;
            }
        }
        assert_eq!(recount, state.replicas);
        // Budget: 250 slots in use.
        assert_eq!(state.replicas.iter().map(|&r| r as u64).sum::<u64>(), 250);
    }

    #[test]
    fn seed_with_more_items_than_nodes() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut state = SimState::new(4, 10, 3);
        state.seed_sticky_and_fill(&mut rng);
        // Only 4 sticky seeds possible; every node has exactly one.
        let sticky_count = state
            .sticky_owner
            .iter()
            .filter(|&&o| o != usize::MAX)
            .count();
        assert_eq!(sticky_count, 4);
        for c in &state.caches {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn drop_random_keeps_sticky_tracked() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut c = NodeCache::new(4, 10);
        c.fill(1);
        c.fill(2);
        c.pin_sticky(7); // sticky lands in slot 2
        c.fill(3);
        for _ in 0..3 {
            let lost = c.drop_random_non_sticky(&mut rng).unwrap();
            assert_ne!(lost, 7, "sticky item erased");
            assert_eq!(c.sticky_item(), Some(7), "sticky slot index drifted");
        }
        assert_eq!(c.len(), 1);
        assert!(c.drop_random_non_sticky(&mut rng).is_none());
        assert!(c.holds(7));
    }

    #[test]
    fn fail_cache_slot_syncs_replicas() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let mut state = SimState::new(2, 5, 2);
        state.caches[0].fill(1);
        state.caches[0].fill(4);
        state.replicas = vec![0, 1, 0, 0, 1];
        let lost = state.fail_cache_slot(0, &mut rng).unwrap();
        assert_eq!(state.replicas[lost as usize], 0);
        assert_eq!(state.replicas.iter().sum::<u32>(), 1);
        // Empty (client) caches fail without effect.
        assert!(state.fail_cache_slot(1, &mut rng).is_none());
    }

    #[test]
    fn replicate_updates_counts() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut state = SimState::new(3, 5, 2);
        state.caches[0].fill(1);
        state.replicas[1] = 1;
        assert!(state.replicate(1, 2, &mut rng));
        assert_eq!(state.replicas[1], 2);
        assert_eq!(state.transmissions, 1);
        // Duplicate insert is a no-op.
        assert!(!state.replicate(1, 2, &mut rng));
        assert_eq!(state.transmissions, 1);
    }

    #[test]
    fn replicate_with_eviction_keeps_global_count() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut state = SimState::new(2, 4, 1);
        state.caches[0].fill(0);
        state.caches[1].fill(1);
        state.replicas = vec![1, 1, 0, 0];
        assert!(state.replicate(2, 1, &mut rng));
        assert_eq!(state.replicas, vec![1, 0, 1, 0]);
        let total: u32 = state.replicas.iter().sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn load_allocation_matches_matrix() {
        let counts = impatience_core::allocation::ReplicaCounts::new(vec![2, 1, 0], 3);
        let alloc = AllocationMatrix::from_counts(&counts, 2);
        let mut state = SimState::new(3, 3, 2);
        state.load_allocation(&alloc);
        assert_eq!(state.replicas, vec![2, 1, 0]);
    }
}
