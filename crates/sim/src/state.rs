//! Mutable simulation state: node caches and replica bookkeeping.
//!
//! Caches follow the paper's rules (§5.1, §6.1): fixed capacity `ρ`,
//! random replacement on insertion, and one *sticky* replica per item that
//! can never be erased — the initial seeder keeps its copy, preventing
//! absorbing states where an item vanishes from the system.
//!
//! # Storage layout
//!
//! Cache state lives in a struct-of-arrays [`CacheArena`]: one flat slot
//! array (stride ρ), one flat stamp array, and per-node `len`/`sticky`/
//! `clock` vectors, all indexed by node id. Compared to the earlier
//! one-heap-object-per-node layout (a `Vec` of per-node caches, each with
//! its own slot vector and membership bitset) this removes ~5 allocations
//! per node and the per-node `|I|`-bit membership set — at n = 10⁶ nodes
//! the old layout cost gigabytes and a pointer chase per lookup, the
//! arena costs `n·ρ` words and an ≤ ρ-element scan. Cache-carrying nodes
//! occupy the id prefix `0..cache_nodes` (in a dedicated population the
//! servers come first; in pure P2P every node carries a cache), so
//! capacity is a branch, not a lookup, and a contiguous node-id range maps
//! to a contiguous arena range — which is what lets the sharded engine
//! split one arena into per-shard blocks without copying.
//!
//! Per-node views ([`CacheRef`]/[`CacheMut`]) expose the same operations
//! the per-node objects had, with identical RNG consumption and victim
//! selection, so trajectories are bit-identical to the previous layout.

use impatience_core::allocation::AllocationMatrix;
use impatience_core::rng::Xoshiro256;

/// Which occupant a full cache evicts on insertion.
///
/// The paper's model and analysis (Eq. 7) assume **random** replacement;
/// the alternatives are provided for ablation — recency-based policies
/// couple the cache contents to the request process and bias the
/// allocation away from the ψ-driven equilibrium.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Uniformly random non-sticky occupant (the paper's rule).
    #[default]
    Random,
    /// Least recently *used* (an insertion or a served request counts as
    /// a use).
    Lru,
    /// Oldest insertion (first in, first out).
    Fifo,
}

/// `sticky` sentinel: no pinned slot.
const NO_STICKY: u32 = u32::MAX;

/// Struct-of-arrays cache state for a whole population.
///
/// Nodes `0..cache_nodes` carry `rho`-slot caches; the rest (clients in a
/// dedicated population) have zero capacity and no arena storage.
#[derive(Clone, Debug)]
pub struct CacheArena {
    /// Total population size (servers + clients).
    nodes: usize,
    /// Nodes `0..cache_nodes` carry caches.
    cache_nodes: usize,
    /// Per-cache capacity ρ (the slot stride).
    rho: usize,
    /// Item held in each slot: node `n` owns `slots[n·ρ .. n·ρ + len[n]]`.
    slots: Vec<u32>,
    /// Per-slot timestamp (insertion for FIFO, last use for LRU).
    stamps: Vec<u64>,
    /// Occupied-slot count per cache-carrying node.
    len: Vec<u32>,
    /// Slot index of the sticky item per node ([`NO_STICKY`] = none).
    sticky: Vec<u32>,
    /// Logical clock driving the stamps, per node.
    clock: Vec<u64>,
    /// Eviction rule (arena-wide; the ablation hook applies globally).
    eviction: EvictionPolicy,
}

impl CacheArena {
    /// Empty caches: nodes `0..cache_nodes` get capacity `rho`, the rest
    /// capacity zero.
    pub fn new(nodes: usize, cache_nodes: usize, rho: usize) -> Self {
        assert!(cache_nodes <= nodes);
        CacheArena {
            nodes,
            cache_nodes,
            rho,
            slots: vec![0; cache_nodes * rho],
            stamps: vec![0; cache_nodes * rho],
            len: vec![0; cache_nodes],
            sticky: vec![NO_STICKY; cache_nodes],
            clock: vec![0; cache_nodes],
            eviction: EvictionPolicy::Random,
        }
    }

    /// Reset to the freshly-constructed state for the given shape,
    /// reusing existing allocations (the scratch-pool hook). The result
    /// is indistinguishable from [`CacheArena::new`].
    pub fn reset(&mut self, nodes: usize, cache_nodes: usize, rho: usize) {
        assert!(cache_nodes <= nodes);
        self.nodes = nodes;
        self.cache_nodes = cache_nodes;
        self.rho = rho;
        self.slots.clear();
        self.slots.resize(cache_nodes * rho, 0);
        self.stamps.clear();
        self.stamps.resize(cache_nodes * rho, 0);
        self.len.clear();
        self.len.resize(cache_nodes, 0);
        self.sticky.clear();
        self.sticky.resize(cache_nodes, NO_STICKY);
        self.clock.clear();
        self.clock.resize(cache_nodes, 0);
        self.eviction = EvictionPolicy::Random;
    }

    /// Total population size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of cache-carrying nodes (capacity > 0), i.e. servers.
    pub fn cache_nodes(&self) -> usize {
        if self.rho > 0 {
            self.cache_nodes
        } else {
            0
        }
    }

    /// Per-cache capacity of node `n` (ρ for servers, 0 for clients).
    #[inline]
    pub fn capacity_of(&self, n: usize) -> usize {
        if n < self.cache_nodes {
            self.rho
        } else {
            0
        }
    }

    /// Set the eviction rule (arena-wide ablation hook; call before
    /// seeding).
    pub fn set_eviction(&mut self, policy: EvictionPolicy) {
        self.eviction = policy;
    }

    /// Whether node `n` holds `item` — an ≤ ρ-element scan of its slots.
    #[inline]
    pub fn holds(&self, n: usize, item: u32) -> bool {
        if n >= self.cache_nodes {
            return false;
        }
        let base = n * self.rho;
        self.slots[base..base + self.len[n] as usize].contains(&item)
    }

    /// Shared view of node `n`'s cache.
    #[inline]
    pub fn node(&self, n: usize) -> CacheRef<'_> {
        assert!(n < self.nodes);
        CacheRef { arena: self, n }
    }

    /// Mutable view of node `n`'s cache.
    #[inline]
    pub fn node_mut(&mut self, n: usize) -> CacheMut<'_> {
        assert!(n < self.nodes);
        CacheMut { arena: self, n }
    }

    /// Iterate over all per-node views in node order.
    pub fn iter(&self) -> impl Iterator<Item = CacheRef<'_>> {
        (0..self.nodes).map(|n| CacheRef { arena: self, n })
    }

    /// Split a pure-P2P arena into contiguous node blocks (the sharded
    /// engine's per-shard states). `block_sizes` must sum to the node
    /// count; block `s` receives nodes `[Σ_{t<s} size_t, ...)` renumbered
    /// from zero. Requires every node to carry a cache (pure P2P).
    pub(crate) fn split_into_blocks(mut self, block_sizes: &[usize]) -> Vec<CacheArena> {
        assert_eq!(self.cache_nodes, self.nodes, "split requires pure P2P");
        assert_eq!(block_sizes.iter().sum::<usize>(), self.nodes);
        let mut out = Vec::with_capacity(block_sizes.len());
        // Walk blocks back-to-front so split_off peels the tail cheaply.
        let mut tail: Vec<CacheArena> = Vec::with_capacity(block_sizes.len());
        for &size in block_sizes.iter().rev() {
            let keep = self.nodes - size;
            tail.push(CacheArena {
                nodes: size,
                cache_nodes: size,
                rho: self.rho,
                slots: self.slots.split_off(keep * self.rho),
                stamps: self.stamps.split_off(keep * self.rho),
                len: self.len.split_off(keep),
                sticky: self.sticky.split_off(keep),
                clock: self.clock.split_off(keep),
                eviction: self.eviction,
            });
            self.nodes = keep;
            self.cache_nodes = keep;
        }
        out.extend(tail.into_iter().rev());
        out
    }
}

/// Shared view of one node's cache inside a [`CacheArena`].
#[derive(Clone, Copy)]
pub struct CacheRef<'a> {
    arena: &'a CacheArena,
    n: usize,
}

impl CacheRef<'_> {
    #[inline]
    fn base(&self) -> usize {
        self.n * self.arena.rho
    }

    /// Capacity ρ (0 for client nodes).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.arena.capacity_of(self.n)
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> usize {
        if self.n < self.arena.cache_nodes {
            self.arena.len[self.n] as usize
        } else {
            0
        }
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this node holds `item`.
    #[inline]
    pub fn holds(&self, item: u32) -> bool {
        self.arena.holds(self.n, item)
    }

    /// The item pinned as sticky here, if any.
    pub fn sticky_item(&self) -> Option<u32> {
        if self.n >= self.arena.cache_nodes {
            return None;
        }
        let s = self.arena.sticky[self.n];
        (s != NO_STICKY).then(|| self.arena.slots[self.base() + s as usize])
    }

    /// Items currently cached.
    pub fn items(&self) -> &'_ [u32] {
        if self.n >= self.arena.cache_nodes {
            return &[];
        }
        let base = self.base();
        &self.arena.slots[base..base + self.arena.len[self.n] as usize]
    }
}

/// Mutable view of one node's cache inside a [`CacheArena`].
pub struct CacheMut<'a> {
    arena: &'a mut CacheArena,
    n: usize,
}

impl CacheMut<'_> {
    #[inline]
    fn base(&self) -> usize {
        self.n * self.arena.rho
    }

    fn len(&self) -> usize {
        if self.n < self.arena.cache_nodes {
            self.arena.len[self.n] as usize
        } else {
            0
        }
    }

    fn capacity(&self) -> usize {
        self.arena.capacity_of(self.n)
    }

    fn sticky(&self) -> Option<usize> {
        if self.n >= self.arena.cache_nodes {
            return None;
        }
        let s = self.arena.sticky[self.n];
        (s != NO_STICKY).then_some(s as usize)
    }

    /// Whether this node holds `item`.
    #[inline]
    pub fn holds(&self, item: u32) -> bool {
        self.arena.holds(self.n, item)
    }

    /// Position of `item` among the occupied slots, if present.
    fn position(&self, item: u32) -> Option<usize> {
        let base = self.base();
        self.arena.slots[base..base + self.len()]
            .iter()
            .position(|&i| i == item)
    }

    /// Record a *use* of `item` (a request served from this cache);
    /// relevant under [`EvictionPolicy::Lru`] only.
    pub fn touch(&mut self, item: u32) {
        if self.arena.eviction != EvictionPolicy::Lru {
            return;
        }
        if let Some(pos) = self.position(item) {
            self.arena.clock[self.n] += 1;
            let base = self.base();
            self.arena.stamps[base + pos] = self.arena.clock[self.n];
        }
    }

    /// Pin `item` as this node's sticky replica (inserting it if absent).
    ///
    /// # Panics
    /// Panics if a different sticky item is already pinned, or if the
    /// cache is full of *other* items and has no free slot (pin sticky
    /// items before filling).
    pub fn pin_sticky(&mut self, item: u32) {
        assert!(self.sticky().is_none(), "cache already has a sticky item");
        if let Some(pos) = self.position(item) {
            self.arena.sticky[self.n] = pos as u32;
            return;
        }
        assert!(
            self.len() < self.capacity(),
            "no free slot to pin the sticky replica"
        );
        self.arena.clock[self.n] += 1;
        let (base, len) = (self.base(), self.len());
        self.arena.slots[base + len] = item;
        self.arena.stamps[base + len] = self.arena.clock[self.n];
        self.arena.len[self.n] += 1;
        self.arena.sticky[self.n] = len as u32;
    }

    /// Fill a free slot with `item` (no eviction). Returns `false` if the
    /// item is already present.
    ///
    /// # Panics
    /// Panics if the cache is full.
    pub fn fill(&mut self, item: u32) -> bool {
        if self.holds(item) {
            return false;
        }
        assert!(
            self.len() < self.capacity(),
            "cache is full; use insert_evict"
        );
        self.arena.clock[self.n] += 1;
        let (base, len) = (self.base(), self.len());
        self.arena.slots[base + len] = item;
        self.arena.stamps[base + len] = self.arena.clock[self.n];
        self.arena.len[self.n] += 1;
        true
    }

    /// Replace the specific occupant `old` with `new` (used by the
    /// hill-climbing baseline, which chooses its victim deliberately).
    /// Returns `false` (unchanged) if `old` is absent, sticky, or `new`
    /// is already present.
    pub fn swap_item(&mut self, old: u32, new: u32) -> bool {
        if !self.holds(old) || self.holds(new) {
            return false;
        }
        let Some(pos) = self.position(old) else {
            return false;
        };
        if Some(pos) == self.sticky() {
            return false;
        }
        self.arena.clock[self.n] += 1;
        let base = self.base();
        self.arena.slots[base + pos] = new;
        self.arena.stamps[base + pos] = self.arena.clock[self.n];
        true
    }

    /// Insert `item`, evicting a uniformly random non-sticky occupant if
    /// the cache is full. Returns the evicted item, if any.
    ///
    /// Returns `Err(())` without modification when the item is already
    /// present, or when every slot is sticky (cannot evict).
    #[allow(clippy::result_unit_err)] // rejection carries no information beyond itself
    pub fn insert_evict(&mut self, item: u32, rng: &mut Xoshiro256) -> Result<Option<u32>, ()> {
        if self.holds(item) || self.capacity() == 0 {
            return Err(());
        }
        let (base, len) = (self.base(), self.len());
        if len < self.capacity() {
            self.arena.clock[self.n] += 1;
            self.arena.slots[base + len] = item;
            self.arena.stamps[base + len] = self.arena.clock[self.n];
            self.arena.len[self.n] += 1;
            return Ok(None);
        }
        // Choose a victim slot among non-sticky slots.
        let sticky = self.sticky();
        let candidates = len - usize::from(sticky.is_some());
        if candidates == 0 {
            return Err(());
        }
        let pick = match self.arena.eviction {
            EvictionPolicy::Random => {
                let mut pick = rng.index(candidates);
                if let Some(sticky) = sticky {
                    if pick >= sticky {
                        pick += 1;
                    }
                }
                pick
            }
            // LRU and FIFO: smallest stamp among non-sticky slots.
            EvictionPolicy::Lru | EvictionPolicy::Fifo => (0..len)
                .filter(|&s| Some(s) != sticky)
                .min_by_key(|&s| self.arena.stamps[base + s])
                .expect("candidates > 0"),
        };
        let evicted = self.arena.slots[base + pick];
        self.arena.clock[self.n] += 1;
        self.arena.slots[base + pick] = item;
        self.arena.stamps[base + pick] = self.arena.clock[self.n];
        Ok(Some(evicted))
    }

    /// Erase a uniformly random non-sticky occupant (fault injection:
    /// a slot failure loses its content without a replacement arriving).
    /// Returns the lost item, or `None` when nothing is erasable.
    pub fn drop_random_non_sticky(&mut self, rng: &mut Xoshiro256) -> Option<u32> {
        let sticky = self.sticky();
        let len = self.len();
        let candidates = len - usize::from(sticky.is_some());
        if candidates == 0 {
            return None;
        }
        let mut pick = rng.index(candidates);
        if let Some(sticky) = sticky {
            if pick >= sticky {
                pick += 1;
            }
        }
        let base = self.base();
        let lost = self.arena.slots[base + pick];
        // Shift the tail down one slot (the arena analogue of Vec::remove).
        self.arena
            .slots
            .copy_within(base + pick + 1..base + len, base + pick);
        self.arena
            .stamps
            .copy_within(base + pick + 1..base + len, base + pick);
        self.arena.len[self.n] -= 1;
        // The sticky slot's index shifts down when a lower slot vanishes.
        if let Some(sticky) = sticky {
            if sticky > pick {
                self.arena.sticky[self.n] = (sticky - 1) as u32;
            }
        }
        Some(lost)
    }
}

/// `next`-link sentinel: end of a queue / end of the free list.
const NIL: u32 = u32::MAX;

/// Flat arena of per-node pending-request queues.
///
/// Replaces the engines' per-node `Vec<Request>` jagged vectors: all
/// requests live in struct-of-arrays entry storage threaded into
/// per-node FIFO lists, with freed entries recycled through a free list.
/// After warmup a trial's steady-state request population churns in
/// place with **zero allocation**; across trials the arena is part of
/// [`crate::engine::TrialScratch`] and is reused outright.
///
/// `P` is the engine-specific creation stamp: `f64` event time for the
/// continuous engine, `u64` slot index for the discrete one. Queue order
/// is insertion order, exactly matching `Vec::push` + `retain_mut`, so
/// fulfillment and settlement sequences — and therefore RNG consumption
/// and metrics — are bit-identical to the jagged layout.
#[derive(Clone, Debug)]
pub struct RequestArena<P: Copy> {
    /// First pending entry per node ([`NIL`] = empty).
    head: Vec<u32>,
    /// Last pending entry per node (push target).
    tail: Vec<u32>,
    /// Entry link: next entry in the same node's queue, or free list.
    next: Vec<u32>,
    /// Requested item per entry.
    item: Vec<u32>,
    /// Creation stamp per entry.
    created: Vec<P>,
    /// Unanswered-query count per entry (the QCR reaction input).
    queries: Vec<u64>,
    /// Head of the recycled-entry list.
    free: u32,
    /// Live entries across all nodes.
    len: u64,
}

impl<P: Copy> Default for RequestArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy> RequestArena<P> {
    /// Empty arena for zero nodes; call [`RequestArena::reset`] to size.
    pub fn new() -> Self {
        RequestArena {
            head: Vec::new(),
            tail: Vec::new(),
            next: Vec::new(),
            item: Vec::new(),
            created: Vec::new(),
            queries: Vec::new(),
            free: NIL,
            len: 0,
        }
    }

    /// Clear all queues and size for `nodes`, keeping entry capacity.
    pub fn reset(&mut self, nodes: usize) {
        self.head.clear();
        self.head.resize(nodes, NIL);
        self.tail.clear();
        self.tail.resize(nodes, NIL);
        self.next.clear();
        self.item.clear();
        self.created.clear();
        self.queries.clear();
        self.free = NIL;
        self.len = 0;
    }

    /// Total pending requests across all nodes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no request is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a fresh request (zero queries) to `node`'s queue.
    pub fn push(&mut self, node: usize, item: u32, created: P) {
        let slot = if self.free != NIL {
            let slot = self.free as usize;
            self.free = self.next[slot];
            self.item[slot] = item;
            self.created[slot] = created;
            self.queries[slot] = 0;
            self.next[slot] = NIL;
            slot as u32
        } else {
            self.item.push(item);
            self.created.push(created);
            self.queries.push(0);
            self.next.push(NIL);
            (self.item.len() - 1) as u32
        };
        if self.tail[node] == NIL {
            self.head[node] = slot;
        } else {
            self.next[self.tail[node] as usize] = slot;
        }
        self.tail[node] = slot;
        self.len += 1;
    }

    /// Walk `node`'s queue in insertion order; `keep(item, created,
    /// queries)` decides per request whether it stays pending. Removed
    /// entries are recycled. Semantically `Vec::retain_mut`.
    pub fn retain(&mut self, node: usize, mut keep: impl FnMut(u32, P, &mut u64) -> bool) {
        let mut prev = NIL;
        let mut cur = self.head[node];
        while cur != NIL {
            let i = cur as usize;
            let after = self.next[i];
            if keep(self.item[i], self.created[i], &mut self.queries[i]) {
                prev = cur;
            } else {
                if prev == NIL {
                    self.head[node] = after;
                } else {
                    self.next[prev as usize] = after;
                }
                if self.tail[node] == cur {
                    self.tail[node] = prev;
                }
                self.next[i] = self.free;
                self.free = cur;
                self.len -= 1;
            }
            cur = after;
        }
    }

    /// Iterate every pending request as `(node, item, created)` — nodes
    /// ascending, each queue in insertion order (the settlement sweep).
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, P)> + '_ {
        self.head.iter().enumerate().flat_map(move |(node, &h)| {
            let mut cur = h;
            std::iter::from_fn(move || {
                if cur == NIL {
                    return None;
                }
                let i = cur as usize;
                cur = self.next[i];
                Some((node, self.item[i], self.created[i]))
            })
        })
    }
}

/// Global mutable simulation state.
#[derive(Clone, Debug)]
pub struct SimState {
    /// Per-node caches (struct-of-arrays).
    pub caches: CacheArena,
    /// Live replica count per item (kept in sync with the caches).
    pub replicas: Vec<u32>,
    /// Sticky-seed node of each item (`usize::MAX` = none).
    pub sticky_owner: Vec<usize>,
    /// Total item copies transferred between nodes (energy proxy).
    pub transmissions: u64,
}

impl SimState {
    /// Apply an eviction rule to every cache (ablation hook; call before
    /// seeding).
    pub fn set_eviction(&mut self, policy: EvictionPolicy) {
        self.caches.set_eviction(policy);
    }
}

impl Default for SimState {
    /// A zero-node, zero-item state (a scratch placeholder to `reset`).
    fn default() -> Self {
        SimState::new(0, 0, 0)
    }
}

impl SimState {
    /// Empty caches, no sticky seeds (pure P2P: every node has capacity
    /// `rho`).
    pub fn new(nodes: usize, items: usize, rho: usize) -> Self {
        SimState {
            caches: CacheArena::new(nodes, nodes, rho),
            replicas: vec![0; items],
            sticky_owner: vec![usize::MAX; items],
            transmissions: 0,
        }
    }

    /// Dedicated population: nodes `0..servers` carry `rho`-slot caches,
    /// the remaining (client) nodes have zero capacity.
    pub fn new_dedicated(nodes: usize, servers: usize, items: usize, rho: usize) -> Self {
        assert!(servers <= nodes);
        SimState {
            caches: CacheArena::new(nodes, servers, rho),
            replicas: vec![0; items],
            sticky_owner: vec![usize::MAX; items],
            transmissions: 0,
        }
    }

    /// Reset to the state [`SimState::new`] would build (or
    /// [`SimState::new_dedicated`] when `servers < nodes`), reusing the
    /// existing allocations — the scratch-pool hook that removes per-trial
    /// state construction from the campaign hot path.
    pub fn reset(&mut self, nodes: usize, servers: usize, items: usize, rho: usize) {
        self.caches.reset(nodes, servers, rho);
        self.replicas.clear();
        self.replicas.resize(items, 0);
        self.sticky_owner.clear();
        self.sticky_owner.resize(items, usize::MAX);
        self.transmissions = 0;
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.caches.nodes()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.replicas.len()
    }

    /// QCR warm start (§6.1): pin item `i`'s sticky replica on a server
    /// (round robin in random server order), then fill every remaining
    /// slot with distinct random items so the global cache starts full.
    /// Zero-capacity (client) caches are skipped.
    pub fn seed_sticky_and_fill(&mut self, rng: &mut Xoshiro256) {
        let items = self.items();
        let mut node_order: Vec<usize> = (0..self.nodes())
            .filter(|&n| self.caches.capacity_of(n) > 0)
            .collect();
        assert!(!node_order.is_empty(), "no cache-carrying nodes to seed");
        let nodes = node_order.len();
        rng.shuffle(&mut node_order);
        for item in 0..items {
            let node = node_order[item % nodes];
            let cache = self.caches.node(node);
            if cache.sticky_item().is_none() && cache.len() < cache.capacity() {
                self.caches.node_mut(node).pin_sticky(item as u32);
                self.sticky_owner[item] = node;
                self.replicas[item] += 1;
            } else if !cache.holds(item as u32) {
                // More items than nodes: overflow seeds are regular
                // (non-sticky) copies on the next nodes with room.
                if cache.len() < cache.capacity() {
                    self.caches.node_mut(node).fill(item as u32);
                    self.replicas[item] += 1;
                }
            }
        }
        // Fill remaining slots with random distinct items.
        for &node in &node_order {
            let mut guard = 0;
            while self.caches.node(node).len() < self.caches.capacity_of(node) {
                let item = rng.index(items) as u32;
                if self.caches.node_mut(node).fill(item) {
                    self.replicas[item as usize] += 1;
                }
                guard += 1;
                if guard > 100 * items {
                    break; // catalog smaller than capacity: leave free
                }
            }
        }
    }

    /// Number of cache-carrying (server) nodes.
    pub fn servers(&self) -> usize {
        self.caches.cache_nodes()
    }

    /// Pin caches to a precomputed allocation (for the fixed-allocation
    /// competitors). No sticky slots; the policies never mutate caches.
    /// Column `k` of the matrix maps to the `k`-th cache-carrying node
    /// (in a dedicated population, servers occupy the low node ids).
    pub fn load_allocation(&mut self, alloc: &AllocationMatrix) {
        assert_eq!(
            alloc.servers(),
            self.servers(),
            "allocation server count mismatch"
        );
        assert_eq!(alloc.items(), self.items());
        let server_ids: Vec<usize> = (0..self.nodes())
            .filter(|&n| self.caches.capacity_of(n) > 0)
            .collect();
        for (col, &node) in server_ids.iter().enumerate() {
            for item in alloc.cache_of(col) {
                if self.caches.node_mut(node).fill(item as u32) {
                    self.replicas[item] += 1;
                }
            }
        }
    }

    /// Fault injection: erase a random non-sticky slot of `server`,
    /// keeping the replica count in sync. Returns the lost item, if any.
    pub fn fail_cache_slot(&mut self, server: usize, rng: &mut Xoshiro256) -> Option<u32> {
        let lost = self.caches.node_mut(server).drop_random_non_sticky(rng)?;
        self.replicas[lost as usize] -= 1;
        Some(lost)
    }

    /// Copy `item` into `to`'s cache with random replacement (respecting
    /// sticky slots). Returns `true` if a new replica was created.
    pub fn replicate(&mut self, item: u32, to: usize, rng: &mut Xoshiro256) -> bool {
        match self.caches.node_mut(to).insert_evict(item, rng) {
            Ok(evicted) => {
                self.replicas[item as usize] += 1;
                if let Some(old) = evicted {
                    self.replicas[old as usize] -= 1;
                }
                self.transmissions += 1;
                true
            }
            Err(()) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-node arena stands in for the former per-node cache object.
    fn single(rho: usize) -> CacheArena {
        CacheArena::new(1, 1, rho)
    }

    #[test]
    fn cache_fill_and_membership() {
        let mut a = single(3);
        let mut c = a.node_mut(0);
        assert!(c.fill(4));
        assert!(!c.fill(4));
        assert!(c.fill(7));
        assert!(c.holds(4));
        assert!(!c.holds(5));
        assert_eq!(a.node(0).len(), 2);
        assert!(!a.node(0).is_empty());
    }

    #[test]
    fn eviction_is_random_but_never_sticky() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut a = single(3);
        let mut c = a.node_mut(0);
        c.pin_sticky(0);
        c.fill(1);
        c.fill(2);
        // Insert many items: 0 must survive every eviction.
        for item in 3..10u32 {
            let evicted = a.node_mut(0).insert_evict(item, &mut rng).unwrap();
            assert_ne!(evicted, Some(0), "sticky item evicted");
            assert!(a.node(0).holds(0));
            assert_eq!(a.node(0).len(), 3);
        }
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut rng = Xoshiro256::seed_from_u64(40);
        let mut a = single(3);
        a.set_eviction(EvictionPolicy::Fifo);
        let mut c = a.node_mut(0);
        c.fill(0);
        c.fill(1);
        c.fill(2);
        assert_eq!(c.insert_evict(3, &mut rng), Ok(Some(0)));
        assert_eq!(c.insert_evict(4, &mut rng), Ok(Some(1)));
        assert!(c.holds(2) && c.holds(3) && c.holds(4));
    }

    #[test]
    fn lru_touch_protects_recently_used() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut a = single(3);
        a.set_eviction(EvictionPolicy::Lru);
        let mut c = a.node_mut(0);
        c.fill(0);
        c.fill(1);
        c.fill(2);
        // Without a touch, item 0 (oldest) would go; touching it shifts
        // the eviction to item 1.
        c.touch(0);
        assert_eq!(c.insert_evict(3, &mut rng), Ok(Some(1)));
        assert!(c.holds(0));
    }

    #[test]
    fn lru_respects_sticky() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut a = single(2);
        a.set_eviction(EvictionPolicy::Lru);
        let mut c = a.node_mut(0);
        c.pin_sticky(0); // oldest stamp, but pinned
        c.fill(1);
        assert_eq!(c.insert_evict(2, &mut rng), Ok(Some(1)));
        assert!(c.holds(0));
    }

    #[test]
    fn touch_is_noop_outside_lru() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        let mut a = single(2);
        a.set_eviction(EvictionPolicy::Fifo);
        let mut c = a.node_mut(0);
        c.fill(0);
        c.fill(1);
        c.touch(0); // FIFO ignores uses
        assert_eq!(c.insert_evict(2, &mut rng), Ok(Some(0)));
    }

    #[test]
    fn insert_existing_is_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut a = single(2);
        let mut c = a.node_mut(0);
        c.fill(1);
        assert_eq!(c.insert_evict(1, &mut rng), Err(()));
    }

    #[test]
    fn all_sticky_cache_rejects_eviction() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut a = single(1);
        let mut c = a.node_mut(0);
        c.pin_sticky(2);
        assert_eq!(c.insert_evict(4, &mut rng), Err(()));
        assert!(c.holds(2));
    }

    #[test]
    fn pin_sticky_on_existing_item() {
        let mut a = single(2);
        let mut c = a.node_mut(0);
        c.fill(3);
        c.pin_sticky(3);
        assert_eq!(a.node(0).sticky_item(), Some(3));
        assert_eq!(a.node(0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "already has a sticky item")]
    fn second_sticky_rejected() {
        let mut a = single(3);
        a.node_mut(0).pin_sticky(0);
        a.node_mut(0).pin_sticky(1);
    }

    #[test]
    fn client_nodes_have_no_storage() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut a = CacheArena::new(3, 1, 2);
        a.node_mut(0).fill(1);
        assert_eq!(a.capacity_of(2), 0);
        assert!(!a.node(2).holds(1));
        assert!(a.node(2).items().is_empty());
        assert_eq!(a.node(2).sticky_item(), None);
        assert_eq!(a.node_mut(2).insert_evict(1, &mut rng), Err(()));
        assert!(a.node_mut(2).drop_random_non_sticky(&mut rng).is_none());
    }

    #[test]
    fn seed_sticky_and_fill_invariants() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut state = SimState::new(50, 50, 5);
        state.seed_sticky_and_fill(&mut rng);
        // Every item has a sticky owner and ≥ 1 replica.
        for item in 0..50 {
            assert!(
                state.sticky_owner[item] != usize::MAX,
                "item {item} unseeded"
            );
            assert!(state.replicas[item] >= 1);
            let owner = state.sticky_owner[item];
            assert_eq!(state.caches.node(owner).sticky_item(), Some(item as u32));
        }
        // Caches are full and replica counts consistent.
        let mut recount = vec![0u32; 50];
        for c in state.caches.iter() {
            assert_eq!(c.len(), 5);
            for &i in c.items() {
                recount[i as usize] += 1;
            }
        }
        assert_eq!(recount, state.replicas);
        // Budget: 250 slots in use.
        assert_eq!(state.replicas.iter().map(|&r| r as u64).sum::<u64>(), 250);
    }

    #[test]
    fn seed_with_more_items_than_nodes() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut state = SimState::new(4, 10, 3);
        state.seed_sticky_and_fill(&mut rng);
        // Only 4 sticky seeds possible; every node has exactly one.
        let sticky_count = state
            .sticky_owner
            .iter()
            .filter(|&&o| o != usize::MAX)
            .count();
        assert_eq!(sticky_count, 4);
        for c in state.caches.iter() {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn drop_random_keeps_sticky_tracked() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut a = single(4);
        let mut c = a.node_mut(0);
        c.fill(1);
        c.fill(2);
        c.pin_sticky(7); // sticky lands in slot 2
        c.fill(3);
        for _ in 0..3 {
            let lost = a.node_mut(0).drop_random_non_sticky(&mut rng).unwrap();
            assert_ne!(lost, 7, "sticky item erased");
            assert_eq!(
                a.node(0).sticky_item(),
                Some(7),
                "sticky slot index drifted"
            );
        }
        assert_eq!(a.node(0).len(), 1);
        assert!(a.node_mut(0).drop_random_non_sticky(&mut rng).is_none());
        assert!(a.node(0).holds(7));
    }

    #[test]
    fn fail_cache_slot_syncs_replicas() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let mut state = SimState::new(2, 5, 2);
        state.caches.node_mut(0).fill(1);
        state.caches.node_mut(0).fill(4);
        state.replicas = vec![0, 1, 0, 0, 1];
        let lost = state.fail_cache_slot(0, &mut rng).unwrap();
        assert_eq!(state.replicas[lost as usize], 0);
        assert_eq!(state.replicas.iter().sum::<u32>(), 1);
        // Drained caches fail without effect.
        let _ = state.fail_cache_slot(1, &mut rng);
        state.replicas = vec![0; 5];
        assert!(state.fail_cache_slot(1, &mut rng).is_none());
    }

    #[test]
    fn replicate_updates_counts() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut state = SimState::new(3, 5, 2);
        state.caches.node_mut(0).fill(1);
        state.replicas[1] = 1;
        assert!(state.replicate(1, 2, &mut rng));
        assert_eq!(state.replicas[1], 2);
        assert_eq!(state.transmissions, 1);
        // Duplicate insert is a no-op.
        assert!(!state.replicate(1, 2, &mut rng));
        assert_eq!(state.transmissions, 1);
    }

    #[test]
    fn replicate_with_eviction_keeps_global_count() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut state = SimState::new(2, 4, 1);
        state.caches.node_mut(0).fill(0);
        state.caches.node_mut(1).fill(1);
        state.replicas = vec![1, 1, 0, 0];
        assert!(state.replicate(2, 1, &mut rng));
        assert_eq!(state.replicas, vec![1, 0, 1, 0]);
        let total: u32 = state.replicas.iter().sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn load_allocation_matches_matrix() {
        let counts = impatience_core::allocation::ReplicaCounts::new(vec![2, 1, 0], 3);
        let alloc = AllocationMatrix::from_counts(&counts, 2);
        let mut state = SimState::new(3, 3, 2);
        state.load_allocation(&alloc);
        assert_eq!(state.replicas, vec![2, 1, 0]);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut used = SimState::new(12, 8, 3);
        used.set_eviction(EvictionPolicy::Lru);
        used.seed_sticky_and_fill(&mut rng);
        used.replicate(0, 3, &mut rng);
        used.reset(9, 4, 6, 2);
        let fresh = SimState::new_dedicated(9, 4, 6, 2);
        assert_eq!(format!("{used:?}"), format!("{fresh:?}"));
        // And the reset state behaves identically under the same seed.
        let mut r1 = Xoshiro256::seed_from_u64(5);
        let mut r2 = Xoshiro256::seed_from_u64(5);
        let mut fresh = fresh;
        used.seed_sticky_and_fill(&mut r1);
        fresh.seed_sticky_and_fill(&mut r2);
        assert_eq!(format!("{used:?}"), format!("{fresh:?}"));
    }

    #[test]
    fn request_arena_matches_vec_retain_semantics() {
        // Mirror a jagged Vec<Vec<(item, created, queries)>> through the
        // same operation sequence and require identical contents/order.
        let mut arena: RequestArena<f64> = RequestArena::new();
        arena.reset(3);
        let mut model: Vec<Vec<(u32, f64, u64)>> = vec![Vec::new(); 3];
        let mut rng = Xoshiro256::seed_from_u64(77);
        for step in 0..200u32 {
            let node = rng.index(3);
            if rng.bernoulli(0.6) {
                let item = step % 7;
                arena.push(node, item, step as f64);
                model[node].push((item, step as f64, 0));
            } else {
                let drop_item = step % 7;
                arena.retain(node, |item, _, q| {
                    if item == drop_item {
                        false
                    } else {
                        *q += 1;
                        true
                    }
                });
                model[node].retain_mut(|r| {
                    if r.0 == drop_item {
                        false
                    } else {
                        r.2 += 1;
                        true
                    }
                });
            }
        }
        let expect: Vec<(usize, u32, f64)> = model
            .iter()
            .enumerate()
            .flat_map(|(n, q)| q.iter().map(move |&(i, c, _)| (n, i, c)))
            .collect();
        let got: Vec<(usize, u32, f64)> = arena.iter().collect();
        assert_eq!(got, expect);
        assert_eq!(arena.len() as usize, expect.len());
        // Reset recycles storage and empties every queue.
        arena.reset(2);
        assert!(arena.is_empty());
        assert_eq!(arena.iter().count(), 0);
    }

    #[test]
    fn request_arena_recycles_entries() {
        let mut arena: RequestArena<u64> = RequestArena::new();
        arena.reset(1);
        for round in 0..50u64 {
            arena.push(0, 1, round);
            arena.push(0, 2, round);
            arena.retain(0, |item, _, _| item != 1);
            arena.retain(0, |item, _, _| item != 2);
        }
        assert!(arena.is_empty());
        // Steady-state churn must not grow entry storage unboundedly.
        assert!(arena.item.len() <= 2, "entries not recycled");
    }

    #[test]
    fn split_into_blocks_preserves_contents() {
        let mut rng = Xoshiro256::seed_from_u64(14);
        let mut state = SimState::new(10, 10, 2);
        state.seed_sticky_and_fill(&mut rng);
        let expect: Vec<Vec<u32>> = state.caches.iter().map(|c| c.items().to_vec()).collect();
        let sticky: Vec<Option<u32>> = state.caches.iter().map(|c| c.sticky_item()).collect();
        let blocks = state.caches.split_into_blocks(&[3, 4, 3]);
        assert_eq!(blocks.len(), 3);
        let mut global = 0usize;
        for block in &blocks {
            for local in 0..block.nodes() {
                assert_eq!(block.node(local).items(), &expect[global][..]);
                assert_eq!(block.node(local).sticky_item(), sticky[global]);
                global += 1;
            }
        }
        assert_eq!(global, 10);
    }
}
