//! Multi-trial experiment runner with percentile bands.
//!
//! The paper reports averages of "15 or more trials with confidence
//! interval corresponding to 5% and 95% percentiles" (§6.1). Trials are
//! embarrassingly parallel; the runner shards them across OS threads and
//! aggregates.

use std::thread;

use crate::config::{ContactSource, SimConfig};
use crate::engine::{run_trial, TrialOutcome};
use crate::policy::PolicyKind;

/// Aggregate of many independent trials of one policy.
#[derive(Clone, Debug)]
pub struct TrialAggregate {
    /// Policy label.
    pub label: String,
    /// Number of trials.
    pub trials: usize,
    /// Post-warm-up average observed gain rate, one entry per trial.
    pub rates: Vec<f64>,
    /// Mean of `rates`.
    pub mean_rate: f64,
    /// 5th percentile of `rates` (nearest rank).
    pub p5_rate: f64,
    /// 95th percentile of `rates` (nearest rank).
    pub p95_rate: f64,
    /// Mean over trials of the per-bin observed gain-rate series.
    pub observed_series: Vec<f64>,
    /// Mean over trials of the per-bin expected-utility snapshots.
    pub expected_series: Vec<f64>,
    /// Mean final replica count per item.
    pub mean_final_replicas: Vec<f64>,
    /// Mean transmissions per trial (energy proxy).
    pub mean_transmissions: f64,
}

/// Nearest-rank percentile of an unsorted sample (`q` in [0, 1]).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn aggregate(label: String, outcomes: Vec<TrialOutcome>, warmup: f64) -> TrialAggregate {
    assert!(!outcomes.is_empty());
    let trials = outcomes.len();
    let rates: Vec<f64> = outcomes
        .iter()
        .map(|o| o.metrics.average_observed_rate(warmup))
        .collect();
    let mean_rate = rates.iter().sum::<f64>() / trials as f64;

    let bins = outcomes[0].metrics.bins();
    let mut observed_series = vec![0.0; bins];
    let mut expected_series = vec![0.0; bins];
    let mut expected_counts = vec![0usize; bins];
    for o in &outcomes {
        for (acc, v) in observed_series.iter_mut().zip(o.metrics.observed_rate_series()) {
            *acc += v / trials as f64;
        }
        for (b, v) in o.metrics.expected_utility_series().iter().enumerate() {
            if v.is_finite() {
                expected_series[b] += v;
                expected_counts[b] += 1;
            }
        }
    }
    for (v, &c) in expected_series.iter_mut().zip(&expected_counts) {
        *v = if c > 0 { *v / c as f64 } else { f64::NAN };
    }

    let items = outcomes[0].final_replicas.len();
    let mut mean_final_replicas = vec![0.0; items];
    for o in &outcomes {
        for (acc, &r) in mean_final_replicas.iter_mut().zip(&o.final_replicas) {
            *acc += r as f64 / trials as f64;
        }
    }
    let mean_transmissions = outcomes
        .iter()
        .map(|o| o.metrics.transmissions as f64)
        .sum::<f64>()
        / trials as f64;

    TrialAggregate {
        label,
        trials,
        mean_rate,
        p5_rate: percentile(&rates, 0.05),
        p95_rate: percentile(&rates, 0.95),
        rates,
        observed_series,
        expected_series,
        mean_final_replicas,
        mean_transmissions,
    }
}

/// Run `trials` independent trials of `policy` in parallel and aggregate.
///
/// Trial `k` uses seed `base_seed + k`, so results are reproducible and
/// different policies can be compared on *paired* randomness by sharing
/// `base_seed`.
pub fn run_trials(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
) -> TrialAggregate {
    assert!(trials > 0, "need at least one trial");
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(trials);

    let outcomes: Vec<TrialOutcome> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let config = config.clone();
            let source = source.clone();
            let policy = policy.clone();
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut k = w;
                while k < trials {
                    local.push((k, run_trial(&config, &source, policy.clone(), base_seed + k as u64)));
                    k += workers;
                }
                local
            }));
        }
        let mut all: Vec<(usize, TrialOutcome)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("trial thread panicked"))
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all.into_iter().map(|(_, o)| o).collect()
    });

    aggregate(policy.label(), outcomes, config.warmup_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn quick_setup() -> (SimConfig, ContactSource) {
        let config = SimConfig::builder(8, 2)
            .demand(Popularity::pareto(8, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(8, 0.08, 800.0);
        (config, source)
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.05), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn aggregate_is_reproducible_and_ordered() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 6, 100);
        let b = run_trials(&config, &source, &policy, 6, 100);
        assert_eq!(a.rates, b.rates, "same seeds must give same trials");
        assert_eq!(a.trials, 6);
        assert!(a.p5_rate <= a.mean_rate + 1e-12);
        assert!(a.mean_rate <= a.p95_rate + 1e-12);
        assert_eq!(a.label, "QCR");
        assert_eq!(a.observed_series.len(), 8);
        assert_eq!(a.mean_final_replicas.len(), 8);
        // QCR replicates, so transmissions occur.
        assert!(a.mean_transmissions > 0.0);
    }

    #[test]
    fn different_base_seed_changes_trials() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 4, 1);
        let b = run_trials(&config, &source, &policy, 4, 1_000);
        assert_ne!(a.rates, b.rates);
    }

    #[test]
    fn final_replica_budget_preserved_in_mean() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let agg = run_trials(&config, &source, &policy, 4, 7);
        let total: f64 = agg.mean_final_replicas.iter().sum();
        assert!((total - 16.0).abs() < 1e-9, "budget 8·2 = 16, got {total}");
    }
}
