//! Multi-trial experiment runner with percentile bands.
//!
//! The paper reports averages of "15 or more trials with confidence
//! interval corresponding to 5% and 95% percentiles" (§6.1). Trials are
//! embarrassingly parallel; the runner shards them across OS threads and
//! aggregates.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use impatience_obs::{MemorySink, Recorder, Sink, TallySink};

use crate::checkpoint::{fingerprint, CampaignCheckpoint, CheckpointError, TrialRecord};
use crate::config::{ConfigError, ContactSource, SimConfig};
use crate::engine::{run_trial_observed_scratch, run_trial_scratch, TrialOutcome, TrialScratch};
use crate::policy::PolicyKind;
use crate::sharded::run_trial_sharded;

/// Aggregate of many independent trials of one policy.
#[derive(Clone, Debug)]
pub struct TrialAggregate {
    /// Policy label.
    pub label: String,
    /// Number of trials.
    pub trials: usize,
    /// Post-warm-up average observed gain rate, one entry per trial.
    pub rates: Vec<f64>,
    /// Mean of `rates`.
    pub mean_rate: f64,
    /// 5th percentile of `rates` (nearest rank).
    pub p5_rate: f64,
    /// 95th percentile of `rates` (nearest rank).
    pub p95_rate: f64,
    /// Mean over trials of the per-bin observed gain-rate series.
    pub observed_series: Vec<f64>,
    /// Mean over trials of the per-bin expected-utility snapshots.
    pub expected_series: Vec<f64>,
    /// Mean final replica count per item.
    pub mean_final_replicas: Vec<f64>,
    /// Mean transmissions per trial (energy proxy).
    pub mean_transmissions: f64,
    /// Mean immediate (own-cache) hits per trial.
    pub mean_immediate_hits: f64,
    /// Mean requests still open at the horizon per trial.
    pub mean_unfulfilled: f64,
    /// Mean QCR mandates created per trial.
    pub mean_mandates_created: f64,
    /// Mean fulfillments whose mandate was dropped at the cap per trial.
    pub mean_mandate_cap_hits: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Mean wall-clock seconds per trial.
    pub mean_trial_wall_s: f64,
    /// Sum of per-trial wall time over `workers · wall_s`: 1.0 means the
    /// pool never idled, low values mean stragglers dominated.
    pub worker_utilization: f64,
}

/// Wall-clock telemetry collected while sharding trials.
#[derive(Clone, Copy, Debug)]
struct BatchTelemetry {
    workers: usize,
    wall_s: f64,
    busy_s: f64,
    trials: usize,
}

// Nearest-rank percentiles. One shared implementation serves both the
// exact sample percentiles here and the bucketed histogram quantiles in
// `impatience-obs` — re-exported so existing `runner::percentile`
// callers keep working.
pub use impatience_obs::stats::{percentile, percentile_sorted};

fn aggregate(
    label: String,
    outcomes: Vec<TrialOutcome>,
    warmup: f64,
    telemetry: BatchTelemetry,
) -> TrialAggregate {
    assert!(!outcomes.is_empty());
    let trials = outcomes.len();
    let rates: Vec<f64> = outcomes
        .iter()
        .map(|o| o.metrics.average_observed_rate(warmup))
        .collect();
    let mean_rate = rates.iter().sum::<f64>() / trials as f64;

    let bins = outcomes[0].metrics.bins();
    let mut observed_series = vec![0.0; bins];
    let mut expected_series = vec![0.0; bins];
    let mut expected_counts = vec![0usize; bins];
    for o in &outcomes {
        for (acc, v) in observed_series
            .iter_mut()
            .zip(o.metrics.observed_rate_series())
        {
            *acc += v / trials as f64;
        }
        for (b, v) in o.metrics.expected_utility_series().iter().enumerate() {
            if v.is_finite() {
                expected_series[b] += v;
                expected_counts[b] += 1;
            }
        }
    }
    for (v, &c) in expected_series.iter_mut().zip(&expected_counts) {
        *v = if c > 0 { *v / c as f64 } else { f64::NAN };
    }

    let items = outcomes[0].final_replicas.len();
    let mut mean_final_replicas = vec![0.0; items];
    for o in &outcomes {
        for (acc, &r) in mean_final_replicas.iter_mut().zip(&o.final_replicas) {
            *acc += r as f64 / trials as f64;
        }
    }
    let mean_of = |f: &dyn Fn(&TrialOutcome) -> u64| {
        outcomes.iter().map(|o| f(o) as f64).sum::<f64>() / trials as f64
    };

    // One sort serves both percentile ranks.
    let mut sorted_rates = rates.clone();
    sorted_rates.sort_by(f64::total_cmp);

    TrialAggregate {
        label,
        trials,
        mean_rate,
        p5_rate: percentile_sorted(&sorted_rates, 0.05),
        p95_rate: percentile_sorted(&sorted_rates, 0.95),
        rates,
        observed_series,
        expected_series,
        mean_final_replicas,
        mean_transmissions: mean_of(&|o| o.metrics.transmissions),
        mean_immediate_hits: mean_of(&|o| o.metrics.immediate_hits),
        mean_unfulfilled: mean_of(&|o| o.metrics.unfulfilled),
        mean_mandates_created: mean_of(&|o| o.metrics.mandates_created),
        mean_mandate_cap_hits: mean_of(&|o| o.metrics.mandate_cap_hits),
        workers: telemetry.workers,
        wall_s: telemetry.wall_s,
        mean_trial_wall_s: telemetry.busy_s / telemetry.trials as f64,
        worker_utilization: if telemetry.wall_s > 0.0 {
            (telemetry.busy_s / (telemetry.workers as f64 * telemetry.wall_s)).min(1.0)
        } else {
            1.0
        },
    }
}

/// Run `trials` independent trials of `policy` in parallel and aggregate.
///
/// Trial `k` uses seed `base_seed + k`, so results are reproducible and
/// different policies can be compared on *paired* randomness by sharing
/// `base_seed`.
pub fn run_trials(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
) -> TrialAggregate {
    run_trials_observed(
        config,
        source,
        policy,
        trials,
        base_seed,
        &mut Recorder::disabled(),
    )
}

/// Shard `trials` jobs over `workers` threads with a work-stealing
/// counter: each idle worker claims the next unclaimed trial index, so a
/// straggler trial never idles the rest of the pool (the weakness of the
/// static `k += workers` striping this replaced — visible in the
/// `worker_utilization` telemetry). Each worker owns one `W` (its
/// [`TrialScratch`] pool slot) built once by `make_worker` and threaded
/// through every trial it claims, so steady-state trials allocate
/// nothing. Results come back in trial order; `busy` is the summed
/// per-trial wall time.
fn run_sharded<T: Send, W>(
    trials: usize,
    workers: usize,
    make_worker: &(dyn Fn() -> W + Sync),
    job: &(dyn Fn(&mut W, usize) -> T + Sync),
) -> (Vec<T>, f64) {
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut worker_state = make_worker();
                let mut local = Vec::new();
                let mut busy = 0.0f64;
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= trials {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = job(&mut worker_state, k);
                    busy += t0.elapsed().as_secs_f64();
                    local.push((k, result));
                }
                (local, busy)
            }));
        }
        let mut all: Vec<(usize, T)> = Vec::with_capacity(trials);
        let mut busy_s = 0.0f64;
        for handle in handles {
            let (local, busy) = handle.join().expect("trial thread panicked");
            all.extend(local);
            busy_s += busy;
        }
        all.sort_by_key(|(k, _)| *k);
        (all.into_iter().map(|(_, r)| r).collect(), busy_s)
    })
}

/// [`run_trials`] with instrumentation.
///
/// The batch shards across worker threads whether or not the recorder is
/// live. Each trial runs against its own per-trial recorder (same
/// histogram shapes as the caller's); after the join the runner absorbs
/// the per-trial tallies into `rec` **in trial order**, so counters,
/// peaks, and histograms are a pure function of `(config, source,
/// policy, trials, base_seed)` — independent of worker count and
/// scheduling. Sinks that keep their event stream
/// ([`Sink::WANTS_EVENTS`], e.g. a JSONL trace) additionally get every
/// trial's events replayed into `rec`'s sink in trial order, reproducing
/// the deterministic serial stream; tally-only sinks skip event
/// buffering entirely. Wall-clock telemetry (total, per-trial, worker
/// utilization) is collected on every path.
pub fn run_trials_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
    rec: &mut Recorder<S>,
) -> TrialAggregate {
    run_trials_observed_with_workers(config, source, policy, trials, base_seed, None, rec)
}

/// One worker per available core (4 if that cannot be queried).
fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// [`run_trials_observed`] with an explicit worker count (`None` picks
/// one per available core). Trial trajectories, tallies, and the event
/// stream are a pure function of `(config, source, policy, trials,
/// base_seed)` — independent of the worker count by construction; the
/// override exists for determinism tests and for sharing a host.
pub fn run_trials_observed_with_workers<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
    workers: Option<usize>,
    rec: &mut Recorder<S>,
) -> TrialAggregate {
    assert!(trials > 0, "need at least one trial");
    let batch_start = Instant::now();
    let workers = workers.unwrap_or_else(default_workers).max(1).min(trials);

    // Main-thread profiling spans: "trials" covers dispatch plus the
    // wait for workers (whose own time lands under the per-worker
    // "trial" root), "merge" the tally/event absorption, "aggregate"
    // the statistics fold.
    let (outcomes, busy_s) = if !rec.is_active() {
        let _s = impatience_obs::span!("trials");
        run_sharded(trials, workers, &TrialScratch::new, &|scratch, k| {
            run_trial_scratch(
                config,
                source,
                policy.clone(),
                base_seed + k as u64,
                scratch,
            )
        })
    } else {
        let shape = (
            rec.delay.range(),
            rec.inter_contact.range(),
            rec.delay.buckets(),
        );
        if S::WANTS_EVENTS {
            let trials_span = impatience_obs::span!("trials");
            let (results, busy_s) =
                run_sharded(trials, workers, &TrialScratch::new, &|scratch, k| {
                    let mut wrec =
                        Recorder::with_shape(MemorySink::new(), shape.0, shape.1, shape.2);
                    let outcome = run_trial_observed_scratch(
                        config,
                        source,
                        policy.clone(),
                        base_seed + k as u64,
                        &mut wrec,
                        scratch,
                    );
                    (outcome, wrec)
                });
            trials_span.close();
            let _merge_span = impatience_obs::span!("merge");
            let mut outcomes = Vec::with_capacity(trials);
            for (outcome, wrec) in results {
                rec.absorb(&wrec);
                for event in &wrec.into_sink().events {
                    rec.sink_mut().record(event);
                }
                outcomes.push(outcome);
            }
            (outcomes, busy_s)
        } else {
            let trials_span = impatience_obs::span!("trials");
            let (results, busy_s) =
                run_sharded(trials, workers, &TrialScratch::new, &|scratch, k| {
                    let mut wrec = Recorder::with_shape(TallySink, shape.0, shape.1, shape.2);
                    let outcome = run_trial_observed_scratch(
                        config,
                        source,
                        policy.clone(),
                        base_seed + k as u64,
                        &mut wrec,
                        scratch,
                    );
                    (outcome, wrec)
                });
            trials_span.close();
            let _merge_span = impatience_obs::span!("merge");
            let mut outcomes = Vec::with_capacity(trials);
            for (outcome, wrec) in results {
                rec.absorb(&wrec);
                outcomes.push(outcome);
            }
            (outcomes, busy_s)
        }
    };

    let telemetry = BatchTelemetry {
        workers,
        wall_s: batch_start.elapsed().as_secs_f64(),
        busy_s,
        trials,
    };
    let _agg_span = impatience_obs::span!("aggregate");
    aggregate(policy.label(), outcomes, config.warmup_fraction, telemetry)
}

/// Aggregate of a batch of *intra-trial sharded* trials
/// ([`run_trials_sharded`]): the usual [`TrialAggregate`] plus the
/// artifacts specific to the sharded engine.
#[derive(Clone, Debug)]
pub struct ShardedAggregate {
    /// The standard cross-trial statistics.
    pub aggregate: TrialAggregate,
    /// Total contacts processed across all trials and lanes.
    pub contacts_processed: u64,
    /// Per-trial event digests, in trial order — a bit-identity
    /// fingerprint of the whole batch (independent of worker count).
    pub event_digests: Vec<u64>,
    /// Total injected-fault records across all trials.
    pub fault_events: u64,
}

/// Run `trials` trials on the intra-trial sharded engine
/// ([`crate::sharded`]) and aggregate like [`run_trials`].
///
/// The parallelism is *inside* each trial: trials execute one after
/// another, each spreading its shard and lane tasks over `workers`
/// threads (`None` picks one per core). Trial `k` uses seed
/// `base_seed + k`; every statistic, digest, and fault count is
/// independent of `workers` by construction.
///
/// # Errors
/// [`ConfigError`] when the configuration falls outside the sharded
/// engine's supported subset (see [`crate::sharded::validate_sharded`]).
pub fn run_trials_sharded(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
    workers: Option<usize>,
) -> Result<ShardedAggregate, ConfigError> {
    assert!(trials > 0, "need at least one trial");
    let workers = workers.unwrap_or_else(default_workers).max(1);
    let batch_start = Instant::now();
    let mut outcomes = Vec::with_capacity(trials);
    let mut event_digests = Vec::with_capacity(trials);
    let mut contacts_processed = 0u64;
    let mut fault_events = 0u64;
    let mut busy_s = 0.0f64;
    for k in 0..trials {
        let t0 = Instant::now();
        let sharded = run_trial_sharded(
            config,
            source,
            policy.clone(),
            base_seed + k as u64,
            workers,
        )?;
        busy_s += t0.elapsed().as_secs_f64();
        contacts_processed += sharded.contacts_processed;
        fault_events += sharded.fault_log.len() as u64;
        event_digests.push(sharded.event_digest);
        outcomes.push(sharded.outcome);
    }
    let telemetry = BatchTelemetry {
        workers,
        wall_s: batch_start.elapsed().as_secs_f64(),
        busy_s,
        trials,
    };
    Ok(ShardedAggregate {
        aggregate: aggregate(policy.label(), outcomes, config.warmup_fraction, telemetry),
        contacts_processed,
        event_digests,
        fault_events,
    })
}

/// Knobs of a fault-tolerant campaign run ([`run_campaign`]).
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Checkpoint file. `None` disables checkpointing (the campaign
    /// still skips-and-reports panicking trials).
    pub checkpoint_path: Option<PathBuf>,
    /// Trials per checkpoint interval; `0` checkpoints only at the end.
    pub checkpoint_every: usize,
    /// Worker threads (`None` picks one per available core).
    pub workers: Option<usize>,
    /// Test hook: stop after this many completed chunks as if the
    /// process had been killed, leaving the checkpoint behind. `None`
    /// runs to completion.
    pub abort_after_chunks: Option<usize>,
    /// The CLI invocation to store in the checkpoint so `--resume` can
    /// replay it.
    pub cli_args: Vec<String>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            checkpoint_path: None,
            checkpoint_every: 16,
            workers: None,
            abort_after_chunks: None,
            cli_args: Vec::new(),
        }
    }
}

/// Why a campaign could not produce an aggregate.
#[derive(Debug)]
pub enum CampaignError {
    /// The configuration or contact source is invalid.
    Config(ConfigError),
    /// The checkpoint could not be read, written, or matched.
    Checkpoint(CheckpointError),
    /// Every trial panicked; there is nothing to aggregate.
    AllTrialsFailed {
        /// Planned trial count.
        trials: usize,
    },
    /// The [`CampaignOptions::abort_after_chunks`] test hook fired.
    Aborted {
        /// Trials recorded in the checkpoint at the abort point.
        completed: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid campaign configuration: {e}"),
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::AllTrialsFailed { trials } => {
                write!(f, "all {trials} trials failed; nothing to aggregate")
            }
            CampaignError::Aborted { completed } => {
                write!(f, "campaign aborted by test hook after {completed} trials")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Config(e) => Some(e),
            CampaignError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

/// Result of a fault-tolerant campaign.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Aggregate over every trial that completed (this run or a resumed
    /// one), in trial order.
    pub aggregate: TrialAggregate,
    /// `(trial index, panic message)` of skipped trials.
    pub skipped: Vec<(usize, String)>,
    /// Trials restored from the checkpoint instead of re-run.
    pub resumed: usize,
    /// Trials executed by this process.
    pub executed: usize,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "trial panicked (non-string payload)".to_string()
    }
}

/// Run one batch of explicit trial indices, each behind `catch_unwind`,
/// and absorb the instrumentation of successful trials into `rec` in
/// trial order. Returns `(trial, outcome-or-panic-message)` per index
/// plus the summed per-trial wall time.
fn run_batch_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    base_seed: u64,
    batch: &[usize],
    workers: usize,
    rec: &mut Recorder<S>,
) -> (Vec<(usize, TrialRecord)>, f64) {
    let workers = workers.min(batch.len()).max(1);
    if !rec.is_active() {
        let _s = impatience_obs::span!("trials");
        let (results, busy_s) =
            run_sharded(batch.len(), workers, &TrialScratch::new, &|scratch, i| {
                let k = batch[i];
                catch_unwind(AssertUnwindSafe(|| {
                    run_trial_scratch(
                        config,
                        source,
                        policy.clone(),
                        base_seed + k as u64,
                        scratch,
                    )
                }))
                .map_err(panic_message)
            });
        return (batch.iter().copied().zip(results).collect(), busy_s);
    }

    let shape = (
        rec.delay.range(),
        rec.inter_contact.range(),
        rec.delay.buckets(),
    );
    if S::WANTS_EVENTS {
        let trials_span = impatience_obs::span!("trials");
        let (results, busy_s) =
            run_sharded(batch.len(), workers, &TrialScratch::new, &|scratch, i| {
                let k = batch[i];
                catch_unwind(AssertUnwindSafe(|| {
                    let mut wrec =
                        Recorder::with_shape(MemorySink::new(), shape.0, shape.1, shape.2);
                    let outcome = run_trial_observed_scratch(
                        config,
                        source,
                        policy.clone(),
                        base_seed + k as u64,
                        &mut wrec,
                        scratch,
                    );
                    (outcome, wrec)
                }))
                .map_err(panic_message)
            });
        trials_span.close();
        let _merge_span = impatience_obs::span!("merge");
        let mut out = Vec::with_capacity(batch.len());
        for (&k, result) in batch.iter().zip(results) {
            match result {
                Ok((outcome, wrec)) => {
                    rec.absorb(&wrec);
                    for event in &wrec.into_sink().events {
                        rec.sink_mut().record(event);
                    }
                    out.push((k, Ok(outcome)));
                }
                Err(message) => {
                    rec.fault(0.0, "trial_panic", k as u32, 0);
                    out.push((k, Err(message)));
                }
            }
        }
        (out, busy_s)
    } else {
        let trials_span = impatience_obs::span!("trials");
        let (results, busy_s) =
            run_sharded(batch.len(), workers, &TrialScratch::new, &|scratch, i| {
                let k = batch[i];
                catch_unwind(AssertUnwindSafe(|| {
                    let mut wrec = Recorder::with_shape(TallySink, shape.0, shape.1, shape.2);
                    let outcome = run_trial_observed_scratch(
                        config,
                        source,
                        policy.clone(),
                        base_seed + k as u64,
                        &mut wrec,
                        scratch,
                    );
                    (outcome, wrec)
                }))
                .map_err(panic_message)
            });
        trials_span.close();
        let _merge_span = impatience_obs::span!("merge");
        let mut out = Vec::with_capacity(batch.len());
        for (&k, result) in batch.iter().zip(results) {
            match result {
                Ok((outcome, wrec)) => {
                    rec.absorb(&wrec);
                    out.push((k, Ok(outcome)));
                }
                Err(message) => {
                    rec.fault(0.0, "trial_panic", k as u32, 0);
                    out.push((k, Err(message)));
                }
            }
        }
        (out, busy_s)
    }
}

/// Fault-tolerant campaign: [`run_trials_observed`] plus skip-and-report
/// on panicking trials and checkpoint/resume.
///
/// If [`CampaignOptions::checkpoint_path`] names an existing checkpoint
/// for the **same** campaign (fingerprint, trial count, and base seed
/// all match), its trials are restored instead of re-run and only the
/// remainder executes; because cached outcomes round-trip bit-exactly,
/// the final [`TrialAggregate`] is bit-identical to an uninterrupted
/// run. A checkpoint from a different campaign is rejected with
/// [`CheckpointError::Mismatch`]. Progress is snapshotted atomically
/// every [`CampaignOptions::checkpoint_every`] trials, so killing the
/// process at any point loses at most one interval of work and never
/// corrupts the file.
///
/// A panicking trial (e.g. a corrupt trace segment, or the
/// [`crate::faults::FaultConfig::panic_on_seeds`] chaos hook) is
/// recorded as skipped — in the checkpoint, in the returned
/// [`CampaignOutcome::skipped`], and as a `trial_panic` fault event —
/// while the rest of the campaign proceeds. Only if *every* trial fails
/// does the campaign error out.
///
/// Instrumentation caveat on resume: `rec` only sees the trials this
/// process executes; restored trials contribute to the aggregate but
/// not to the event stream. Wall-clock telemetry
/// ([`TrialAggregate::wall_s`] and friends) reflects this process, not
/// the sum over restarts — it is the one part of the aggregate that is
/// *not* bit-stable across a kill/resume.
pub fn run_campaign<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
    options: &CampaignOptions,
    rec: &mut Recorder<S>,
) -> Result<CampaignOutcome, CampaignError> {
    if trials == 0 {
        return Err(ConfigError::InvalidRate {
            message: "campaign needs at least one trial".to_string(),
        }
        .into());
    }
    // Like the engines, resolve the run-time-sized profile before
    // validating (the builder defaults it to one node until the
    // population is known). The population split must be checked first:
    // `clients`/`for_nodes` assume it fits.
    let nodes = source.nodes();
    if let Some(servers) = config.dedicated_servers {
        if !(servers >= 1 && servers < nodes) {
            return Err(ConfigError::InvalidPopulation { servers, nodes }.into());
        }
    }
    if config.profile.nodes() == config.clients(nodes) {
        config.try_validate(nodes)?;
    } else {
        config.for_nodes(nodes).try_validate(nodes)?;
    }
    source.try_validate()?;
    let fp = fingerprint(config, source, policy, trials, base_seed);

    let mut completed: Vec<(usize, TrialRecord)> = Vec::new();
    let mut resumed = 0usize;
    if let Some(path) = &options.checkpoint_path {
        if path.exists() {
            let ckpt = CampaignCheckpoint::load(path)?;
            ckpt.check_identity(&fp, trials, base_seed)?;
            resumed = ckpt.completed.len();
            completed = ckpt.completed;
        }
    }

    let done: HashSet<usize> = completed.iter().map(|&(k, _)| k).collect();
    let pending: Vec<usize> = (0..trials).filter(|k| !done.contains(k)).collect();

    let workers = options.workers.unwrap_or_else(default_workers).max(1);
    let chunk = if options.checkpoint_every == 0 {
        pending.len().max(1)
    } else {
        options.checkpoint_every
    };

    let batch_start = Instant::now();
    let mut busy_s = 0.0f64;
    let mut executed = 0usize;
    let mut chunks_done = 0usize;
    let mut idx = 0usize;
    while idx < pending.len() {
        if options
            .abort_after_chunks
            .is_some_and(|limit| chunks_done >= limit)
        {
            return Err(CampaignError::Aborted {
                completed: completed.len(),
            });
        }
        let batch = &pending[idx..(idx + chunk).min(pending.len())];
        idx += batch.len();
        let (records, batch_busy) =
            run_batch_observed(config, source, policy, base_seed, batch, workers, rec);
        busy_s += batch_busy;
        executed += records.len();
        completed.extend(records);
        completed.sort_by_key(|&(k, _)| k);
        // Checkpoint boundary: snapshot progress and drain any events
        // the sink has batched, so a kill between checkpoints loses at
        // most one interval of trace alongside one interval of trials.
        if let Some(path) = &options.checkpoint_path {
            let _s = impatience_obs::span!("checkpoint_save");
            let ckpt = CampaignCheckpoint {
                fingerprint: fp.clone(),
                base_seed,
                trials,
                cli_args: options.cli_args.clone(),
                completed: completed.clone(),
            };
            ckpt.save(path)?;
        }
        rec.sink_mut().flush();
        chunks_done += 1;
    }

    let mut outcomes = Vec::new();
    let mut skipped = Vec::new();
    for (k, record) in &completed {
        match record {
            Ok(outcome) => outcomes.push(outcome.clone()),
            Err(message) => skipped.push((*k, message.clone())),
        }
    }
    if outcomes.is_empty() {
        return Err(CampaignError::AllTrialsFailed { trials });
    }
    let telemetry = BatchTelemetry {
        workers: workers.min(trials),
        wall_s: batch_start.elapsed().as_secs_f64(),
        busy_s,
        trials: executed.max(1),
    };
    let aggregate = aggregate(policy.label(), outcomes, config.warmup_fraction, telemetry);
    Ok(CampaignOutcome {
        aggregate,
        skipped,
        resumed,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_trial_observed;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn quick_setup() -> (SimConfig, ContactSource) {
        let config = SimConfig::builder(8, 2)
            .demand(Popularity::pareto(8, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(8, 0.08, 800.0);
        (config, source)
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.05), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let unsorted = [5.0, 1.0, 3.0, 2.0, 4.0];
        let mut sorted = unsorted;
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
            assert_eq!(percentile_sorted(&sorted, q), percentile(&unsorted, q));
        }
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_sorted_rejects_empty() {
        let _ = percentile_sorted(&[], 0.5);
    }

    #[test]
    fn aggregate_is_reproducible_and_ordered() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 6, 100);
        let b = run_trials(&config, &source, &policy, 6, 100);
        assert_eq!(a.rates, b.rates, "same seeds must give same trials");
        assert_eq!(a.trials, 6);
        assert!(a.p5_rate <= a.mean_rate + 1e-12);
        assert!(a.mean_rate <= a.p95_rate + 1e-12);
        assert_eq!(a.label, "QCR");
        assert_eq!(a.observed_series.len(), 8);
        assert_eq!(a.mean_final_replicas.len(), 8);
        // QCR replicates, so transmissions occur.
        assert!(a.mean_transmissions > 0.0);
    }

    #[test]
    fn different_base_seed_changes_trials() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 4, 1);
        let b = run_trials(&config, &source, &policy, 4, 1_000);
        assert_ne!(a.rates, b.rates);
    }

    #[test]
    fn final_replica_budget_preserved_in_mean() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let agg = run_trials(&config, &source, &policy, 4, 7);
        let total: f64 = agg.mean_final_replicas.iter().sum();
        assert!((total - 16.0).abs() < 1e-9, "budget 8·2 = 16, got {total}");
    }

    #[test]
    fn aggregate_carries_metric_means_and_telemetry() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let agg = run_trials(&config, &source, &policy, 4, 11);
        // QCR creates mandates and requests flow, so these means move.
        assert!(agg.mean_mandates_created > 0.0);
        assert!(agg.mean_immediate_hits + agg.mean_unfulfilled > 0.0);
        assert!(agg.mean_mandate_cap_hits >= 0.0);
        assert!(agg.workers >= 1 && agg.workers <= 4);
        assert!(agg.wall_s > 0.0);
        assert!(agg.mean_trial_wall_s > 0.0);
        assert!(agg.worker_utilization > 0.0 && agg.worker_utilization <= 1.0);
    }

    #[test]
    fn observed_batch_tallies_all_trials_and_matches_plain_run() {
        use impatience_obs::TallySink;

        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let plain = run_trials(&config, &source, &policy, 5, 42);
        let mut rec = Recorder::new(TallySink);
        let observed = run_trials_observed(&config, &source, &policy, 5, 42, &mut rec);

        // The observed run must reproduce the plain run trial for trial
        // (seeds are position-based, not worker-based), and a live
        // recorder no longer forces the batch serial: it uses the same
        // worker pool as the plain run.
        assert_eq!(plain.rates, observed.rates);
        assert_eq!(plain.mean_final_replicas, observed.mean_final_replicas);
        let expected_workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(5);
        assert_eq!(
            observed.workers, expected_workers,
            "live recorder must use the full worker pool"
        );

        // Tallies cover every trial.
        assert_eq!(rec.counters.get("trials"), 5);
        assert!(
            (rec.counters.get("transmissions") as f64 - observed.mean_transmissions * 5.0).abs()
                < 1e-9
        );
        assert!(
            (rec.counters.get("immediate_hits") as f64 - observed.mean_immediate_hits * 5.0).abs()
                < 1e-9
        );
        assert!(
            (rec.counters.get("unfulfilled") as f64 - observed.mean_unfulfilled * 5.0).abs() < 1e-9
        );
        assert!(rec.delay.count() > 0, "some contact fulfillments expected");
        assert!(rec.inter_contact.count() > 0);
    }

    #[test]
    fn sharded_tallies_match_a_serial_reference() {
        use impatience_obs::TallySink;

        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();

        let mut sharded = Recorder::new(TallySink);
        let _ = run_trials_observed(&config, &source, &policy, 6, 21, &mut sharded);

        // Manual serial reference: one recorder fed trial by trial.
        let mut serial = Recorder::new(TallySink);
        for k in 0..6u64 {
            let _ = run_trial_observed(&config, &source, policy.clone(), 21 + k, &mut serial);
        }

        assert_eq!(sharded.counters, serial.counters);
        assert_eq!(sharded.peaks, serial.peaks);
        // Histograms: bucket counts, totals, and extremes are exact; the
        // running f64 sum may differ in association order by a few ULPs.
        assert_eq!(sharded.delay.count(), serial.delay.count());
        assert_eq!(sharded.delay.min(), serial.delay.min());
        assert_eq!(sharded.delay.max(), serial.delay.max());
        assert_eq!(sharded.delay.quantile(0.5), serial.delay.quantile(0.5));
        assert_eq!(sharded.inter_contact.count(), serial.inter_contact.count());
        assert_eq!(
            sharded.inter_contact.quantile(0.95),
            serial.inter_contact.quantile(0.95)
        );
        let (a, b) = (sharded.delay.mean().unwrap(), serial.delay.mean().unwrap());
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn campaign_without_faults_matches_run_trials_bit_for_bit() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let plain = run_trials(&config, &source, &policy, 6, 50);
        let campaign = run_campaign(
            &config,
            &source,
            &policy,
            6,
            50,
            &CampaignOptions::default(),
            &mut Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(campaign.skipped, vec![]);
        assert_eq!(campaign.resumed, 0);
        assert_eq!(campaign.executed, 6);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&campaign.aggregate.rates), bits(&plain.rates));
        assert_eq!(
            bits(&campaign.aggregate.mean_final_replicas),
            bits(&plain.mean_final_replicas)
        );
        assert_eq!(
            campaign.aggregate.mean_rate.to_bits(),
            plain.mean_rate.to_bits()
        );
    }

    #[test]
    fn campaign_skips_and_reports_panicking_trials() {
        let (mut config, source) = quick_setup();
        // Chaos hook: trial seeds 61 and 63 panic at trial start.
        config.faults = Some(crate::faults::FaultConfig {
            panic_on_seeds: vec![61, 63],
            ..Default::default()
        });
        let policy = PolicyKind::qcr_default();
        let campaign = run_campaign(
            &config,
            &source,
            &policy,
            5,
            60,
            &CampaignOptions::default(),
            &mut Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(campaign.aggregate.trials, 3);
        let skipped: Vec<usize> = campaign.skipped.iter().map(|&(k, _)| k).collect();
        assert_eq!(skipped, vec![1, 3]);
        assert!(campaign.skipped[0].1.contains("chaos panic"));

        // All seeds panicking is a campaign-level error.
        config.faults = Some(crate::faults::FaultConfig {
            panic_on_seeds: (60..65).collect(),
            ..Default::default()
        });
        assert!(matches!(
            run_campaign(
                &config,
                &source,
                &policy,
                5,
                60,
                &CampaignOptions::default(),
                &mut Recorder::disabled(),
            ),
            Err(CampaignError::AllTrialsFailed { trials: 5 })
        ));
    }

    #[test]
    fn campaign_rejects_invalid_config_with_typed_error() {
        let (mut config, source) = quick_setup();
        config.warmup_fraction = 2.0;
        let result = run_campaign(
            &config,
            &source,
            &PolicyKind::qcr_default(),
            3,
            0,
            &CampaignOptions::default(),
            &mut Recorder::disabled(),
        );
        assert!(matches!(
            result,
            Err(CampaignError::Config(ConfigError::InvalidWarmup { .. }))
        ));
    }

    #[test]
    fn event_sinks_receive_the_serial_stream_in_trial_order() {
        use impatience_obs::{Event, MemorySink};

        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();

        let mut parallel = Recorder::new(MemorySink::new());
        let _ = run_trials_observed(&config, &source, &policy, 4, 33, &mut parallel);

        let mut serial = Recorder::new(MemorySink::new());
        for k in 0..4u64 {
            let _ = run_trial_observed(&config, &source, policy.clone(), 33 + k, &mut serial);
        }

        // Event-for-event identical to the serial stream: per-worker
        // buffers are flushed in trial order after the join. TrialDone
        // carries real wall time, so normalize it before comparing.
        let normalize = |events: &[Event]| -> Vec<Event> {
            events
                .iter()
                .map(|e| match *e {
                    Event::TrialDone { seed, .. } => Event::TrialDone { seed, wall_s: 0.0 },
                    ref other => other.clone(),
                })
                .collect()
        };
        assert_eq!(
            normalize(&parallel.sink().events),
            normalize(&serial.sink().events)
        );
        let seeds: Vec<u64> = parallel
            .sink()
            .events
            .iter()
            .filter_map(|e| match *e {
                Event::TrialDone { seed, .. } => Some(seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds, vec![33, 34, 35, 36]);
    }
}
