//! Multi-trial experiment runner with percentile bands.
//!
//! The paper reports averages of "15 or more trials with confidence
//! interval corresponding to 5% and 95% percentiles" (§6.1). Trials are
//! embarrassingly parallel; the runner shards them across OS threads and
//! aggregates.

use std::thread;
use std::time::Instant;

use impatience_obs::{Recorder, Sink};

use crate::config::{ContactSource, SimConfig};
use crate::engine::{run_trial, run_trial_observed, TrialOutcome};
use crate::policy::PolicyKind;

/// Aggregate of many independent trials of one policy.
#[derive(Clone, Debug)]
pub struct TrialAggregate {
    /// Policy label.
    pub label: String,
    /// Number of trials.
    pub trials: usize,
    /// Post-warm-up average observed gain rate, one entry per trial.
    pub rates: Vec<f64>,
    /// Mean of `rates`.
    pub mean_rate: f64,
    /// 5th percentile of `rates` (nearest rank).
    pub p5_rate: f64,
    /// 95th percentile of `rates` (nearest rank).
    pub p95_rate: f64,
    /// Mean over trials of the per-bin observed gain-rate series.
    pub observed_series: Vec<f64>,
    /// Mean over trials of the per-bin expected-utility snapshots.
    pub expected_series: Vec<f64>,
    /// Mean final replica count per item.
    pub mean_final_replicas: Vec<f64>,
    /// Mean transmissions per trial (energy proxy).
    pub mean_transmissions: f64,
    /// Mean immediate (own-cache) hits per trial.
    pub mean_immediate_hits: f64,
    /// Mean requests still open at the horizon per trial.
    pub mean_unfulfilled: f64,
    /// Mean QCR mandates created per trial.
    pub mean_mandates_created: f64,
    /// Mean fulfillments whose mandate was dropped at the cap per trial.
    pub mean_mandate_cap_hits: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Mean wall-clock seconds per trial.
    pub mean_trial_wall_s: f64,
    /// Sum of per-trial wall time over `workers · wall_s`: 1.0 means the
    /// pool never idled, low values mean stragglers dominated.
    pub worker_utilization: f64,
}

/// Wall-clock telemetry collected while sharding trials.
#[derive(Clone, Copy, Debug)]
struct BatchTelemetry {
    workers: usize,
    wall_s: f64,
    busy_s: f64,
    trials: usize,
}

/// Nearest-rank percentile of an unsorted sample (`q` in [0, 1]).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn aggregate(
    label: String,
    outcomes: Vec<TrialOutcome>,
    warmup: f64,
    telemetry: BatchTelemetry,
) -> TrialAggregate {
    assert!(!outcomes.is_empty());
    let trials = outcomes.len();
    let rates: Vec<f64> = outcomes
        .iter()
        .map(|o| o.metrics.average_observed_rate(warmup))
        .collect();
    let mean_rate = rates.iter().sum::<f64>() / trials as f64;

    let bins = outcomes[0].metrics.bins();
    let mut observed_series = vec![0.0; bins];
    let mut expected_series = vec![0.0; bins];
    let mut expected_counts = vec![0usize; bins];
    for o in &outcomes {
        for (acc, v) in observed_series
            .iter_mut()
            .zip(o.metrics.observed_rate_series())
        {
            *acc += v / trials as f64;
        }
        for (b, v) in o.metrics.expected_utility_series().iter().enumerate() {
            if v.is_finite() {
                expected_series[b] += v;
                expected_counts[b] += 1;
            }
        }
    }
    for (v, &c) in expected_series.iter_mut().zip(&expected_counts) {
        *v = if c > 0 { *v / c as f64 } else { f64::NAN };
    }

    let items = outcomes[0].final_replicas.len();
    let mut mean_final_replicas = vec![0.0; items];
    for o in &outcomes {
        for (acc, &r) in mean_final_replicas.iter_mut().zip(&o.final_replicas) {
            *acc += r as f64 / trials as f64;
        }
    }
    let mean_of = |f: &dyn Fn(&TrialOutcome) -> u64| {
        outcomes.iter().map(|o| f(o) as f64).sum::<f64>() / trials as f64
    };

    TrialAggregate {
        label,
        trials,
        mean_rate,
        p5_rate: percentile(&rates, 0.05),
        p95_rate: percentile(&rates, 0.95),
        rates,
        observed_series,
        expected_series,
        mean_final_replicas,
        mean_transmissions: mean_of(&|o| o.metrics.transmissions),
        mean_immediate_hits: mean_of(&|o| o.metrics.immediate_hits),
        mean_unfulfilled: mean_of(&|o| o.metrics.unfulfilled),
        mean_mandates_created: mean_of(&|o| o.metrics.mandates_created),
        mean_mandate_cap_hits: mean_of(&|o| o.metrics.mandate_cap_hits),
        workers: telemetry.workers,
        wall_s: telemetry.wall_s,
        mean_trial_wall_s: telemetry.busy_s / telemetry.trials as f64,
        worker_utilization: if telemetry.wall_s > 0.0 {
            (telemetry.busy_s / (telemetry.workers as f64 * telemetry.wall_s)).min(1.0)
        } else {
            1.0
        },
    }
}

/// Run `trials` independent trials of `policy` in parallel and aggregate.
///
/// Trial `k` uses seed `base_seed + k`, so results are reproducible and
/// different policies can be compared on *paired* randomness by sharing
/// `base_seed`.
pub fn run_trials(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
) -> TrialAggregate {
    run_trials_observed(
        config,
        source,
        policy,
        trials,
        base_seed,
        &mut Recorder::disabled(),
    )
}

/// [`run_trials`] with instrumentation.
///
/// A live recorder implies a *serial* run: every trial feeds the caller's
/// recorder directly, so the event stream (e.g. a JSONL trace) is
/// complete and deterministically ordered, and merged tallies cover all
/// trials. With a disabled recorder the batch shards across worker
/// threads exactly as [`run_trials`] always has. Wall-clock telemetry
/// (total, per-trial, worker utilization) is collected on both paths; its
/// cost is one `Instant` read per trial.
pub fn run_trials_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    base_seed: u64,
    rec: &mut Recorder<S>,
) -> TrialAggregate {
    assert!(trials > 0, "need at least one trial");
    let batch_start = Instant::now();

    if rec.is_active() {
        let mut outcomes = Vec::with_capacity(trials);
        let mut busy_s = 0.0f64;
        for k in 0..trials {
            let t0 = Instant::now();
            outcomes.push(run_trial_observed(
                config,
                source,
                policy.clone(),
                base_seed + k as u64,
                rec,
            ));
            busy_s += t0.elapsed().as_secs_f64();
        }
        let telemetry = BatchTelemetry {
            workers: 1,
            wall_s: batch_start.elapsed().as_secs_f64(),
            busy_s,
            trials,
        };
        return aggregate(policy.label(), outcomes, config.warmup_fraction, telemetry);
    }

    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(trials);
    let (outcomes, busy_s) = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let config = config.clone();
            let source = source.clone();
            let policy = policy.clone();
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                let mut busy = 0.0f64;
                let mut k = w;
                while k < trials {
                    let seed = base_seed + k as u64;
                    let t0 = Instant::now();
                    let outcome = run_trial(&config, &source, policy.clone(), seed);
                    busy += t0.elapsed().as_secs_f64();
                    local.push((k, outcome));
                    k += workers;
                }
                (local, busy)
            }));
        }
        let mut all: Vec<(usize, TrialOutcome)> = Vec::with_capacity(trials);
        let mut busy_s = 0.0f64;
        for handle in handles {
            let (local, busy) = handle.join().expect("trial thread panicked");
            all.extend(local);
            busy_s += busy;
        }
        all.sort_by_key(|(k, _)| *k);
        (all.into_iter().map(|(_, o)| o).collect::<Vec<_>>(), busy_s)
    });

    let telemetry = BatchTelemetry {
        workers,
        wall_s: batch_start.elapsed().as_secs_f64(),
        busy_s,
        trials,
    };
    aggregate(policy.label(), outcomes, config.warmup_fraction, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn quick_setup() -> (SimConfig, ContactSource) {
        let config = SimConfig::builder(8, 2)
            .demand(Popularity::pareto(8, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(8, 0.08, 800.0);
        (config, source)
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.05), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn aggregate_is_reproducible_and_ordered() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 6, 100);
        let b = run_trials(&config, &source, &policy, 6, 100);
        assert_eq!(a.rates, b.rates, "same seeds must give same trials");
        assert_eq!(a.trials, 6);
        assert!(a.p5_rate <= a.mean_rate + 1e-12);
        assert!(a.mean_rate <= a.p95_rate + 1e-12);
        assert_eq!(a.label, "QCR");
        assert_eq!(a.observed_series.len(), 8);
        assert_eq!(a.mean_final_replicas.len(), 8);
        // QCR replicates, so transmissions occur.
        assert!(a.mean_transmissions > 0.0);
    }

    #[test]
    fn different_base_seed_changes_trials() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let a = run_trials(&config, &source, &policy, 4, 1);
        let b = run_trials(&config, &source, &policy, 4, 1_000);
        assert_ne!(a.rates, b.rates);
    }

    #[test]
    fn final_replica_budget_preserved_in_mean() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let agg = run_trials(&config, &source, &policy, 4, 7);
        let total: f64 = agg.mean_final_replicas.iter().sum();
        assert!((total - 16.0).abs() < 1e-9, "budget 8·2 = 16, got {total}");
    }

    #[test]
    fn aggregate_carries_metric_means_and_telemetry() {
        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let agg = run_trials(&config, &source, &policy, 4, 11);
        // QCR creates mandates and requests flow, so these means move.
        assert!(agg.mean_mandates_created > 0.0);
        assert!(agg.mean_immediate_hits + agg.mean_unfulfilled > 0.0);
        assert!(agg.mean_mandate_cap_hits >= 0.0);
        assert!(agg.workers >= 1 && agg.workers <= 4);
        assert!(agg.wall_s > 0.0);
        assert!(agg.mean_trial_wall_s > 0.0);
        assert!(agg.worker_utilization > 0.0 && agg.worker_utilization <= 1.0);
    }

    #[test]
    fn observed_batch_tallies_all_trials_and_matches_plain_run() {
        use impatience_obs::TallySink;

        let (config, source) = quick_setup();
        let policy = PolicyKind::qcr_default();
        let plain = run_trials(&config, &source, &policy, 5, 42);
        let mut rec = Recorder::new(TallySink);
        let observed = run_trials_observed(&config, &source, &policy, 5, 42, &mut rec);

        // The serial observed run must reproduce the parallel plain run
        // trial for trial (seeds are position-based, not worker-based).
        assert_eq!(plain.rates, observed.rates);
        assert_eq!(plain.mean_final_replicas, observed.mean_final_replicas);
        assert_eq!(observed.workers, 1, "live recorder implies a serial run");

        // Tallies cover every trial.
        assert_eq!(rec.counters.get("trials"), 5);
        assert!(
            (rec.counters.get("transmissions") as f64 - observed.mean_transmissions * 5.0).abs()
                < 1e-9
        );
        assert!(
            (rec.counters.get("immediate_hits") as f64 - observed.mean_immediate_hits * 5.0).abs()
                < 1e-9
        );
        assert!(
            (rec.counters.get("unfulfilled") as f64 - observed.mean_unfulfilled * 5.0).abs() < 1e-9
        );
        assert!(rec.delay.count() > 0, "some contact fulfillments expected");
        assert!(rec.inter_contact.count() > 0);
    }
}
