//! The discrete-event engine: replay contacts, generate demand, fulfill
//! requests, and let the policy replicate.
//!
//! Mechanics (following §6.1):
//!
//! * requests arrive as a Poisson process of total rate `Σ_i d_i`; each
//!   request draws its item from the popularity distribution and its
//!   origin node from the demand profile `π`;
//! * a request whose origin already caches the item is fulfilled
//!   immediately with gain `h(0⁺)` (the pure-P2P self-service term);
//! * at each contact, both nodes first fulfill one another's outstanding
//!   requests (gain `h(wait)` recorded per fulfillment); unfulfilled
//!   requests increment their query counters; then the policy's
//!   replication logic runs;
//! * fulfillment delivers (consumes) the content but does **not** write
//!   it into the requester's protocol cache — caches change only through
//!   the replication policy.

use std::borrow::Cow;

use impatience_core::rng::Xoshiro256;
use impatience_core::types::SystemModel;
use impatience_obs::{Recorder, Sink};
use impatience_traces::ContactStream;

use crate::config::{ContactSource, SimConfig};
use crate::contact_bin::BatchedContacts;
use crate::faults::FaultState;
use crate::metrics::Metrics;
use crate::policy::{Fulfillment, PolicyKind};
use crate::state::{RequestArena, SimState};

/// Reusable per-trial working storage: the SoA cache/replica state, the
/// pending-request arenas of both engines, and the per-contact
/// fulfillment buffer.
///
/// A trial begins by `reset`-ing each piece to its freshly-constructed
/// state, so results are bit-identical whether a scratch is fresh or
/// reused — the runner keeps one per worker thread and threads it
/// through every trial, eliminating the per-trial allocation churn that
/// previously dominated `trial` self-time in campaign profiles.
#[derive(Debug, Default)]
pub struct TrialScratch {
    pub(crate) state: SimState,
    pub(crate) requests: RequestArena<f64>,
    pub(crate) slot_requests: RequestArena<u64>,
    pub(crate) fulfilled: Vec<Fulfillment>,
    pub(crate) waits: Vec<f64>,
    pub(crate) gains: Vec<f64>,
}

impl TrialScratch {
    /// Empty scratch; sized lazily by the first trial that uses it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Result of one simulation trial.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// All recorded measurements.
    pub metrics: Metrics,
    /// Replica counts at the end of the trial.
    pub final_replicas: Vec<u32>,
    /// The policy label (e.g. "QCR", "OPT").
    pub label: String,
}

/// Run one trial of `policy` on the given system and contact source.
///
/// The same `(config, source, policy, seed)` quadruple always reproduces
/// the same trajectory bit-for-bit.
pub fn run_trial(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
) -> TrialOutcome {
    run_trial_observed(config, source, policy, seed, &mut Recorder::disabled())
}

/// [`run_trial`] with instrumentation.
///
/// Every simulation event (contact, request, fulfillment, replication)
/// is reported to `rec`; counters, delay and inter-contact histograms,
/// and the peak outstanding-request depth accumulate there. The hooks
/// are statically dispatched on the sink type: monomorphized against
/// `NoopSink` (as [`run_trial`] does) they compile away, so the
/// uninstrumented path pays nothing — see the `observability_overhead`
/// criterion group.
pub fn run_trial_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
    rec: &mut Recorder<S>,
) -> TrialOutcome {
    run_trial_observed_scratch(config, source, policy, seed, rec, &mut TrialScratch::new())
}

/// [`run_trial`] reusing caller-owned working storage.
///
/// The trajectory is bit-identical to a fresh-scratch run; the point is
/// that a worker thread running many trials allocates its state, request
/// arena, and fulfillment buffer once instead of once per trial.
pub fn run_trial_scratch(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
    scratch: &mut TrialScratch,
) -> TrialOutcome {
    run_trial_observed_scratch(
        config,
        source,
        policy,
        seed,
        &mut Recorder::disabled(),
        scratch,
    )
}

/// [`run_trial_observed`] reusing caller-owned working storage.
pub fn run_trial_observed_scratch<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
    rec: &mut Recorder<S>,
    scratch: &mut TrialScratch,
) -> TrialOutcome {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let contacts = source.stream(&mut rng);
    run_trial_core(
        config,
        source.mean_rate(),
        contacts,
        policy,
        rng,
        seed,
        rec,
        scratch,
    )
}

/// [`run_trial`] through the materialized (seed-era) pipeline: the
/// trial's contact stream is drained into an in-memory trace first, then
/// replayed through a zero-copy cursor.
///
/// [`ContactSource::stream`] and [`ContactSource::realize`] consume the
/// trial RNG identically, so this produces **bit-for-bit** the same
/// [`TrialOutcome`] as [`run_trial`] on the same seed — it exists as the
/// regression reference for the streaming path and as the comparison
/// subject of the `contact_pipeline` benchmark.
pub fn run_trial_materialized(
    config: &SimConfig,
    source: &ContactSource,
    policy: PolicyKind,
    seed: u64,
) -> TrialOutcome {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let trace = source.realize(&mut rng);
    run_trial_core(
        config,
        source.mean_rate(),
        ContactStream::cursor(trace),
        policy,
        rng,
        seed,
        &mut Recorder::disabled(),
        &mut TrialScratch::new(),
    )
}

/// The event loop shared by the streaming and materialized entry points:
/// `rng` has already seeded the contact stream, `mu_ref` is the source's
/// reference rate for the homogeneous welfare approximation, `scratch`
/// supplies (and retains for reuse) all per-trial working storage.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by 4 public entry points
fn run_trial_core<S: Sink>(
    config: &SimConfig,
    mu_ref: f64,
    contacts: ContactStream,
    policy: PolicyKind,
    mut rng: Xoshiro256,
    seed: u64,
    rec: &mut Recorder<S>,
    scratch: &mut TrialScratch,
) -> TrialOutcome {
    // Self-profiling spans (impatience_obs::span) are gated process-wide
    // and cost one relaxed atomic load each when profiling is off; they
    // are independent of the recorder's sink, so `--profile` attributes
    // wall time even on otherwise-unobserved runs.
    let _trial_span = impatience_obs::span!("trial");
    let wall_start = rec.is_active().then(std::time::Instant::now);
    rec.trial_start();
    let mut open_requests: u64 = 0;
    // Consume contacts through the compact binary batch format: the
    // sampler encodes `DEFAULT_BATCH` fixed-width records ahead into a
    // reusable buffer, so the hot loop touches no allocator and no
    // enum dispatch per event. Bit-identical to direct consumption —
    // see `contact_bin`.
    let mut contacts = BatchedContacts::new(contacts);
    let nodes = contacts.nodes();
    let duration = contacts.duration();
    // Borrow the caller's config when its profile already fits `nodes`
    // (the common case) instead of deep-cloning demand + profile + shifts
    // once per trial.
    let config: Cow<'_, SimConfig> = if config.profile.nodes() == config.clients(nodes) {
        Cow::Borrowed(config)
    } else {
        Cow::Owned(config.for_nodes(nodes))
    };
    config.validate(nodes);

    // Population shape: pure P2P (every node serves) or dedicated
    // (nodes 0..servers carry caches, the rest only request).
    let servers = config.dedicated_servers.unwrap_or(nodes);
    let client_base = if config.dedicated_servers.is_some() {
        servers
    } else {
        0
    };
    let TrialScratch {
        state,
        requests,
        fulfilled,
        waits,
        gains,
        ..
    } = scratch;
    state.reset(
        nodes,
        config.dedicated_servers.unwrap_or(nodes),
        config.items,
        config.rho,
    );
    state.set_eviction(config.eviction);
    let protocol_utility = config
        .protocol_utility
        .clone()
        .unwrap_or_else(|| config.utility.clone());
    let mut policy_obj = policy.instantiate(
        protocol_utility,
        nodes,
        servers,
        mu_ref,
        config.items,
        config.rho,
        &config.demand,
    );
    policy_obj.initialize(state, &mut rng);

    // Fault injection: the schedule runs on RNG streams derived from the
    // trial seed and the fault seed only, never from `rng` — attaching an
    // *inactive* FaultConfig leaves the trajectory bit-for-bit unchanged.
    if let Some(f) = &config.faults {
        assert!(
            !f.panic_on_seeds.contains(&seed),
            "fault injection: chaos panic for trial seed {seed}"
        );
    }
    let mut faults = config
        .faults
        .as_ref()
        .filter(|f| f.is_active())
        .map(|f| FaultState::new(f, nodes, servers, duration, seed));

    let mut metrics = Metrics::new(duration, config.bin);
    // Demand may shift over time (§7's evolving-demand extension); the
    // active segment drives arrivals, item sampling, and snapshots.
    let mut shifts = config.demand_shifts.iter().peekable();
    let mut current_demand = &config.demand;
    let mut total_rate = current_demand.total();
    let mut item_sampler =
        (total_rate > 0.0).then(|| impatience_core::rng::AliasTable::new(current_demand.rates()));
    let snapshot_system = if mu_ref > 0.0 {
        Some(match config.dedicated_servers {
            Some(k) => SystemModel::dedicated(nodes - k, k, config.rho, mu_ref),
            None => SystemModel::pure_p2p(nodes, config.rho, mu_ref),
        })
    } else {
        None
    };

    requests.reset(nodes);
    fulfilled.clear();
    let mut next_request = if total_rate > 0.0 {
        rng.exp(total_rate)
    } else {
        f64::INFINITY
    };
    let mut next_snapshot = 0.0;

    loop {
        // Lazy contact-stream sampling happens inside peek/next.
        let next_contact_t = {
            let _s = impatience_obs::span!("stream");
            contacts.peek().map_or(f64::INFINITY, |e| e.time)
        };
        let t = next_request.min(next_contact_t);
        // Demand shifts due before the next event take effect first: the
        // arrival process restarts (memorylessly) with the new rates.
        if let Some(&&(shift_t, ref rates)) = shifts.peek() {
            if shift_t <= t.min(duration) {
                shifts.next();
                current_demand = rates;
                total_rate = current_demand.total();
                item_sampler = (total_rate > 0.0)
                    .then(|| impatience_core::rng::AliasTable::new(current_demand.rates()));
                next_request = if total_rate > 0.0 {
                    shift_t + rng.exp(total_rate)
                } else {
                    f64::INFINITY
                };
                continue;
            }
        }
        if !t.is_finite() || t > duration {
            break;
        }
        // Bin-start snapshots due before this event.
        while next_snapshot <= t && next_snapshot < duration {
            if let Some(system) = &snapshot_system {
                let _s = impatience_obs::span!("snapshot");
                metrics.record_snapshot(
                    next_snapshot,
                    &state.replicas,
                    system,
                    current_demand,
                    config.utility.as_ref(),
                );
            }
            next_snapshot += config.bin;
        }
        // Cache-slot faults due by this event fire first: an immediate
        // hit or a contact fulfillment must see the degraded caches.
        if let Some(fs) = faults.as_mut() {
            fs.apply_cache_faults(t, state, &mut metrics, rec);
        }

        if next_request <= next_contact_t {
            // --- request creation ---
            let _s = impatience_obs::span!("request");
            let sampler = item_sampler.as_ref().expect("arrivals imply demand");
            let item = sampler.sample(&mut rng) as u32;
            let node = client_base + config.profile.sample_origin(item as usize, &mut rng);
            metrics.requests_created += 1;
            rec.request(next_request, node as u32, item);
            if state.caches.holds(node, item) {
                metrics.immediate_hits += 1;
                metrics.record_fulfillment(next_request, config.utility.h_zero());
                rec.immediate_hit(next_request, node as u32, item);
            } else {
                requests.push(node, item, next_request);
                if rec.is_active() {
                    open_requests += 1;
                    rec.open_requests(open_requests);
                }
            }
            next_request += rng.exp(total_rate);
        } else {
            // --- contact ---
            let _s = impatience_obs::span!("contact");
            let e = contacts.next().expect("peeked above");
            if let Some(fs) = faults.as_mut() {
                if !fs.admit_contact(e.time, e.a, e.b, &mut metrics, rec) {
                    continue;
                }
            }
            let (a, b) = (e.a as usize, e.b as usize);
            rec.contact(e.time, e.a, e.b);
            fulfilled.clear();
            let exchange_span = impatience_obs::span!("exchange");
            for (n, m) in [(a, b), (b, a)] {
                // Split borrows: peer cache is read-only here. Queries
                // only count against cache-carrying (server) nodes — in a
                // dedicated population, meeting another client neither
                // fulfills nor advances the query counter.
                let cache_m = state.caches.node(m);
                if cache_m.capacity() == 0 {
                    continue;
                }
                requests.retain(n, |item, created, queries| {
                    if cache_m.holds(item) {
                        let wait = e.time - created;
                        fulfilled.push(Fulfillment {
                            node: n,
                            item,
                            queries: *queries + 1,
                            wait,
                        });
                        false
                    } else {
                        *queries += 1;
                        true
                    }
                });
            }
            for f in fulfilled.iter() {
                // LRU bookkeeping: serving a request counts as a use of
                // the peer's copy.
                let server = if f.node == a { b } else { a };
                state.caches.node_mut(server).touch(f.item);
            }
            // Batched gain evaluation: one virtual `h_batch` call per
            // meeting instead of one `h` dispatch per fulfillment; the
            // per-element `w > 0` branch and recording order match the
            // scalar path exactly.
            waits.clear();
            waits.extend(fulfilled.iter().map(|f| f.wait));
            gains.clear();
            config.utility.h_batch(waits, gains);
            for &gain in gains.iter() {
                metrics.record_fulfillment(e.time, gain);
            }
            if rec.is_active() {
                for f in fulfilled.iter() {
                    rec.fulfillment(e.time, f.node as u32, f.item, f.wait, f.queries as u32);
                }
                open_requests -= fulfilled.len() as u64;
            }
            exchange_span.close();
            let _policy_span = impatience_obs::span!("policy");
            let transmissions_before = state.transmissions;
            policy_obj.after_contact(e.time, a, b, state, fulfilled, &mut metrics, &mut rng);
            rec.replications(e.time, state.transmissions - transmissions_before);
        }
    }

    // Trailing snapshots after the last event.
    while next_snapshot < duration {
        if let Some(system) = &snapshot_system {
            let _s = impatience_obs::span!("snapshot");
            metrics.record_snapshot(
                next_snapshot,
                &state.replicas,
                system,
                current_demand,
                config.utility.as_ref(),
            );
        }
        next_snapshot += config.bin;
    }

    let _settle_span = impatience_obs::span!("settle");
    metrics.unfulfilled = requests.len();
    // Settle requests still outstanding at the horizon. For utilities
    // bounded below (step, exponential: h(∞) finite) the pessimistic
    // h(∞) is booked — exact for never-fulfillable requests, slightly
    // conservative otherwise. For unbounded waiting costs (power α < 1)
    // the cost already accrued, h(age), is booked: h(∞) = −∞ cannot be,
    // and plain censoring would flatter item-starving allocations like
    // DOM, which never serve the catalog's tail at all.
    let h_inf = config.utility.h_infinity();
    for (node, item, created) in requests.iter() {
        let age = (duration - created).max(f64::MIN_POSITIVE);
        let gain = if h_inf.is_finite() {
            h_inf
        } else {
            config.utility.h(age)
        };
        metrics.record_settlement(duration, gain);
        rec.unfulfilled(duration, node as u32, item, age);
    }
    metrics.transmissions = state.transmissions;
    if let Some(start) = wall_start {
        rec.trial_done(seed, start.elapsed().as_secs_f64());
    }
    TrialOutcome {
        metrics,
        // Clone rather than take: the scratch state stays structurally
        // sound for the next trial's reset.
        final_replicas: state.replicas.clone(),
        label: policy.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QcrConfig;
    use impatience_core::demand::Popularity;
    use impatience_core::prelude::{greedy_homogeneous, uniform};
    use impatience_core::types::SystemModel;
    use impatience_core::utility::Step;
    use impatience_traces::{ContactEvent, ContactTrace};
    use std::sync::Arc;

    fn small_config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build()
    }

    #[test]
    fn deterministic_per_seed() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.05, 1_000.0);
        let a = run_trial(&config, &source, PolicyKind::qcr_default(), 7);
        let b = run_trial(&config, &source, PolicyKind::qcr_default(), 7);
        assert_eq!(a.final_replicas, b.final_replicas);
        assert_eq!(a.metrics.fulfillments(), b.metrics.fulfillments());
        let c = run_trial(&config, &source, PolicyKind::qcr_default(), 8);
        // Different seeds produce different trajectories (compare the
        // full per-bin series; scalar counts could coincide by chance).
        assert_ne!(
            a.metrics.observed_rate_series(),
            c.metrics.observed_rate_series()
        );
    }

    #[test]
    fn streaming_matches_materialized_bit_for_bit() {
        // The tentpole regression: lazily sampled contacts must drive the
        // exact trajectory a pre-materialized trace does, on every shared
        // seed, for both source kinds.
        let config = small_config(10, 2);
        let homogeneous = ContactSource::homogeneous(10, 0.05, 1_000.0);
        let mut trace_rng = Xoshiro256::seed_from_u64(99);
        let fixed = ContactSource::trace(impatience_traces::gen::poisson_homogeneous(
            10,
            0.05,
            1_000.0,
            &mut trace_rng,
        ));
        for source in [&homogeneous, &fixed] {
            for seed in [0u64, 7, 41] {
                let lazy = run_trial(&config, source, PolicyKind::qcr_default(), seed);
                let mat = run_trial_materialized(&config, source, PolicyKind::qcr_default(), seed);
                assert_eq!(lazy.final_replicas, mat.final_replicas, "seed {seed}");
                assert_eq!(lazy.label, mat.label);
                let (a, b) = (&lazy.metrics, &mat.metrics);
                assert_eq!(a.requests_created, b.requests_created, "seed {seed}");
                assert_eq!(a.immediate_hits, b.immediate_hits);
                assert_eq!(a.unfulfilled, b.unfulfilled);
                assert_eq!(a.transmissions, b.transmissions);
                assert_eq!(a.fulfillments(), b.fulfillments());
                assert_eq!(a.observed_rate_series(), b.observed_rate_series());
            }
        }
    }

    #[test]
    fn qcr_preserves_cache_budget_and_sticky() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.1, 2_000.0);
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 3);
        let total: u32 = out.final_replicas.iter().sum();
        assert_eq!(total, 20, "global cache must stay full");
        for (i, &r) in out.final_replicas.iter().enumerate() {
            assert!(r >= 1, "item {i} lost despite sticky replica");
        }
    }

    #[test]
    fn requests_get_fulfilled() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.1, 2_000.0);
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 1);
        assert!(out.metrics.requests_created > 500);
        assert!(
            out.metrics.fulfillments() > out.metrics.requests_created / 2,
            "most requests should be fulfilled ({} of {})",
            out.metrics.fulfillments(),
            out.metrics.requests_created
        );
        // Some immediate hits expected in a pure-P2P system.
        assert!(out.metrics.immediate_hits > 0);
    }

    #[test]
    fn static_allocation_never_changes() {
        let items = 10;
        let counts = uniform(items, 10, 2);
        let config = small_config(items, 2);
        let source = ContactSource::homogeneous(10, 0.1, 1_000.0);
        let policy = PolicyKind::Static {
            label: "UNI",
            counts: counts.clone(),
        };
        let out = run_trial(&config, &source, policy, 5);
        assert_eq!(out.final_replicas, counts.counts());
        assert_eq!(out.metrics.transmissions, 0);
        assert_eq!(out.label, "UNI");
    }

    #[test]
    fn opt_beats_uniform_under_tight_deadline() {
        // Step(τ=1) with μ=0.05: tight deadline, popular items dominate —
        // the optimal allocation must clearly beat UNI (Fig. 4 right).
        let items = 20;
        let nodes = 20;
        let rho = 2;
        let utility = Step::new(1.0);
        let config = SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(1.0))
            .utility(Arc::new(utility))
            .bin(200.0)
            .build();
        let source = ContactSource::homogeneous(nodes, 0.05, 4_000.0);
        let system = SystemModel::pure_p2p(nodes, rho, 0.05);
        let opt_counts = greedy_homogeneous(&system, &config.demand, &utility);
        let run = |counts, label| {
            let out = run_trial(&config, &source, PolicyKind::Static { label, counts }, 11);
            out.metrics.average_observed_rate(0.2)
        };
        let u_opt = run(opt_counts, "OPT");
        let u_uni = run(uniform(items, nodes, rho), "UNI");
        assert!(
            u_opt > u_uni * 1.1,
            "OPT ({u_opt}) should clearly beat UNI ({u_uni})"
        );
    }

    #[test]
    fn empty_trace_only_immediate_hits() {
        let config = small_config(4, 2);
        let trace = ContactTrace::new(4, 500.0, vec![]);
        let source = ContactSource::trace(trace);
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 2);
        assert_eq!(out.metrics.fulfillments(), out.metrics.immediate_hits);
        assert!(out.metrics.unfulfilled > 0);
    }

    #[test]
    fn zero_demand_runs_quietly() {
        let config = SimConfig::builder(3, 1)
            .demand(impatience_core::demand::DemandRates::new(vec![
                0.0, 0.0, 0.0,
            ]))
            .utility(Arc::new(Step::new(1.0)))
            .build();
        let source = ContactSource::homogeneous(5, 0.1, 100.0);
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 1);
        assert_eq!(out.metrics.requests_created, 0);
        assert_eq!(out.metrics.fulfillments(), 0);
    }

    #[test]
    fn fixed_trace_fulfills_in_order() {
        // Node 1 holds the item; node 0 requests it; they meet at t=50.
        let config = SimConfig::builder(1, 1)
            .demand(impatience_core::demand::DemandRates::new(vec![10.0]))
            .utility(Arc::new(Step::new(100.0)))
            .bin(10.0)
            .build();
        let trace = ContactTrace::new(2, 100.0, vec![ContactEvent::new(50.0, 0, 1)]);
        let source = ContactSource::trace(trace);
        // With a single item and sticky seeding, both nodes may hold it;
        // run and check nothing breaks and gains are recorded.
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 4);
        assert!(out.metrics.requests_created > 100);
        assert!(out.metrics.fulfillments() > 0);
    }

    #[test]
    fn mandate_cap_is_observed() {
        let config = small_config(20, 1);
        let source = ContactSource::homogeneous(20, 0.02, 3_000.0);
        let policy = PolicyKind::Qcr(QcrConfig {
            mandate_cap: 1,
            reaction: crate::policy::Reaction::Constant(50.0),
            ..QcrConfig::default()
        });
        let out = run_trial(&config, &source, policy, 6);
        assert!(out.metrics.mandate_cap_hits > 0);
        assert!(out.metrics.mandates_created <= out.metrics.fulfillments());
    }

    #[test]
    fn observed_trial_matches_plain_run_and_metrics() {
        use impatience_obs::{Event, MemorySink, Recorder};

        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.05, 1_000.0);
        let plain = run_trial(&config, &source, PolicyKind::qcr_default(), 7);
        let mut rec = Recorder::new(MemorySink::new());
        let observed = run_trial_observed(&config, &source, PolicyKind::qcr_default(), 7, &mut rec);

        // Instrumentation must not perturb the trajectory.
        assert_eq!(plain.final_replicas, observed.final_replicas);
        assert_eq!(
            plain.metrics.fulfillments(),
            observed.metrics.fulfillments()
        );
        assert_eq!(plain.metrics.transmissions, observed.metrics.transmissions);

        // Recorder counters are the same facts Metrics aggregates.
        let m = &observed.metrics;
        assert_eq!(rec.counters.get("requests"), m.requests_created);
        assert_eq!(rec.counters.get("immediate_hits"), m.immediate_hits);
        assert_eq!(rec.counters.get("unfulfilled"), m.unfulfilled);
        assert_eq!(rec.counters.get("transmissions"), m.transmissions);
        assert_eq!(
            rec.counters.get("fulfillments") + rec.counters.get("immediate_hits"),
            m.fulfillments()
        );
        assert_eq!(rec.delay.count(), rec.counters.get("fulfillments"));
        assert!(rec.peaks.get("open_requests") > 0);
        assert_eq!(rec.counters.get("trials"), 1);

        // The event stream is consistent with the counters.
        let events = &rec.sink().events;
        let n = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;
        assert_eq!(n("contact"), rec.counters.get("contacts"));
        assert_eq!(n("request"), m.requests_created);
        assert_eq!(n("fulfillment"), rec.counters.get("fulfillments"));
        assert!(matches!(
            events.last(),
            Some(Event::TrialDone { seed: 7, .. })
        ));
    }

    #[test]
    fn snapshots_cover_all_bins() {
        let config = small_config(5, 2);
        let source = ContactSource::homogeneous(8, 0.05, 1_000.0);
        let out = run_trial(&config, &source, PolicyKind::qcr_default(), 9);
        // bin = 100 → 10 snapshots, all finite.
        let series = out.metrics.expected_utility_series();
        assert_eq!(series.len(), 10);
        assert!(series.iter().all(|v| v.is_finite()), "{series:?}");
    }
}
