//! Fixed-allocation policies — the perfect-control-channel competitors.
//!
//! §6.1: the OPT/UNI/SQRT/PROP/DOM heuristics "have access to a perfect
//! control-channel and the ability to set the cache precisely and without
//! restriction to their desired allocation". Concretely: caches are
//! pinned to the target allocation at trial start (a fresh random
//! materialization of the replica counts each trial) and never change.

use impatience_core::allocation::{AllocationMatrix, ReplicaCounts};
use impatience_core::rng::Xoshiro256;

use crate::metrics::Metrics;
use crate::policy::{Fulfillment, ReplicationPolicy};
use crate::state::SimState;

/// Pin caches to a fixed replica-count allocation.
pub struct StaticAllocation {
    counts: ReplicaCounts,
}

impl StaticAllocation {
    /// Create the policy for the given allocation.
    pub fn new(counts: ReplicaCounts) -> Self {
        StaticAllocation { counts }
    }
}

impl ReplicationPolicy for StaticAllocation {
    fn initialize(&mut self, state: &mut SimState, rng: &mut Xoshiro256) {
        assert_eq!(self.counts.items(), state.items(), "catalog size mismatch");
        assert_eq!(
            self.counts.servers(),
            state.servers(),
            "allocation is over a different server population"
        );
        let rho = state
            .caches
            .iter()
            .map(|c| c.capacity())
            .max()
            .expect("at least one node");
        let alloc = AllocationMatrix::from_counts_shuffled(&self.counts, rho, rng);
        state.load_allocation(&alloc);
    }

    #[allow(clippy::too_many_arguments)]
    fn after_contact(
        &mut self,
        _t: f64,
        _a: usize,
        _b: usize,
        _state: &mut SimState,
        _fulfilled: &[Fulfillment],
        _metrics: &mut Metrics,
        _rng: &mut Xoshiro256,
    ) {
        // Perfect control channel: the allocation is already where it
        // should be; meetings only fulfill requests.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialize_pins_exact_counts() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let counts = ReplicaCounts::new(vec![3, 2, 0, 1], 4);
        let mut policy = StaticAllocation::new(counts.clone());
        let mut state = SimState::new(4, 4, 2);
        policy.initialize(&mut state, &mut rng);
        assert_eq!(state.replicas, vec![3, 2, 0, 1]);
    }

    #[test]
    fn contacts_do_not_move_content() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let counts = ReplicaCounts::new(vec![2, 2], 4);
        let mut policy = StaticAllocation::new(counts);
        let mut state = SimState::new(4, 2, 1);
        policy.initialize(&mut state, &mut rng);
        let snapshot = state.replicas.clone();
        let mut metrics = Metrics::new(10.0, 1.0);
        let f = Fulfillment {
            node: 0,
            item: 0,
            queries: 3,
            wait: 2.0,
        };
        policy.after_contact(1.0, 0, 1, &mut state, &[f], &mut metrics, &mut rng);
        assert_eq!(state.replicas, snapshot);
        assert_eq!(state.transmissions, 0);
    }

    #[test]
    fn trials_differ_in_placement_but_not_counts() {
        let counts = ReplicaCounts::new(vec![2, 1, 1], 4);
        let run = |seed| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut policy = StaticAllocation::new(counts.clone());
            let mut state = SimState::new(4, 3, 1);
            policy.initialize(&mut state, &mut rng);
            let holders: Vec<Vec<u32>> = state.caches.iter().map(|c| c.items().to_vec()).collect();
            (state.replicas.clone(), holders)
        };
        let (c1, h1) = run(1);
        let (c2, h2) = run(99);
        assert_eq!(c1, c2);
        assert_ne!(h1, h2, "placements should be shuffled per trial");
    }
}
