//! Hill climbing by local cache manipulation — §4.1's remark made
//! concrete: "starting from a cache allocation, a hill climbing algorithm
//! with full knowledge can reach the optimal cache allocation only from
//! local manipulation of cache between nodes that are currently meeting."
//!
//! At each meeting the policy evaluates, with *global* knowledge of the
//! replica counts and demand (hence "full knowledge" — this is a
//! semi-centralized baseline, not a competitor to QCR's locality), every
//! single-slot replacement available to the two nodes:
//! `replace item j in this cache by item i` changes the counts by
//! `x_j −= 1, x_i += 1`. Because the homogeneous welfare is concave and
//! separable in the counts (Theorem 2), the best improving move is found
//! from per-item marginals, and repeated local moves converge to the
//! global optimum.

use std::sync::Arc;

use impatience_core::demand::DemandRates;
use impatience_core::rng::Xoshiro256;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::{expected_gain_continuous, expected_gain_pure_p2p};

use crate::metrics::Metrics;
use crate::policy::{Fulfillment, ReplicationPolicy};
use crate::state::SimState;

/// The §4.1 hill-climbing baseline (full knowledge, local moves only).
pub struct HillClimb {
    demand: DemandRates,
    utility: Arc<dyn DelayUtility>,
    system: SystemModel,
    /// Moves per meeting (1 = the paper's minimal local manipulation).
    moves_per_contact: usize,
}

impl HillClimb {
    /// Create the policy for a homogeneous system description matching
    /// the simulation (used to evaluate welfare marginals).
    pub fn new(
        system: SystemModel,
        demand: DemandRates,
        utility: Arc<dyn DelayUtility>,
        moves_per_contact: usize,
    ) -> Self {
        assert!(moves_per_contact > 0);
        HillClimb {
            demand,
            utility,
            system,
            moves_per_contact,
        }
    }

    /// Marginal welfare of taking item `i` from `x` to `x+1` replicas.
    fn gain_up(&self, i: usize, x: u32) -> f64 {
        self.demand.rate(i) * (self.item_gain(x + 1) - self.item_gain(x))
    }

    /// Marginal welfare lost by taking item `j` from `x` to `x−1`.
    fn loss_down(&self, j: usize, x: u32) -> f64 {
        debug_assert!(x > 0);
        self.demand.rate(j) * (self.item_gain(x) - self.item_gain(x - 1))
    }

    fn item_gain(&self, x: u32) -> f64 {
        if self.system.population.is_pure_p2p() {
            expected_gain_pure_p2p(
                self.utility.as_ref(),
                x as f64,
                self.system.clients(),
                self.system.contact_rate,
            )
        } else {
            expected_gain_continuous(self.utility.as_ref(), x as f64, self.system.contact_rate)
        }
    }

    /// Perform the best improving single-slot replacement available at
    /// `node`, if any. Returns whether a move was made.
    fn improve_node(&self, node: usize, state: &mut SimState) -> bool {
        let items = state.items();
        // Best item to add: the one with the largest up-marginal among
        // items this node does not yet hold (adding a duplicate to the
        // same cache is not a new replica).
        let mut best_add: Option<(f64, u32)> = None;
        for i in 0..items {
            let i32_ = i as u32;
            if self.demand.rate(i) == 0.0 || state.caches.holds(node, i32_) {
                continue; // undemanded items earn nothing (0·(−∞) is NaN, not value)
            }
            let x = state.replicas[i];
            if (x as usize) >= state.nodes() {
                continue;
            }
            let up = self.gain_up(i, x);
            // d > 0 and gain(x) = −∞ at x = 0 make the first copy
            // infinitely valuable; the subtraction yields +∞ directly,
            // NaN only via 0·∞ which the demand guard above excludes.
            let up = if up.is_nan() { f64::INFINITY } else { up };
            if best_add.as_ref().is_none_or(|&(g, _)| up > g) {
                best_add = Some((up, i32_));
            }
        }
        // Cheapest occupant to drop (never the sticky item; never the
        // last replica of an item when dropping it would cost ∞).
        let mut best_drop: Option<(f64, u32)> = None;
        let sticky = state.caches.node(node).sticky_item();
        for &j in state.caches.node(node).items() {
            if Some(j) == sticky {
                continue;
            }
            if self.demand.rate(j as usize) == 0.0 {
                // Undemanded occupants are free to drop.
                best_drop = Some((0.0, j));
                continue;
            }
            let x = state.replicas[j as usize];
            let down = self.loss_down(j as usize, x);
            let down = if down.is_nan() { f64::INFINITY } else { down };
            if best_drop.as_ref().is_none_or(|&(l, _)| down < l) {
                best_drop = Some((down, j));
            }
        }
        let Some((up, add)) = best_add else {
            return false;
        };
        // A free slot (catalog smaller than capacity) is filled directly.
        if state.caches.node(node).len() < state.caches.node(node).capacity() {
            if up <= 0.0 {
                return false;
            }
            let filled = state.caches.node_mut(node).fill(add);
            debug_assert!(filled);
            state.replicas[add as usize] += 1;
            state.transmissions += 1;
            return true;
        }
        let Some((down, drop)) = best_drop else {
            return false;
        };
        if up <= down + 1e-15 {
            return false; // local optimum at this node
        }
        // Swap: drop `drop`, fetch `add` (one transmission).
        let swapped = state.caches.node_mut(node).swap_item(drop, add);
        debug_assert!(swapped);
        state.replicas[drop as usize] -= 1;
        state.replicas[add as usize] += 1;
        state.transmissions += 1;
        true
    }
}

impl ReplicationPolicy for HillClimb {
    #[allow(clippy::too_many_arguments)]
    fn after_contact(
        &mut self,
        _t: f64,
        a: usize,
        b: usize,
        state: &mut SimState,
        _fulfilled: &[Fulfillment],
        _metrics: &mut Metrics,
        _rng: &mut Xoshiro256,
    ) {
        for _ in 0..self.moves_per_contact {
            let moved_a = self.improve_node(a, state);
            let moved_b = self.improve_node(b, state);
            if !moved_a && !moved_b {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ContactSource, SimConfig};
    use crate::engine::run_trial;
    use crate::policy::PolicyKind;
    use impatience_core::demand::Popularity;
    use impatience_core::solver::greedy::greedy_homogeneous;
    use impatience_core::utility::Step;
    use impatience_core::welfare::social_welfare_homogeneous;

    #[test]
    fn converges_to_near_optimal_welfare() {
        let nodes = 30;
        let rho = 3;
        let mu = 0.05;
        let items = 20;
        let system = SystemModel::pure_p2p(nodes, rho, mu);
        let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
        let utility = Step::new(2.0);

        let config = SimConfig::builder(items, rho)
            .demand(demand.clone())
            .utility(std::sync::Arc::new(utility))
            .bin(200.0)
            .warmup_fraction(0.5)
            .build();
        let source = ContactSource::homogeneous(nodes, mu, 3_000.0);
        let out = run_trial(
            &config,
            &source,
            PolicyKind::HillClimb {
                moves_per_contact: 1,
            },
            11,
        );
        let w_final = social_welfare_homogeneous(
            &system,
            &demand,
            &utility,
            &out.final_replicas
                .iter()
                .map(|&c| c as f64)
                .collect::<Vec<_>>(),
        );
        let opt = greedy_homogeneous(&system, &demand, &utility);
        let w_opt = social_welfare_homogeneous(&system, &demand, &utility, &opt.as_f64());
        assert!(
            w_final > 0.97 * w_opt,
            "hill climbing reached {w_final} vs optimum {w_opt}"
        );
        assert!(out.metrics.transmissions > 0, "no moves were made");
    }

    #[test]
    fn ignores_zero_demand_items_under_cost_utilities() {
        // Regression: 0·(−∞) = NaN once made undemanded items look
        // infinitely valuable under waiting-cost utilities.
        use impatience_core::utility::Power;
        let mut rates = vec![1.0; 6];
        rates.push(0.0); // item 6: never requested
        let demand = impatience_core::demand::DemandRates::new(rates);
        let config = SimConfig::builder(7, 2)
            .demand(demand)
            .utility(std::sync::Arc::new(Power::new(0.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(8, 0.1, 1_500.0);
        let out = run_trial(
            &config,
            &source,
            PolicyKind::HillClimb {
                moves_per_contact: 1,
            },
            2,
        );
        assert!(
            out.final_replicas[6] <= 2,
            "undemanded item hoarded {} replicas",
            out.final_replicas[6]
        );
        // Demanded items must all keep healthy replication.
        for i in 0..6 {
            assert!(out.final_replicas[i] >= 1);
        }
    }

    #[test]
    fn respects_budget_and_sticky() {
        let config = SimConfig::builder(10, 2)
            .demand(Popularity::pareto(10, 1.0).demand_rates(1.0))
            .utility(std::sync::Arc::new(Step::new(1.0)))
            .bin(100.0)
            .build();
        let source = ContactSource::homogeneous(10, 0.1, 1_000.0);
        let out = run_trial(
            &config,
            &source,
            PolicyKind::HillClimb {
                moves_per_contact: 2,
            },
            3,
        );
        let total: u32 = out.final_replicas.iter().sum();
        assert_eq!(total, 20, "budget must be conserved");
        for (i, &x) in out.final_replicas.iter().enumerate() {
            assert!(x >= 1, "sticky copy of item {i} lost");
        }
    }
}
