//! Query Counting Replication with mandate routing (paper §5).
//!
//! On each fulfilled request the final query-counter value `y` is fed to
//! the reaction function `ψ(y) ∝ (|S|/y)·φ(|S|/y)` (Property 2), and that
//! many replication *mandates* for the item are minted at the fulfilled
//! node. A mandate executes when its holder meets a node lacking the item
//! *while the holder still has a copy* — in an opportunistic network that
//! coincidence is rare for unpopular items, so unrouted mandate pools
//! diverge and the allocation drifts (Fig. 3). Mandate routing (§5.3)
//! repairs this: at every meeting, mandates migrate toward nodes holding
//! the replicas they need, with the item's sticky seed node preferred
//! (it can never lose its copy).

use std::collections::BTreeMap;
use std::sync::Arc;

use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;

use crate::metrics::Metrics;
use crate::policy::{Fulfillment, ReplicationPolicy};
use crate::state::SimState;

/// How many replicas to mint per fulfillment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reaction {
    /// The impatience-matched reaction `ψ(y)` of Property 2 (default).
    Psi,
    /// A constant count — "passive replication", which drives the cache
    /// toward the proportional allocation regardless of impatience.
    Constant(f64),
}

/// Tunable knobs of the QCR implementation (§6.1 defaults).
#[derive(Clone, Debug)]
pub struct QcrConfig {
    /// Move mandates toward replica holders at each meeting (§5.3).
    /// Turning this off reproduces the divergence pathology of Fig. 3.
    pub mandate_routing: bool,
    /// "Replication with rewriting": meeting a node that already holds
    /// the item consumes a mandate even though no copy is made. The
    /// paper's experiments run with rewriting *off*.
    pub rewriting: bool,
    /// Multiplier applied to the reaction function (its proportionality
    /// constant is free; this trades convergence speed against churn).
    pub gain_scale: f64,
    /// Auto-normalize the reaction so that a fulfillment at the *uniform-
    /// allocation* query count `y* = |I|/ρ` mints about one replica.
    /// Property 2 leaves ψ's constant free; without normalization, steep
    /// reactions (e.g. ψ(y) = y² for α = −1) mint hundreds of replicas
    /// per fulfillment and the resulting cache churn destroys the very
    /// allocation QCR is building.
    pub normalize_reaction: bool,
    /// Per-fulfillment cap on minted mandates — bounds transient spikes
    /// of ψ for very rare items; hits are counted in the metrics.
    pub mandate_cap: u64,
    /// Reaction function choice.
    pub reaction: Reaction,
}

impl Default for QcrConfig {
    fn default() -> Self {
        QcrConfig {
            mandate_routing: true,
            rewriting: false,
            gain_scale: 1.0,
            normalize_reaction: true,
            mandate_cap: 20,
            reaction: Reaction::Psi,
        }
    }
}

/// A QCR policy instance (per trial).
pub struct Qcr {
    cfg: QcrConfig,
    utility: Arc<dyn DelayUtility>,
    servers: usize,
    /// Reference contact rate used to evaluate ψ (the designer's estimate
    /// of μ; the proportionality constant of ψ is free, but its shape in
    /// `y` depends on μ for some families).
    mu_ref: f64,
    /// Outstanding mandates per node: item → count.
    mandates: Vec<BTreeMap<u32, u64>>,
    /// Combined multiplier on the reaction function (gain_scale ×
    /// normalization).
    scale: f64,
}

impl Qcr {
    /// Create a QCR policy for a population of `nodes` nodes of which
    /// `servers` carry caches (`servers == nodes` in pure P2P), with a
    /// catalog of `items` items and cache capacity `rho`.
    pub fn new(
        cfg: QcrConfig,
        utility: Arc<dyn DelayUtility>,
        nodes: usize,
        servers: usize,
        mu_ref: f64,
        items: usize,
        rho: usize,
    ) -> Self {
        assert!(cfg.gain_scale > 0.0, "gain scale must be positive");
        assert!(servers > 0 && servers <= nodes, "need 1 ≤ servers ≤ nodes");
        let mu_ref = if mu_ref > 0.0 { mu_ref } else { 1.0 };
        let scale = reaction_scale(&cfg, utility.as_ref(), servers, mu_ref, items, rho);
        Qcr {
            cfg,
            utility,
            servers,
            mu_ref,
            mandates: vec![BTreeMap::new(); nodes],
            scale,
        }
    }

    /// Total outstanding mandates (diagnostic; diverges without routing).
    pub fn outstanding_mandates(&self) -> u64 {
        self.mandates.iter().flat_map(|m| m.values()).sum()
    }

    /// Mint mandates for a fulfillment after `queries` failed lookups.
    fn mint(
        &mut self,
        node: usize,
        item: u32,
        queries: u64,
        metrics: &mut Metrics,
        rng: &mut Xoshiro256,
    ) {
        if queries == 0 {
            // Immediate self-cache hit: the item is plentiful where it is
            // demanded; ψ(0⁺) → 0 for every built-in family.
            return;
        }
        let raw = match self.cfg.reaction {
            Reaction::Psi => {
                self.utility
                    .psi(queries as f64, self.servers as f64, self.mu_ref)
                    * self.scale
            }
            Reaction::Constant(k) => k * self.cfg.gain_scale,
        };
        if raw.is_nan() || raw <= 0.0 {
            return; // nothing to mint
        }
        // Stochastic rounding preserves the expected replica count.
        let mut count = raw.floor() as u64;
        if rng.bernoulli(raw - count as f64) {
            count += 1;
        }
        if count > self.cfg.mandate_cap {
            metrics.mandate_cap_hits += 1;
            count = self.cfg.mandate_cap;
        }
        if count > 0 {
            // The per-item pool at a node is bounded by the same cap:
            // outstanding mandates beyond it are discarded, which bounds
            // the overshoot a burst of fulfillments can cause.
            let pool = self.mandates[node].entry(item).or_insert(0);
            let before = *pool;
            *pool = (*pool + count).min(self.cfg.mandate_cap);
            metrics.mandates_created += *pool - before;
        }
    }

    /// Execute eligible mandates held by `carrier` against peer `peer`:
    /// one copy of each mandated item may be produced per meeting, and
    /// only when the carrier itself possesses a replica to transmit —
    /// §5.3's possession requirement ("it could be that, when a replica
    /// of the item needs to be produced, this item is no longer in the
    /// possession of the node desiring to replicate it"). Mandates whose
    /// carrier lacks the item *stall*; mandate routing exists precisely
    /// to move them to nodes that can execute them.
    fn execute(&mut self, carrier: usize, peer: usize, state: &mut SimState, rng: &mut Xoshiro256) {
        let items: Vec<u32> = self.mandates[carrier].keys().copied().collect();
        for item in items {
            if !state.caches.holds(carrier, item) {
                continue; // stalled: replica lost to random replacement
            }
            if state.caches.holds(peer, item) {
                if self.cfg.rewriting {
                    Self::consume(&mut self.mandates[carrier], item, 1);
                }
                continue; // no rewriting: contact simply ignored
            }
            if state.replicate(item, peer, rng) {
                Self::consume(&mut self.mandates[carrier], item, 1);
            }
        }
    }

    fn consume(pool: &mut BTreeMap<u32, u64>, item: u32, n: u64) {
        if let Some(c) = pool.get_mut(&item) {
            *c = c.saturating_sub(n);
            if *c == 0 {
                pool.remove(&item);
            }
        }
    }

    /// Route mandates between the two meeting nodes (§5.3 / §6.1): give
    /// them to the copy holder; split when both (or neither) hold the
    /// item; prefer the sticky seed with a 2/3 share.
    fn route(&mut self, a: usize, b: usize, state: &SimState, rng: &mut Xoshiro256) {
        let mut items: Vec<u32> = self.mandates[a]
            .keys()
            .chain(self.mandates[b].keys())
            .copied()
            .collect();
        items.sort_unstable();
        items.dedup();
        for item in items {
            let total = (self.mandates[a].get(&item).copied().unwrap_or(0)
                + self.mandates[b].get(&item).copied().unwrap_or(0))
            .min(self.cfg.mandate_cap);
            if total == 0 {
                continue;
            }
            let ha = state.caches.holds(a, item);
            let hb = state.caches.holds(b, item);
            let sticky = state.sticky_owner[item as usize];
            let to_a = match (ha, hb) {
                (true, false) => total,
                (false, true) => 0,
                _ => {
                    // Both hold (or neither holds): share, preferring the
                    // sticky seed when it holds a copy.
                    if ha && sticky == a {
                        (total * 2).div_ceil(3)
                    } else if hb && sticky == b {
                        total - (total * 2).div_ceil(3)
                    } else {
                        // Even split; odd leftover assigned by coin flip.
                        let half = total / 2;
                        if total % 2 == 1 && rng.bernoulli(0.5) {
                            half + 1
                        } else {
                            half
                        }
                    }
                }
            };
            set_mandates(&mut self.mandates[a], item, to_a);
            set_mandates(&mut self.mandates[b], item, total - to_a);
        }
    }
}

/// The combined reaction multiplier (gain_scale × ψ-normalization ×
/// steepness damping) a [`Qcr`] built from `cfg` uses when minting.
///
/// Exported so the distributed runtime (`impatience-net`) mints from the
/// *identical* ψ scaling as the in-process engine: a welfare difference
/// between the two can then only come from the transport, never from a
/// drifted normalization constant. `mu_ref` must already be positive.
pub fn reaction_scale(
    cfg: &QcrConfig,
    utility: &dyn DelayUtility,
    servers: usize,
    mu_ref: f64,
    items: usize,
    rho: usize,
) -> f64 {
    let mut scale = cfg.gain_scale;
    if cfg.normalize_reaction {
        if let Reaction::Psi = cfg.reaction {
            // Expected query count under the uniform allocation:
            // y* = |S|/x̄ with x̄ = ρ|S|/|I|.
            let y_ref = (items as f64 / rho.max(1) as f64).max(1.0);
            let psi_ref = utility.psi(y_ref, servers as f64, mu_ref);
            if psi_ref.is_finite() && psi_ref > 0.0 {
                scale /= psi_ref;
                // Steepness damping: when ψ grows steeply in y (ratio
                // r = ψ(2y*)/ψ(y*) > 1, e.g. ψ(y) = y³ for α = −2), a
                // half-replicated item mints r× the normal batch, the
                // resulting overshoot knocks other items down, and the
                // allocation oscillates instead of settling. Damping
                // by r³ (calibrated across the power and step
                // families; see the ablation bench) trades
                // convergence speed for stability; the equilibrium
                // itself is scale-free (Property 2).
                let psi_2ref = utility.psi(2.0 * y_ref, servers as f64, mu_ref);
                let r = psi_2ref / psi_ref;
                if r.is_finite() && r > 1.0 {
                    scale /= r * r * r;
                }
            }
        }
    }
    scale
}

fn set_mandates(pool: &mut BTreeMap<u32, u64>, item: u32, count: u64) {
    if count == 0 {
        pool.remove(&item);
    } else {
        pool.insert(item, count);
    }
}

impl ReplicationPolicy for Qcr {
    #[allow(clippy::too_many_arguments)]
    fn after_contact(
        &mut self,
        _t: f64,
        a: usize,
        b: usize,
        state: &mut SimState,
        fulfilled: &[Fulfillment],
        metrics: &mut Metrics,
        rng: &mut Xoshiro256,
    ) {
        // 1. Mint mandates for this meeting's fulfillments.
        for f in fulfilled {
            self.mint(f.node, f.item, f.queries, metrics, rng);
        }
        // 2. Execute eligible mandates in both directions.
        self.execute(a, b, state, rng);
        self.execute(b, a, state, rng);
        // 3. Route what remains toward replica holders.
        if self.cfg.mandate_routing {
            self.route(a, b, state, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::utility::Step;

    fn mini_state() -> (SimState, Xoshiro256) {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut state = SimState::new(4, 4, 2);
        state.seed_sticky_and_fill(&mut rng);
        (state, rng)
    }

    fn qcr(cfg: QcrConfig) -> Qcr {
        Qcr::new(cfg, Arc::new(Step::new(10.0)), 4, 4, 0.05, 4, 2)
    }

    #[test]
    fn minting_respects_zero_queries_and_cap() {
        let (_, mut rng) = mini_state();
        let mut metrics = Metrics::new(100.0, 10.0);
        let mut p = qcr(QcrConfig {
            mandate_cap: 3,
            reaction: Reaction::Constant(10.0),
            ..QcrConfig::default()
        });
        p.mint(0, 1, 0, &mut metrics, &mut rng);
        assert_eq!(p.outstanding_mandates(), 0, "y=0 must mint nothing");
        p.mint(0, 1, 5, &mut metrics, &mut rng);
        assert_eq!(p.outstanding_mandates(), 3, "cap must clamp");
        assert_eq!(metrics.mandate_cap_hits, 1);
        assert_eq!(metrics.mandates_created, 3);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let (_, mut rng) = mini_state();
        let mut metrics = Metrics::new(100.0, 10.0);
        let mut p = qcr(QcrConfig {
            reaction: Reaction::Constant(0.3),
            // Effectively uncapped so the pool can accumulate the mean.
            mandate_cap: u64::MAX,
            ..QcrConfig::default()
        });
        let n = 20_000;
        for _ in 0..n {
            p.mint(0, 1, 1, &mut metrics, &mut rng);
        }
        let mean = p.outstanding_mandates() as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn execution_copies_only_from_holders_to_nonholders() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(0).fill(1);
        state.replicas[1] = 1;
        let mut p = qcr(QcrConfig::default());
        p.mandates[0].insert(1, 2);
        // Node 0 holds item 1, node 1 doesn't: one copy per meeting.
        p.execute(0, 1, &mut state, &mut rng);
        assert_eq!(state.replicas[1], 2);
        assert_eq!(p.outstanding_mandates(), 1);
        // Second execution against the same (now holding) peer: ignored.
        p.execute(0, 1, &mut state, &mut rng);
        assert_eq!(state.replicas[1], 2);
        assert_eq!(p.outstanding_mandates(), 1, "no rewriting: mandate kept");
    }

    #[test]
    fn rewriting_consumes_mandates_without_copying() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(0).fill(1);
        state.caches.node_mut(1).fill(1);
        state.replicas[1] = 2;
        let mut p = qcr(QcrConfig {
            rewriting: true,
            ..QcrConfig::default()
        });
        p.mandates[0].insert(1, 2);
        p.execute(0, 1, &mut state, &mut rng);
        assert_eq!(state.replicas[1], 2, "no new copy");
        assert_eq!(p.outstanding_mandates(), 1, "one mandate burned");
    }

    #[test]
    fn execution_requires_carrier_possession() {
        // The mandate carrier lost its copy; even though the met node has
        // one, the mandate stalls (it is routing's job to migrate it).
        let mut rng = Xoshiro256::seed_from_u64(31);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(1).fill(1);
        state.replicas[1] = 1;
        let mut p = qcr(QcrConfig::default());
        p.mandates[0].insert(1, 2);
        p.execute(0, 1, &mut state, &mut rng);
        assert!(!state.caches.node(0).holds(1));
        assert_eq!(state.replicas[1], 1, "no copy may be made");
        assert_eq!(p.outstanding_mandates(), 2, "mandates stall, not vanish");
    }

    #[test]
    fn mandates_lost_replica_cannot_execute() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut state = SimState::new(2, 4, 2);
        // Node 0 has mandates for item 1 but no copy.
        let mut p = qcr(QcrConfig::default());
        p.mandates[0].insert(1, 3);
        p.execute(0, 1, &mut state, &mut rng);
        assert_eq!(p.outstanding_mandates(), 3);
        assert_eq!(state.replicas[1], 0);
    }

    #[test]
    fn routing_moves_mandates_to_holder() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(1).fill(2);
        state.replicas[2] = 1;
        let mut p = qcr(QcrConfig::default());
        p.mandates[0].insert(2, 5);
        p.route(0, 1, &state, &mut rng);
        assert_eq!(p.mandates[0].get(&2), None);
        assert_eq!(p.mandates[1].get(&2), Some(&5));
    }

    #[test]
    fn routing_splits_between_two_holders() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(0).fill(2);
        state.caches.node_mut(1).fill(2);
        state.replicas[2] = 2;
        let mut p = qcr(QcrConfig::default());
        p.mandates[0].insert(2, 6);
        p.route(0, 1, &state, &mut rng);
        assert_eq!(p.mandates[0].get(&2), Some(&3));
        assert_eq!(p.mandates[1].get(&2), Some(&3));
    }

    #[test]
    fn routing_prefers_sticky_seed() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut state = SimState::new(2, 4, 2);
        state.caches.node_mut(0).pin_sticky(2);
        state.caches.node_mut(1).fill(2);
        state.replicas[2] = 2;
        state.sticky_owner[2] = 0;
        let mut p = qcr(QcrConfig::default());
        p.mandates[1].insert(2, 6);
        p.route(0, 1, &state, &mut rng);
        assert_eq!(p.mandates[0].get(&2), Some(&4), "sticky seed gets 2/3");
        assert_eq!(p.mandates[1].get(&2), Some(&2));
    }

    #[test]
    fn no_routing_leaves_mandates_at_origin() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let (mut state, _) = mini_state();
        let mut metrics = Metrics::new(100.0, 10.0);
        let mut p = qcr(QcrConfig {
            mandate_routing: false,
            reaction: Reaction::Constant(4.0),
            ..QcrConfig::default()
        });
        // A fulfillment at node 0 mints 4 mandates; without routing they
        // stay at node 0 no matter how many contacts occur.
        let f = Fulfillment {
            node: 0,
            item: 3,
            queries: 2,
            wait: 1.0,
        };
        p.after_contact(1.0, 0, 1, &mut state, &[f], &mut metrics, &mut rng);
        let at_zero: u64 = p.mandates[0].values().sum();
        let elsewhere: u64 = p.mandates[1..].iter().flat_map(|m| m.values()).sum();
        assert!(at_zero > 0);
        assert_eq!(elsewhere, 0);
    }

    #[test]
    fn constant_reaction_acts_as_passive() {
        let (_, mut rng) = mini_state();
        let mut metrics = Metrics::new(100.0, 10.0);
        let mut p = qcr(QcrConfig {
            reaction: Reaction::Constant(1.0),
            ..QcrConfig::default()
        });
        p.mint(0, 1, 50, &mut metrics, &mut rng);
        assert_eq!(p.outstanding_mandates(), 1, "one replica per fulfillment");
    }
}
