//! Replication policies: what happens to the caches when nodes meet.
//!
//! The engine handles request fulfillment and query counting; a policy
//! only decides how to *replicate* content. See [`Qcr`] for the paper's
//! distributed scheme and [`StaticAllocation`] for the fixed competitors.

mod hill_climb;
mod qcr;
mod static_alloc;

pub use hill_climb::HillClimb;
pub use qcr::{reaction_scale, Qcr, QcrConfig, Reaction};
pub use static_alloc::StaticAllocation;

use std::sync::Arc;

use impatience_core::allocation::ReplicaCounts;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;

use crate::metrics::Metrics;
use crate::state::SimState;

/// One fulfilled request, reported by the engine to the policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fulfillment {
    /// The node whose request was fulfilled.
    pub node: usize,
    /// The item.
    pub item: u32,
    /// Final query-counter value (number of meetings until fulfillment,
    /// inclusive; 0 for immediate self-cache hits).
    pub queries: u64,
    /// Waiting time experienced.
    pub wait: f64,
}

/// A replication policy instance (one per trial; owns its protocol
/// state, e.g. QCR's mandate pools).
pub trait ReplicationPolicy {
    /// Called once per contact `(a, b)` at time `t`, after the engine has
    /// processed fulfillments (both directions). The policy may mutate
    /// caches through `state`.
    #[allow(clippy::too_many_arguments)] // a contact carries exactly this context
    fn after_contact(
        &mut self,
        t: f64,
        a: usize,
        b: usize,
        state: &mut SimState,
        fulfilled: &[Fulfillment],
        metrics: &mut Metrics,
        rng: &mut Xoshiro256,
    );

    /// Initialize caches at trial start. Default: QCR-style sticky seed +
    /// random fill.
    fn initialize(&mut self, state: &mut SimState, rng: &mut Xoshiro256) {
        state.seed_sticky_and_fill(rng);
    }
}

/// Cloneable descriptor of a policy, instantiated per trial.
#[derive(Clone)]
pub enum PolicyKind {
    /// Query Counting Replication (§5) with the given knobs.
    Qcr(QcrConfig),
    /// A fixed allocation (perfect control channel): caches are pinned to
    /// the given replica counts and never change.
    Static {
        /// Human-readable label (e.g. "OPT", "UNI").
        label: &'static str,
        /// The allocation to pin.
        counts: ReplicaCounts,
    },
    /// Passive replication: a constant number of replicas per
    /// fulfillment (mandate machinery shared with QCR). Converges toward
    /// the proportional allocation (§6.2).
    Passive {
        /// Replicas created per fulfillment.
        replicas: f64,
    },
    /// §4.1's hill-climbing baseline: full-knowledge welfare marginals,
    /// but cache changes only through local moves at meetings.
    HillClimb {
        /// Improving moves attempted per meeting per node.
        moves_per_contact: usize,
    },
}

impl PolicyKind {
    /// QCR with default knobs (mandate routing on, rewriting off).
    pub fn qcr_default() -> Self {
        PolicyKind::Qcr(QcrConfig::default())
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Qcr(cfg) => {
                if cfg.mandate_routing {
                    "QCR".into()
                } else {
                    "QCR-no-routing".into()
                }
            }
            PolicyKind::Static { label, .. } => (*label).into(),
            PolicyKind::Passive { replicas } => format!("PASSIVE({replicas})"),
            PolicyKind::HillClimb { .. } => "HILL".into(),
        }
    }

    /// Instantiate the policy for one trial on a population of `nodes`
    /// nodes of which `servers` carry caches, with `items` items and
    /// cache capacity `rho`.
    #[allow(clippy::too_many_arguments)] // one scalar per system dimension
    pub fn instantiate(
        &self,
        utility: Arc<dyn DelayUtility>,
        nodes: usize,
        servers: usize,
        mu_ref: f64,
        items: usize,
        rho: usize,
        demand: &impatience_core::demand::DemandRates,
    ) -> Box<dyn ReplicationPolicy> {
        match self {
            PolicyKind::Qcr(cfg) => Box::new(Qcr::new(
                cfg.clone(),
                utility,
                nodes,
                servers,
                mu_ref,
                items,
                rho,
            )),
            PolicyKind::Static { counts, .. } => Box::new(StaticAllocation::new(counts.clone())),
            PolicyKind::Passive { replicas } => {
                let cfg = QcrConfig {
                    reaction: Reaction::Constant(*replicas),
                    ..QcrConfig::default()
                };
                Box::new(Qcr::new(cfg, utility, nodes, servers, mu_ref, items, rho))
            }
            PolicyKind::HillClimb { moves_per_contact } => {
                let mu = if mu_ref > 0.0 { mu_ref } else { 1.0 };
                let system = if servers == nodes {
                    impatience_core::types::SystemModel::pure_p2p(nodes, rho, mu)
                } else {
                    impatience_core::types::SystemModel::dedicated(
                        nodes - servers,
                        servers,
                        rho,
                        mu,
                    )
                };
                Box::new(HillClimb::new(
                    system,
                    demand.clone(),
                    utility,
                    *moves_per_contact,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PolicyKind::qcr_default().label(), "QCR");
        let no_routing = PolicyKind::Qcr(QcrConfig {
            mandate_routing: false,
            ..QcrConfig::default()
        });
        assert_eq!(no_routing.label(), "QCR-no-routing");
        let s = PolicyKind::Static {
            label: "UNI",
            counts: ReplicaCounts::zero(3, 2),
        };
        assert_eq!(s.label(), "UNI");
        assert_eq!(PolicyKind::Passive { replicas: 1.0 }.label(), "PASSIVE(1)");
    }
}
