//! Per-trial measurements.
//!
//! Two utility views, matching the paper's Fig. 3:
//!
//! * **observed utility** — the gain `h(wait)` actually recorded at each
//!   fulfillment, binned over time and summarized as a post-warm-up rate
//!   (gain per minute). This is what Fig. 3(b), Fig. 4, Fig. 5 and Fig. 6
//!   plot;
//! * **expected utility** — `U(x(t))` evaluated on the *current* replica
//!   counts under the homogeneous-welfare approximation, snapshotted once
//!   per bin (Fig. 3(a)).

use impatience_core::demand::DemandRates;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::social_welfare_homogeneous;
use impatience_json::Json;

/// Encode an `f64` as its 16-hex-digit bit pattern — the checkpoint
/// codec's float representation. Decimal JSON floats cannot round-trip
/// NaN (the [`Json`] writer emits `null` for non-finite values) and risk
/// last-ulp drift; the bit pattern is exact by construction.
pub(crate) fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decode [`f64_to_hex`]'s output.
pub(crate) fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!(
            "expected a 16-hex-digit float bit pattern, got {s:?}"
        ));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad float bit pattern {s:?}: {e}"))
}

/// Measurements collected over one simulation trial.
#[derive(Clone, Debug)]
pub struct Metrics {
    bin: f64,
    duration: f64,
    /// Σ h(wait) of fulfillments per bin.
    observed_gain: Vec<f64>,
    /// Fulfillment count per bin.
    fulfilled: Vec<u64>,
    /// `U(x(t))` snapshot at each bin start (NaN until recorded).
    expected_utility: Vec<f64>,
    /// Replica counts snapshot at each bin start.
    replica_series: Vec<Vec<u32>>,
    /// Total requests created.
    pub requests_created: u64,
    /// Requests served instantly from the requester's own cache.
    pub immediate_hits: u64,
    /// Outstanding (never fulfilled) requests at the end of the trial.
    pub unfulfilled: u64,
    /// Replication transmissions performed (energy proxy).
    pub transmissions: u64,
    /// Mandates created (QCR only).
    pub mandates_created: u64,
    /// Mandates whose creation hit the per-fulfillment cap (QCR only).
    pub mandate_cap_hits: u64,
    /// Contacts suppressed by fault injection (drops, churn, truncation).
    pub contacts_dropped: u64,
    /// Node down-transitions injected by churn.
    pub node_outages: u64,
    /// Cache slots erased by injected slot failures.
    pub cache_faults: u64,
}

impl Metrics {
    /// Create metrics for a trial of the given duration and bin width.
    pub fn new(duration: f64, bin: f64) -> Self {
        assert!(duration > 0.0 && bin > 0.0);
        let bins = (duration / bin).ceil() as usize;
        Metrics {
            bin,
            duration,
            observed_gain: vec![0.0; bins],
            fulfilled: vec![0; bins],
            expected_utility: vec![f64::NAN; bins],
            replica_series: vec![Vec::new(); bins],
            requests_created: 0,
            immediate_hits: 0,
            unfulfilled: 0,
            transmissions: 0,
            mandates_created: 0,
            mandate_cap_hits: 0,
            contacts_dropped: 0,
            node_outages: 0,
            cache_faults: 0,
        }
    }

    /// Bin width.
    pub fn bin(&self) -> f64 {
        self.bin
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.observed_gain.len()
    }

    fn bin_of(&self, t: f64) -> usize {
        ((t / self.bin) as usize).min(self.observed_gain.len() - 1)
    }

    /// Record a fulfillment at time `t` with the given gain.
    pub fn record_fulfillment(&mut self, t: f64, gain: f64) {
        let b = self.bin_of(t);
        self.observed_gain[b] += gain;
        self.fulfilled[b] += 1;
    }

    /// Record the truncated gain of a request still outstanding when the
    /// trial ends: it has waited `age` so far, so it has already incurred
    /// `h(age)` (a *lower bound* on its final loss for cost-type
    /// utilities, and ≈ 0 for bounded families). Without this settlement,
    /// allocations that starve unpopular items (e.g. DOM) would look
    /// artificially good under waiting-cost utilities — the requests they
    /// never serve would simply vanish from the books.
    pub fn record_settlement(&mut self, t: f64, gain: f64) {
        let b = self.bin_of(t);
        self.observed_gain[b] += gain;
    }

    /// Record a bin-start snapshot: expected utility of the current
    /// allocation (homogeneous approximation) and the replica counts.
    pub fn record_snapshot(
        &mut self,
        t: f64,
        replicas: &[u32],
        system: &SystemModel,
        demand: &DemandRates,
        utility: &dyn DelayUtility,
    ) {
        let b = self.bin_of(t);
        let xs: Vec<f64> = replicas.iter().map(|&r| r as f64).collect();
        self.expected_utility[b] = social_welfare_homogeneous(system, demand, utility, &xs);
        self.replica_series[b] = replicas.to_vec();
    }

    /// Observed gain rate per bin (gain per minute).
    pub fn observed_rate_series(&self) -> Vec<f64> {
        self.observed_gain.iter().map(|g| g / self.bin).collect()
    }

    /// Expected-utility snapshots (NaN where not recorded).
    pub fn expected_utility_series(&self) -> &[f64] {
        &self.expected_utility
    }

    /// Replica-count snapshot of one item over time.
    pub fn replica_series_of(&self, item: usize) -> Vec<u32> {
        self.replica_series
            .iter()
            .map(|snap| snap.get(item).copied().unwrap_or(0))
            .collect()
    }

    /// Total fulfillments.
    pub fn fulfillments(&self) -> u64 {
        self.fulfilled.iter().sum()
    }

    /// Average observed gain rate (gain per minute) over the bins after
    /// the warm-up fraction — the scalar the Fig. 4–6 comparisons use.
    ///
    /// # Panics
    /// Panics unless `warmup_fraction` is in `[0, 1)`: a fraction of 1 or
    /// more would leave no measurement window. (Earlier revisions silently
    /// clamped to the final bin, reporting a statistic over one bin while
    /// appearing to honor the requested warm-up.)
    pub fn average_observed_rate(&self, warmup_fraction: f64) -> f64 {
        let skip = self.warmup_bins(warmup_fraction);
        let used = &self.observed_gain[skip..];
        let time = used.len() as f64 * self.bin;
        if time == 0.0 {
            return 0.0;
        }
        // The final bin may be partial; negligible for the long runs used.
        used.iter().sum::<f64>() / time.min(self.duration)
    }

    /// Mean of the recorded expected-utility snapshots after warm-up.
    ///
    /// # Panics
    /// Panics unless `warmup_fraction` is in `[0, 1)` (see
    /// [`Metrics::average_observed_rate`]).
    pub fn average_expected_utility(&self, warmup_fraction: f64) -> f64 {
        let skip = self.warmup_bins(warmup_fraction);
        let vals: Vec<f64> = self.expected_utility[skip..]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Encode every field — including NaN snapshot slots — for the
    /// campaign checkpoint. [`Metrics::from_json`] restores the value
    /// bit-for-bit.
    pub fn to_json(&self) -> Json {
        let hexes = |vs: &[f64]| Json::Array(vs.iter().map(|&v| f64_to_hex(v).into()).collect());
        Json::obj([
            ("bin", Json::from(f64_to_hex(self.bin))),
            ("duration", f64_to_hex(self.duration).into()),
            ("observed_gain", hexes(&self.observed_gain)),
            (
                "fulfilled",
                Json::Array(self.fulfilled.iter().map(|&v| v.into()).collect()),
            ),
            ("expected_utility", hexes(&self.expected_utility)),
            (
                "replica_series",
                Json::Array(
                    self.replica_series
                        .iter()
                        .map(|snap| Json::Array(snap.iter().map(|&v| v.into()).collect()))
                        .collect(),
                ),
            ),
            ("requests_created", self.requests_created.into()),
            ("immediate_hits", self.immediate_hits.into()),
            ("unfulfilled", self.unfulfilled.into()),
            ("transmissions", self.transmissions.into()),
            ("mandates_created", self.mandates_created.into()),
            ("mandate_cap_hits", self.mandate_cap_hits.into()),
            ("contacts_dropped", self.contacts_dropped.into()),
            ("node_outages", self.node_outages.into()),
            ("cache_faults", self.cache_faults.into()),
        ])
    }

    /// Decode [`Metrics::to_json`]'s output.
    pub fn from_json(v: &Json) -> Result<Metrics, String> {
        let hex = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metrics: missing hex field {key:?}"))
                .and_then(f64_from_hex)
        };
        let hex_array = |key: &str| -> Result<Vec<f64>, String> {
            v.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("metrics: missing array {key:?}"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .ok_or_else(|| format!("metrics: non-string entry in {key:?}"))
                        .and_then(f64_from_hex)
                })
                .collect()
        };
        let count = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics: missing counter {key:?}"))
        };
        let fulfilled = v
            .get("fulfilled")
            .and_then(Json::as_array)
            .ok_or("metrics: missing array \"fulfilled\"")?
            .iter()
            .map(|e| e.as_u64().ok_or("metrics: non-integer fulfilled entry"))
            .collect::<Result<Vec<u64>, _>>()?;
        let replica_series = v
            .get("replica_series")
            .and_then(Json::as_array)
            .ok_or("metrics: missing array \"replica_series\"")?
            .iter()
            .map(|snap| {
                snap.as_array()
                    .ok_or_else(|| "metrics: non-array replica snapshot".to_string())?
                    .iter()
                    .map(|e| {
                        e.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| "metrics: bad replica count".to_string())
                    })
                    .collect::<Result<Vec<u32>, String>>()
            })
            .collect::<Result<Vec<Vec<u32>>, String>>()?;
        let m = Metrics {
            bin: hex("bin")?,
            duration: hex("duration")?,
            observed_gain: hex_array("observed_gain")?,
            fulfilled,
            expected_utility: hex_array("expected_utility")?,
            replica_series,
            requests_created: count("requests_created")?,
            immediate_hits: count("immediate_hits")?,
            unfulfilled: count("unfulfilled")?,
            transmissions: count("transmissions")?,
            mandates_created: count("mandates_created")?,
            mandate_cap_hits: count("mandate_cap_hits")?,
            contacts_dropped: count("contacts_dropped")?,
            node_outages: count("node_outages")?,
            cache_faults: count("cache_faults")?,
        };
        if !(m.bin > 0.0 && m.duration > 0.0) {
            return Err("metrics: non-positive bin or duration".to_string());
        }
        let bins = m.observed_gain.len();
        if m.fulfilled.len() != bins
            || m.expected_utility.len() != bins
            || m.replica_series.len() != bins
        {
            return Err("metrics: series lengths disagree".to_string());
        }
        Ok(m)
    }

    /// Fold another fragment of the same trial into this one — the
    /// sharded engine's reduction, called once per shard/lane in a fixed
    /// order so the f64 summation order (and hence every bit of the
    /// result) is independent of the worker count.
    ///
    /// Binned series sum element-wise and counters add. Snapshot series
    /// (expected utility, replica counts) are *global* facts the sharded
    /// engine records serially on the merged state, so `other` must not
    /// carry any — fragments never call [`Metrics::record_snapshot`].
    ///
    /// # Panics
    /// Panics if the two metrics disagree on `(duration, bin)` or if
    /// `other` carries snapshots.
    pub fn merge(&mut self, other: &Metrics) {
        assert!(
            self.bin.to_bits() == other.bin.to_bits()
                && self.duration.to_bits() == other.duration.to_bits(),
            "cannot merge metrics with different binning"
        );
        assert!(
            other.expected_utility.iter().all(|v| v.is_nan())
                && other.replica_series.iter().all(Vec::is_empty),
            "fragments must not carry snapshots (recorded globally)"
        );
        for (a, b) in self.observed_gain.iter_mut().zip(&other.observed_gain) {
            *a += b;
        }
        for (a, b) in self.fulfilled.iter_mut().zip(&other.fulfilled) {
            *a += b;
        }
        self.requests_created += other.requests_created;
        self.immediate_hits += other.immediate_hits;
        self.unfulfilled += other.unfulfilled;
        self.transmissions += other.transmissions;
        self.mandates_created += other.mandates_created;
        self.mandate_cap_hits += other.mandate_cap_hits;
        self.contacts_dropped += other.contacts_dropped;
        self.node_outages += other.node_outages;
        self.cache_faults += other.cache_faults;
    }

    /// Bins to skip for a warm-up fraction; rejects fractions that would
    /// consume the whole measurement window.
    fn warmup_bins(&self, warmup_fraction: f64) -> usize {
        assert!(
            (0.0..1.0).contains(&warmup_fraction),
            "warmup_fraction {warmup_fraction} outside [0, 1): no bins would remain"
        );
        // floor(bins·f) with f < 1 is at most bins − 1, so at least one
        // bin always survives.
        (self.bins() as f64 * warmup_fraction).floor() as usize
    }
}

/// Normalized loss of utility against an optimal value, in percent:
/// `100·(u − u_opt)/|u_opt|` — the y-axis of Figs. 4–6 (≤ 0 when the
/// optimum wins).
pub fn normalized_loss_percent(u: f64, u_opt: f64) -> f64 {
    if u_opt == 0.0 {
        return f64::NAN;
    }
    100.0 * (u - u_opt) / u_opt.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;

    #[test]
    fn binning_and_rates() {
        let mut m = Metrics::new(100.0, 10.0);
        assert_eq!(m.bins(), 10);
        m.record_fulfillment(5.0, 1.0);
        m.record_fulfillment(5.5, 1.0);
        m.record_fulfillment(95.0, 0.5);
        m.record_fulfillment(100.0, 0.5); // clamped into last bin
        let rates = m.observed_rate_series();
        assert!((rates[0] - 0.2).abs() < 1e-12);
        assert!((rates[9] - 0.1).abs() < 1e-12);
        assert_eq!(m.fulfillments(), 4);
    }

    #[test]
    fn average_rate_with_warmup() {
        let mut m = Metrics::new(100.0, 10.0);
        // All gain in the first half.
        for t in [1.0, 11.0, 21.0, 31.0, 41.0] {
            m.record_fulfillment(t, 2.0);
        }
        let full = m.average_observed_rate(0.0);
        assert!((full - 0.1).abs() < 1e-12);
        let late = m.average_observed_rate(0.5);
        assert_eq!(late, 0.0);
    }

    #[test]
    fn warmup_just_below_one_keeps_the_final_bin() {
        let mut m = Metrics::new(100.0, 10.0);
        m.record_fulfillment(95.0, 3.0); // lands in the final bin
        let rate = m.average_observed_rate(0.999);
        assert!(
            (rate - 0.3).abs() < 1e-12,
            "final bin alone: 3.0/10min, got {rate}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn warmup_of_one_is_rejected_not_clamped() {
        // Regression: warmup_fraction = 1.0 used to clamp to the final
        // bin, silently reporting a one-bin statistic as if it honored
        // the requested warm-up.
        let m = Metrics::new(100.0, 10.0);
        let _ = m.average_observed_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn warmup_above_one_is_rejected_for_expected_utility() {
        let m = Metrics::new(100.0, 10.0);
        let _ = m.average_expected_utility(1.5);
    }

    #[test]
    fn snapshots_record_welfare() {
        let mut m = Metrics::new(100.0, 50.0);
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let u = Step::new(5.0);
        m.record_snapshot(0.0, &[2, 1, 0], &system, &demand, &u);
        m.record_snapshot(50.0, &[1, 1, 1], &system, &demand, &u);
        let series = m.expected_utility_series();
        assert!(series[0].is_finite());
        assert!(series[1].is_finite());
        assert_eq!(m.replica_series_of(0), vec![2, 1]);
        assert_eq!(m.replica_series_of(2), vec![0, 1]);
        let avg = m.average_expected_utility(0.0);
        assert!(avg.is_finite());
    }

    #[test]
    fn json_round_trip_is_bit_exact_including_nan() {
        let mut m = Metrics::new(100.0, 50.0);
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let u = Step::new(5.0);
        m.record_fulfillment(5.0, 0.1 + 0.2); // exercise non-representable sums
        m.record_snapshot(0.0, &[2, 1, 0], &system, &demand, &u);
        // Bin 1's snapshot is never recorded: stays NaN.
        m.requests_created = 7;
        m.contacts_dropped = 3;
        m.cache_faults = 1;

        let encoded = m.to_json().to_string();
        let back = Metrics::from_json(&impatience_json::Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back.observed_gain.len(), m.observed_gain.len());
        for (a, b) in back.observed_gain.iter().zip(&m.observed_gain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.expected_utility.iter().zip(&m.expected_utility) {
            assert_eq!(a.to_bits(), b.to_bits(), "NaN must survive the round trip");
        }
        assert!(back.expected_utility[1].is_nan());
        assert_eq!(back.fulfilled, m.fulfilled);
        assert_eq!(back.replica_series, m.replica_series);
        assert_eq!(back.requests_created, 7);
        assert_eq!(back.contacts_dropped, 3);
        assert_eq!(back.cache_faults, 1);
        assert_eq!(back.bin.to_bits(), m.bin.to_bits());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        let m = Metrics::new(100.0, 50.0);
        let good = m.to_json();
        // Truncate a series: lengths disagree.
        let mut bad = good.clone();
        if let Json::Object(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "fulfilled" {
                    *v = Json::Array(vec![]);
                }
            }
        }
        assert!(Metrics::from_json(&bad).is_err());
        assert!(Metrics::from_json(&Json::Null).is_err());
        assert!(f64_from_hex("xyz").is_err());
        assert!(f64_from_hex("00000000000000000").is_err());
    }

    #[test]
    fn normalized_loss() {
        assert!((normalized_loss_percent(0.9, 1.0) + 10.0).abs() < 1e-9);
        assert!((normalized_loss_percent(-1.1, -1.0) + 10.0).abs() < 1e-9);
        assert!(normalized_loss_percent(1.0, 0.0).is_nan());
        // A utility better than "optimal" yields a positive value (can
        // happen on traces where OPT is only memoryless-approximate).
        assert!(normalized_loss_percent(1.1, 1.0) > 0.0);
    }
}
