//! Per-trial measurements.
//!
//! Two utility views, matching the paper's Fig. 3:
//!
//! * **observed utility** — the gain `h(wait)` actually recorded at each
//!   fulfillment, binned over time and summarized as a post-warm-up rate
//!   (gain per minute). This is what Fig. 3(b), Fig. 4, Fig. 5 and Fig. 6
//!   plot;
//! * **expected utility** — `U(x(t))` evaluated on the *current* replica
//!   counts under the homogeneous-welfare approximation, snapshotted once
//!   per bin (Fig. 3(a)).

use impatience_core::demand::DemandRates;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::social_welfare_homogeneous;

/// Measurements collected over one simulation trial.
#[derive(Clone, Debug)]
pub struct Metrics {
    bin: f64,
    duration: f64,
    /// Σ h(wait) of fulfillments per bin.
    observed_gain: Vec<f64>,
    /// Fulfillment count per bin.
    fulfilled: Vec<u64>,
    /// `U(x(t))` snapshot at each bin start (NaN until recorded).
    expected_utility: Vec<f64>,
    /// Replica counts snapshot at each bin start.
    replica_series: Vec<Vec<u32>>,
    /// Total requests created.
    pub requests_created: u64,
    /// Requests served instantly from the requester's own cache.
    pub immediate_hits: u64,
    /// Outstanding (never fulfilled) requests at the end of the trial.
    pub unfulfilled: u64,
    /// Replication transmissions performed (energy proxy).
    pub transmissions: u64,
    /// Mandates created (QCR only).
    pub mandates_created: u64,
    /// Mandates whose creation hit the per-fulfillment cap (QCR only).
    pub mandate_cap_hits: u64,
}

impl Metrics {
    /// Create metrics for a trial of the given duration and bin width.
    pub fn new(duration: f64, bin: f64) -> Self {
        assert!(duration > 0.0 && bin > 0.0);
        let bins = (duration / bin).ceil() as usize;
        Metrics {
            bin,
            duration,
            observed_gain: vec![0.0; bins],
            fulfilled: vec![0; bins],
            expected_utility: vec![f64::NAN; bins],
            replica_series: vec![Vec::new(); bins],
            requests_created: 0,
            immediate_hits: 0,
            unfulfilled: 0,
            transmissions: 0,
            mandates_created: 0,
            mandate_cap_hits: 0,
        }
    }

    /// Bin width.
    pub fn bin(&self) -> f64 {
        self.bin
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.observed_gain.len()
    }

    fn bin_of(&self, t: f64) -> usize {
        ((t / self.bin) as usize).min(self.observed_gain.len() - 1)
    }

    /// Record a fulfillment at time `t` with the given gain.
    pub fn record_fulfillment(&mut self, t: f64, gain: f64) {
        let b = self.bin_of(t);
        self.observed_gain[b] += gain;
        self.fulfilled[b] += 1;
    }

    /// Record the truncated gain of a request still outstanding when the
    /// trial ends: it has waited `age` so far, so it has already incurred
    /// `h(age)` (a *lower bound* on its final loss for cost-type
    /// utilities, and ≈ 0 for bounded families). Without this settlement,
    /// allocations that starve unpopular items (e.g. DOM) would look
    /// artificially good under waiting-cost utilities — the requests they
    /// never serve would simply vanish from the books.
    pub fn record_settlement(&mut self, t: f64, gain: f64) {
        let b = self.bin_of(t);
        self.observed_gain[b] += gain;
    }

    /// Record a bin-start snapshot: expected utility of the current
    /// allocation (homogeneous approximation) and the replica counts.
    pub fn record_snapshot(
        &mut self,
        t: f64,
        replicas: &[u32],
        system: &SystemModel,
        demand: &DemandRates,
        utility: &dyn DelayUtility,
    ) {
        let b = self.bin_of(t);
        let xs: Vec<f64> = replicas.iter().map(|&r| r as f64).collect();
        self.expected_utility[b] = social_welfare_homogeneous(system, demand, utility, &xs);
        self.replica_series[b] = replicas.to_vec();
    }

    /// Observed gain rate per bin (gain per minute).
    pub fn observed_rate_series(&self) -> Vec<f64> {
        self.observed_gain.iter().map(|g| g / self.bin).collect()
    }

    /// Expected-utility snapshots (NaN where not recorded).
    pub fn expected_utility_series(&self) -> &[f64] {
        &self.expected_utility
    }

    /// Replica-count snapshot of one item over time.
    pub fn replica_series_of(&self, item: usize) -> Vec<u32> {
        self.replica_series
            .iter()
            .map(|snap| snap.get(item).copied().unwrap_or(0))
            .collect()
    }

    /// Total fulfillments.
    pub fn fulfillments(&self) -> u64 {
        self.fulfilled.iter().sum()
    }

    /// Average observed gain rate (gain per minute) over the bins after
    /// the warm-up fraction — the scalar the Fig. 4–6 comparisons use.
    ///
    /// # Panics
    /// Panics unless `warmup_fraction` is in `[0, 1)`: a fraction of 1 or
    /// more would leave no measurement window. (Earlier revisions silently
    /// clamped to the final bin, reporting a statistic over one bin while
    /// appearing to honor the requested warm-up.)
    pub fn average_observed_rate(&self, warmup_fraction: f64) -> f64 {
        let skip = self.warmup_bins(warmup_fraction);
        let used = &self.observed_gain[skip..];
        let time = used.len() as f64 * self.bin;
        if time == 0.0 {
            return 0.0;
        }
        // The final bin may be partial; negligible for the long runs used.
        used.iter().sum::<f64>() / time.min(self.duration)
    }

    /// Mean of the recorded expected-utility snapshots after warm-up.
    ///
    /// # Panics
    /// Panics unless `warmup_fraction` is in `[0, 1)` (see
    /// [`Metrics::average_observed_rate`]).
    pub fn average_expected_utility(&self, warmup_fraction: f64) -> f64 {
        let skip = self.warmup_bins(warmup_fraction);
        let vals: Vec<f64> = self.expected_utility[skip..]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// Bins to skip for a warm-up fraction; rejects fractions that would
    /// consume the whole measurement window.
    fn warmup_bins(&self, warmup_fraction: f64) -> usize {
        assert!(
            (0.0..1.0).contains(&warmup_fraction),
            "warmup_fraction {warmup_fraction} outside [0, 1): no bins would remain"
        );
        // floor(bins·f) with f < 1 is at most bins − 1, so at least one
        // bin always survives.
        (self.bins() as f64 * warmup_fraction).floor() as usize
    }
}

/// Normalized loss of utility against an optimal value, in percent:
/// `100·(u − u_opt)/|u_opt|` — the y-axis of Figs. 4–6 (≤ 0 when the
/// optimum wins).
pub fn normalized_loss_percent(u: f64, u_opt: f64) -> f64 {
    if u_opt == 0.0 {
        return f64::NAN;
    }
    100.0 * (u - u_opt) / u_opt.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;

    #[test]
    fn binning_and_rates() {
        let mut m = Metrics::new(100.0, 10.0);
        assert_eq!(m.bins(), 10);
        m.record_fulfillment(5.0, 1.0);
        m.record_fulfillment(5.5, 1.0);
        m.record_fulfillment(95.0, 0.5);
        m.record_fulfillment(100.0, 0.5); // clamped into last bin
        let rates = m.observed_rate_series();
        assert!((rates[0] - 0.2).abs() < 1e-12);
        assert!((rates[9] - 0.1).abs() < 1e-12);
        assert_eq!(m.fulfillments(), 4);
    }

    #[test]
    fn average_rate_with_warmup() {
        let mut m = Metrics::new(100.0, 10.0);
        // All gain in the first half.
        for t in [1.0, 11.0, 21.0, 31.0, 41.0] {
            m.record_fulfillment(t, 2.0);
        }
        let full = m.average_observed_rate(0.0);
        assert!((full - 0.1).abs() < 1e-12);
        let late = m.average_observed_rate(0.5);
        assert_eq!(late, 0.0);
    }

    #[test]
    fn warmup_just_below_one_keeps_the_final_bin() {
        let mut m = Metrics::new(100.0, 10.0);
        m.record_fulfillment(95.0, 3.0); // lands in the final bin
        let rate = m.average_observed_rate(0.999);
        assert!(
            (rate - 0.3).abs() < 1e-12,
            "final bin alone: 3.0/10min, got {rate}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn warmup_of_one_is_rejected_not_clamped() {
        // Regression: warmup_fraction = 1.0 used to clamp to the final
        // bin, silently reporting a one-bin statistic as if it honored
        // the requested warm-up.
        let m = Metrics::new(100.0, 10.0);
        let _ = m.average_observed_rate(1.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn warmup_above_one_is_rejected_for_expected_utility() {
        let m = Metrics::new(100.0, 10.0);
        let _ = m.average_expected_utility(1.5);
    }

    #[test]
    fn snapshots_record_welfare() {
        let mut m = Metrics::new(100.0, 50.0);
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let u = Step::new(5.0);
        m.record_snapshot(0.0, &[2, 1, 0], &system, &demand, &u);
        m.record_snapshot(50.0, &[1, 1, 1], &system, &demand, &u);
        let series = m.expected_utility_series();
        assert!(series[0].is_finite());
        assert!(series[1].is_finite());
        assert_eq!(m.replica_series_of(0), vec![2, 1]);
        assert_eq!(m.replica_series_of(2), vec![0, 1]);
        let avg = m.average_expected_utility(0.0);
        assert!(avg.is_finite());
    }

    #[test]
    fn normalized_loss() {
        assert!((normalized_loss_percent(0.9, 1.0) + 10.0).abs() < 1e-9);
        assert!((normalized_loss_percent(-1.1, -1.0) + 10.0).abs() < 1e-9);
        assert!(normalized_loss_percent(1.0, 0.0).is_nan());
        // A utility better than "optimal" yields a positive value (can
        // happen on traces where OPT is only memoryless-approximate).
        assert!(normalized_loss_percent(1.1, 1.0) > 0.0);
    }
}
