//! Seeded, deterministic fault injection.
//!
//! The paper's engines simulate a *clean* opportunistic network: every
//! contact in the trace happens, every cache slot survives the whole
//! trial. This module degrades that world on purpose, so Eq. (1) welfare
//! and the Table-1 utility families can be measured under the regimes
//! related work actually observes — node churn, lossy contacts, cache
//! contention, and truncated measurement traces.
//!
//! Four independent fault processes, all driven by RNG streams forked
//! from `trial_seed ⊕ FaultConfig::seed` (never from the trial's demand
//! generator, so an *inactive* process leaves the trajectory bit-for-bit
//! identical to a fault-free run):
//!
//! * **server churn** — each node alternates exponentially distributed
//!   up/down periods; a contact involving a down node never happens;
//! * **contact drops** — a Gilbert burst-loss chain over the surviving
//!   contact sequence (mean burst length 1 ⇒ i.i.d. Bernoulli drops);
//! * **cache slot faults** — a Poisson process that erases a uniformly
//!   random non-sticky slot of a uniformly random server;
//! * **trace truncation** — every contact after a fixed fraction of the
//!   horizon is lost (a measurement artifact, not a network process).
//!
//! Every injected fault is reported through the [`Recorder`] hooks
//! (`Event::Fault` in JSONL sinks) and tallied in [`Metrics`], so a
//! degraded run documents its own degradation.

use impatience_core::rng::Xoshiro256;
use impatience_obs::{Recorder, Sink};

use crate::config::ConfigError;
use crate::metrics::Metrics;
use crate::state::SimState;

/// RNG stream ids forking the fault processes off the fault base seed.
const CHURN_STREAM_ID: u64 = 0xFA17_0001_C4B2_9D01;
const DROP_STREAM_ID: u64 = 0xFA17_0002_D209_BA55;
const CACHE_STREAM_ID: u64 = 0xFA17_0003_5107_FA11;
/// Stream id reserved for the message-layer transport (`impatience-net`).
/// Exported so the distributed runtime forks its chaos off the *same*
/// base seed (`trial_seed ^ rotl(fault_seed, 23)`) as the engine-side
/// processes, keeping the whole fault schedule worker-count-independent.
pub const MSG_STREAM_ID: u64 = 0xFA17_0004_AE55_A6E5;

/// Exponential on/off churn for cache-carrying nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Churn {
    /// Mean length of an *up* period (minutes).
    pub mean_up: f64,
    /// Mean length of a *down* period (minutes).
    pub mean_down: f64,
}

/// Contact loss on the contact stream.
///
/// With `mean_burst = 1` each surviving contact is dropped
/// independently with probability `p`; with `mean_burst = L > 1` drops
/// arrive in geometric bursts of mean length `L` whose stationary drop
/// probability is still `p` (Gilbert model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContactDrop {
    /// Stationary drop probability.
    pub p: f64,
    /// Mean burst length (contacts), ≥ 1.
    pub mean_burst: f64,
}

/// Random cache-slot failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheFaults {
    /// Slot failures per server per minute.
    pub rate: f64,
}

/// Message-layer faults for the distributed runtime (`impatience-net`).
///
/// The in-process engines exchange no messages, so this family is inert
/// there by construction: attaching it leaves every engine trajectory
/// bit-for-bit unchanged (its RNG streams fork from the fault base seed,
/// never from the trial's demand generator). The `crates/net` transport
/// consumes it to drop, duplicate, and reorder wire messages.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MsgFaults {
    /// Probability that a sent message is silently lost.
    pub loss_p: f64,
    /// Probability that a delivered message arrives twice.
    pub dup_p: f64,
    /// Maximum reorder window, in units of the base message delay: each
    /// delivery is delayed by an extra `U(0, reorder_window) × delay`,
    /// so messages up to `reorder_window` "slots" apart can swap order.
    /// `0` preserves FIFO ordering per link.
    pub reorder_window: u32,
}

impl MsgFaults {
    /// Whether any message-layer process is active; an all-zero config
    /// is the identity transport.
    pub fn is_active(&self) -> bool {
        self.loss_p > 0.0 || self.dup_p > 0.0 || self.reorder_window > 0
    }
}

/// The full fault model attached to a [`crate::SimConfig`].
///
/// `Default` is the empty model: no process active, engines behave
/// exactly as without a `FaultConfig`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Fault-model seed, mixed with each trial's seed so a campaign's
    /// fault schedule is reproducible but decorrelated across trials.
    pub seed: u64,
    /// Server churn, if any.
    pub churn: Option<Churn>,
    /// Contact loss, if any.
    pub drop: Option<ContactDrop>,
    /// Cache slot failures, if any.
    pub cache: Option<CacheFaults>,
    /// Lose every contact after this fraction of the horizon (in (0, 1]).
    pub truncate_fraction: Option<f64>,
    /// Message-layer faults. Consumed only by the `impatience-net`
    /// transport; the in-process engines ignore it entirely, so an
    /// engine run with `msg` attached is bit-identical to one without.
    pub msg: Option<MsgFaults>,
    /// Chaos hook: trials run with any of these seeds panic at startup.
    /// Exercises the campaign runner's skip-and-report path in tests.
    pub panic_on_seeds: Vec<u64>,
}

impl FaultConfig {
    /// Whether any fault process is active.
    pub fn is_active(&self) -> bool {
        self.churn.is_some()
            || self.drop.is_some()
            || self.cache.is_some()
            || self.truncate_fraction.is_some()
            || self.msg.is_some_and(|m| m.is_active())
            || !self.panic_on_seeds.is_empty()
    }

    /// Validate the fault parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bad = |message: String| Err(ConfigError::InvalidFaults { message });
        if let Some(churn) = self.churn {
            let ok = |x: f64| x > 0.0 && x.is_finite();
            if !ok(churn.mean_up) || !ok(churn.mean_down) {
                return bad(format!(
                    "churn mean_up/mean_down must be positive and finite \
                     (got {} / {})",
                    churn.mean_up, churn.mean_down
                ));
            }
        }
        if let Some(drop) = self.drop {
            if !(0.0..1.0).contains(&drop.p) {
                return bad(format!(
                    "drop probability must be in [0, 1) (got {})",
                    drop.p
                ));
            }
            if !(drop.mean_burst >= 1.0 && drop.mean_burst.is_finite()) {
                return bad(format!(
                    "mean burst length must be ≥ 1 (got {})",
                    drop.mean_burst
                ));
            }
            // Gilbert enter-probability p/(L(1−p)) must be a probability.
            let limit = drop.mean_burst / (drop.mean_burst + 1.0);
            if drop.p > limit {
                return bad(format!(
                    "drop probability {} exceeds L/(L+1) = {limit} for mean burst \
                     length {}; increase mean_burst or lower p",
                    drop.p, drop.mean_burst
                ));
            }
        }
        if let Some(cache) = self.cache {
            if !(cache.rate >= 0.0 && cache.rate.is_finite()) {
                return bad(format!(
                    "cache fault rate must be finite and ≥ 0 (got {})",
                    cache.rate
                ));
            }
        }
        if let Some(f) = self.truncate_fraction {
            if !(f > 0.0 && f <= 1.0) {
                return bad(format!("truncate fraction must be in (0, 1] (got {f})"));
            }
        }
        if let Some(m) = self.msg {
            if !(0.0..1.0).contains(&m.loss_p) {
                return bad(format!(
                    "message loss probability must be in [0, 1) (got {})",
                    m.loss_p
                ));
            }
            if !(0.0..1.0).contains(&m.dup_p) {
                return bad(format!(
                    "message duplication probability must be in [0, 1) (got {})",
                    m.dup_p
                ));
            }
        }
        Ok(())
    }

    /// One-line summary for manifests and checkpoint fingerprints.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if let Some(c) = self.churn {
            parts.push(format!("churn={}/{}", c.mean_up, c.mean_down));
        }
        if let Some(d) = self.drop {
            parts.push(format!("drop={}x{}", d.p, d.mean_burst));
        }
        if let Some(c) = self.cache {
            parts.push(format!("cache={}", c.rate));
        }
        if let Some(f) = self.truncate_fraction {
            parts.push(format!("truncate={f}"));
        }
        if let Some(m) = self.msg {
            parts.push(format!("msg={}/{}/{}", m.loss_p, m.dup_p, m.reorder_window));
        }
        parts.join(",")
    }

    /// The precomputed churn toggle schedule for one trial, as
    /// `(time, node, up)` triples sorted by time. This is exactly the
    /// schedule [`FaultState`] plays back inside the engines, exported so
    /// the distributed runtime can crash and restart *its* node tasks at
    /// the same instants the engine would suppress their contacts —
    /// identical discipline, identical seeds, identical worker-count
    /// independence.
    pub fn churn_schedule(
        &self,
        nodes: usize,
        duration: f64,
        trial_seed: u64,
    ) -> Vec<(f64, u32, bool)> {
        let mut base = Xoshiro256::seed_from_u64(trial_seed ^ self.seed.rotate_left(23));
        let mut toggles = Vec::new();
        if let Some(churn) = self.churn {
            let up_rate = 1.0 / churn.mean_up;
            let down_rate = 1.0 / churn.mean_down;
            for node in 0..nodes {
                let mut rng = base.split(CHURN_STREAM_ID ^ node as u64);
                let mut t = rng.exp(up_rate);
                let mut up = false; // first toggle goes down
                while t < duration && toggles.len() < MAX_TOGGLES {
                    toggles.push((t, node as u32, up));
                    t += rng.exp(if up { up_rate } else { down_rate });
                    up = !up;
                }
            }
            toggles.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        toggles
    }
}

/// One node's precomputed churn toggle.
#[derive(Clone, Copy, Debug)]
struct Toggle {
    time: f64,
    node: u32,
    up: bool,
}

/// Safety cap on the total precomputed churn toggles per trial: beyond
/// it a node simply stays in its last state (pathological mean times
/// would otherwise eat the heap).
const MAX_TOGGLES: usize = 200_000;

/// Per-trial fault state, owned by the engine event loop.
///
/// All randomness comes from streams forked off
/// `seed_from_u64(trial_seed ^ rotated fault seed)` at construction, in
/// a fixed order — the schedule is a pure function of
/// `(FaultConfig, nodes, servers, duration, trial_seed)` and therefore
/// identical at any worker count.
#[derive(Clone, Debug)]
pub struct FaultState {
    /// Merged churn schedule, time-ordered; `cursor` advances through it.
    toggles: Vec<Toggle>,
    cursor: usize,
    node_up: Vec<bool>,
    /// Gilbert chain for contact drops.
    drop: Option<ContactDrop>,
    in_burst: bool,
    drop_rng: Xoshiro256,
    /// Next cache-fault time (INFINITY when inactive).
    next_cache_fault: f64,
    cache_rate_total: f64,
    cache_rng: Xoshiro256,
    servers: usize,
    /// Contacts after this time are lost.
    truncate_at: f64,
    truncation_reported: bool,
}

impl FaultState {
    /// Build the trial's fault schedule. `servers` is the number of
    /// cache-carrying nodes (they occupy node ids `0..servers` in both
    /// engines); churn applies to all `nodes`.
    pub fn new(
        cfg: &FaultConfig,
        nodes: usize,
        servers: usize,
        duration: f64,
        trial_seed: u64,
    ) -> FaultState {
        let mut base = Xoshiro256::seed_from_u64(trial_seed ^ cfg.seed.rotate_left(23));
        let mut toggles = Vec::new();
        if let Some(churn) = cfg.churn {
            let up_rate = 1.0 / churn.mean_up;
            let down_rate = 1.0 / churn.mean_down;
            for node in 0..nodes {
                let mut rng = base.split(CHURN_STREAM_ID ^ node as u64);
                let mut t = rng.exp(up_rate);
                let mut up = false; // first toggle goes down
                while t < duration && toggles.len() < MAX_TOGGLES {
                    toggles.push(Toggle {
                        time: t,
                        node: node as u32,
                        up,
                    });
                    t += rng.exp(if up { up_rate } else { down_rate });
                    up = !up;
                }
            }
            toggles.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.node.cmp(&b.node)));
        }
        let mut drop_rng = base.split(DROP_STREAM_ID);
        let mut cache_rng = base.split(CACHE_STREAM_ID);
        let cache_rate_total = cfg.cache.map_or(0.0, |c| c.rate) * servers as f64;
        let next_cache_fault = if cache_rate_total > 0.0 {
            cache_rng.exp(cache_rate_total)
        } else {
            f64::INFINITY
        };
        // Warm the drop chain so its first decision is already stationary.
        let mut in_burst = false;
        if let Some(drop) = cfg.drop {
            in_burst = drop_rng.bernoulli(drop.p);
        }
        FaultState {
            toggles,
            cursor: 0,
            node_up: vec![true; nodes],
            drop: cfg.drop,
            in_burst,
            drop_rng,
            next_cache_fault,
            cache_rate_total,
            cache_rng,
            servers,
            truncate_at: cfg
                .truncate_fraction
                .map_or(f64::INFINITY, |f| f * duration),
            truncation_reported: false,
        }
    }

    /// Advance churn to time `t`, emitting the toggles that fired.
    fn advance_churn<S: Sink>(&mut self, t: f64, metrics: &mut Metrics, rec: &mut Recorder<S>) {
        while let Some(&Toggle { time, node, up }) = self.toggles.get(self.cursor) {
            if time > t {
                break;
            }
            self.cursor += 1;
            self.node_up[node as usize] = up;
            if up {
                rec.fault(time, "node_up", node, 0);
            } else {
                metrics.node_outages += 1;
                rec.fault(time, "node_down", node, 0);
            }
        }
    }

    /// Decide whether the contact `(a, b)` at time `t` happens. Returns
    /// `false` (and records why) when a fault suppresses it.
    pub fn admit_contact<S: Sink>(
        &mut self,
        t: f64,
        a: u32,
        b: u32,
        metrics: &mut Metrics,
        rec: &mut Recorder<S>,
    ) -> bool {
        if t > self.truncate_at {
            if !self.truncation_reported {
                self.truncation_reported = true;
                rec.fault(self.truncate_at, "trace_truncated", 0, 0);
            }
            metrics.contacts_dropped += 1;
            return false;
        }
        self.advance_churn(t, metrics, rec);
        if !self.node_up[a as usize] || !self.node_up[b as usize] {
            metrics.contacts_dropped += 1;
            return false;
        }
        if let Some(drop) = self.drop {
            // Gilbert chain: one transition per surviving contact, then
            // the contact shares the fate of the current state.
            if self.in_burst {
                if self.drop_rng.bernoulli(1.0 / drop.mean_burst) {
                    self.in_burst = false;
                }
            } else {
                let enter = drop.p / (drop.mean_burst * (1.0 - drop.p));
                if self.drop_rng.bernoulli(enter) {
                    self.in_burst = true;
                }
            }
            if self.in_burst {
                metrics.contacts_dropped += 1;
                rec.fault(t, "contact_drop", a, b);
                return false;
            }
        }
        true
    }

    /// Apply every cache-slot fault due by time `t`: each erases a
    /// uniformly random non-sticky slot of a uniformly random server.
    pub fn apply_cache_faults<S: Sink>(
        &mut self,
        t: f64,
        state: &mut SimState,
        metrics: &mut Metrics,
        rec: &mut Recorder<S>,
    ) {
        while self.next_cache_fault <= t {
            let when = self.next_cache_fault;
            self.next_cache_fault += self.cache_rng.exp(self.cache_rate_total);
            let node = self.cache_rng.index(self.servers);
            if let Some(item) = state.fail_cache_slot(node, &mut self.cache_rng) {
                metrics.cache_faults += 1;
                rec.fault(when, "cache_fault", node as u32, item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_obs::{Event, MemorySink};

    fn drain_faults(rec: &Recorder<MemorySink>) -> Vec<Event> {
        rec.sink().events.clone()
    }

    #[test]
    fn inactive_config_is_inactive() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
        assert_eq!(cfg.summary(), "seed=0");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut cfg = FaultConfig {
            churn: Some(Churn {
                mean_up: 0.0,
                mean_down: 10.0,
            }),
            ..FaultConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.churn = None;
        cfg.drop = Some(ContactDrop {
            p: 0.9,
            mean_burst: 1.0,
        });
        // 0.9 > 1/2: inconsistent with mean burst 1.
        assert!(cfg.validate().is_err());
        cfg.drop = Some(ContactDrop {
            p: 0.9,
            mean_burst: 20.0,
        });
        cfg.validate().unwrap();
        cfg.truncate_fraction = Some(1.5);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let cfg = FaultConfig {
            seed: 5,
            churn: Some(Churn {
                mean_up: 50.0,
                mean_down: 20.0,
            }),
            drop: Some(ContactDrop {
                p: 0.2,
                mean_burst: 2.0,
            }),
            cache: Some(CacheFaults { rate: 0.01 }),
            ..FaultConfig::default()
        };
        let run = || {
            let mut fs = FaultState::new(&cfg, 10, 10, 1_000.0, 42);
            let mut metrics = Metrics::new(1_000.0, 100.0);
            let mut rec = Recorder::new(MemorySink::new());
            let mut state = SimState::new(10, 5, 2);
            state.seed_sticky_and_fill(&mut Xoshiro256::seed_from_u64(1));
            let mut admitted = Vec::new();
            for k in 0..200u32 {
                let t = k as f64 * 5.0;
                fs.apply_cache_faults(t, &mut state, &mut metrics, &mut rec);
                admitted.push(fs.admit_contact(t, k % 10, (k + 1) % 10, &mut metrics, &mut rec));
            }
            (admitted, drain_faults(&rec), metrics.contacts_dropped)
        };
        let (a1, f1, d1) = run();
        let (a2, f2, d2) = run();
        assert_eq!(a1, a2);
        assert_eq!(f1, f2);
        assert_eq!(d1, d2);
        assert!(d1 > 0, "some contacts should have been suppressed");
        assert!(
            f1.iter()
                .any(|e| matches!(e, Event::Fault { kind, .. } if *kind == "node_down")),
            "churn should have fired"
        );
    }

    #[test]
    fn different_trial_seeds_decorrelate() {
        let cfg = FaultConfig {
            drop: Some(ContactDrop {
                p: 0.3,
                mean_burst: 1.0,
            }),
            ..FaultConfig::default()
        };
        let admitted = |trial_seed: u64| {
            let mut fs = FaultState::new(&cfg, 4, 4, 100.0, trial_seed);
            let mut metrics = Metrics::new(100.0, 10.0);
            let mut rec = Recorder::disabled();
            (0..100u32)
                .map(|k| fs.admit_contact(k as f64, 0, 1, &mut metrics, &mut rec))
                .collect::<Vec<_>>()
        };
        assert_ne!(admitted(1), admitted(2));
    }

    #[test]
    fn truncation_reports_once_and_drops_everything_after() {
        let cfg = FaultConfig {
            truncate_fraction: Some(0.5),
            ..FaultConfig::default()
        };
        let mut fs = FaultState::new(&cfg, 2, 2, 100.0, 0);
        let mut metrics = Metrics::new(100.0, 10.0);
        let mut rec = Recorder::new(MemorySink::new());
        assert!(fs.admit_contact(10.0, 0, 1, &mut metrics, &mut rec));
        assert!(!fs.admit_contact(60.0, 0, 1, &mut metrics, &mut rec));
        assert!(!fs.admit_contact(70.0, 0, 1, &mut metrics, &mut rec));
        let truncations = rec
            .sink()
            .events
            .iter()
            .filter(|e| matches!(e, Event::Fault { kind, .. } if *kind == "trace_truncated"))
            .count();
        assert_eq!(truncations, 1);
        assert_eq!(metrics.contacts_dropped, 2);
    }

    #[test]
    fn drop_rate_is_near_p() {
        let cfg = FaultConfig {
            drop: Some(ContactDrop {
                p: 0.25,
                mean_burst: 3.0,
            }),
            ..FaultConfig::default()
        };
        let mut dropped = 0u32;
        let total = 20_000u32;
        let mut fs = FaultState::new(&cfg, 2, 2, 1e9, 7);
        let mut metrics = Metrics::new(1e9, 1e8);
        let mut rec = Recorder::disabled();
        for k in 0..total {
            if !fs.admit_contact(k as f64, 0, 1, &mut metrics, &mut rec) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical drop rate {rate}");
    }

    #[test]
    fn cache_faults_erase_slots_but_never_sticky() {
        let cfg = FaultConfig {
            cache: Some(CacheFaults { rate: 0.5 }),
            ..FaultConfig::default()
        };
        let mut fs = FaultState::new(&cfg, 4, 4, 1_000.0, 3);
        let mut metrics = Metrics::new(1_000.0, 100.0);
        let mut rec = Recorder::disabled();
        let mut state = SimState::new(4, 4, 2);
        state.seed_sticky_and_fill(&mut Xoshiro256::seed_from_u64(9));
        let before: u32 = state.replicas.iter().sum();
        fs.apply_cache_faults(1_000.0, &mut state, &mut metrics, &mut rec);
        assert!(metrics.cache_faults > 0);
        let after: u32 = state.replicas.iter().sum();
        assert_eq!(before - after, metrics.cache_faults as u32);
        // Sticky replicas survive every fault.
        for item in 0..4 {
            if state.sticky_owner[item] != usize::MAX {
                assert!(
                    state.replicas[item] >= 1,
                    "item {item} lost its sticky copy"
                );
            }
        }
    }
}
