//! # impatience-sim
//!
//! Discrete-event simulator for P2P content dissemination over
//! opportunistic contacts — the validation apparatus of the paper's §6.
//!
//! The simulator replays a contact trace (synthetic or measured) over a
//! population of nodes that each dedicate a `ρ`-slot cache to the system.
//! Requests arrive as a Poisson process shaped by content popularity;
//! each contact lets the two nodes fulfill one another's outstanding
//! requests and lets the active *replication policy* reshape the caches:
//!
//! * [`policy::Qcr`] — Query Counting Replication (§5): per-request query
//!   counters, the reaction function ψ, replication *mandates*, and
//!   mandate routing (§5.3) with sticky-seed preference;
//! * [`policy::StaticAllocation`] — the perfect-control-channel
//!   competitors (OPT/UNI/SQRT/PROP/DOM): caches pinned to a precomputed
//!   allocation, fulfillment only;
//! * `PolicyKind::Passive` — fixed replicas-per-fulfillment
//!   (the "passive replication … ends in proportional allocation"
//!   baseline of §6.2/§7).
//!
//! [`runner`] runs many independent trials in parallel and aggregates
//! observed utility with the paper's 5 %/95 % percentile bands.
//!
//! ```
//! use impatience_sim::prelude::*;
//! use impatience_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A small homogeneous QCR run.
//! let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(10.0));
//! let config = SimConfig::builder(20, 3)
//!     .demand(Popularity::pareto(20, 1.0).demand_rates(0.5))
//!     .utility(utility)
//!     .build();
//! let source = ContactSource::homogeneous(20, 0.05, 2_000.0);
//! let outcome = run_trial(&config, &source, PolicyKind::qcr_default(), 42);
//! assert!(outcome.metrics.fulfillments() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod contact_bin;
pub mod engine;
pub mod engine_discrete;
pub mod faults;
pub mod metrics;
pub mod policy;
pub mod runner;
pub mod sharded;
pub mod state;

pub use checkpoint::{CampaignCheckpoint, CheckpointError};
pub use config::{ConfigError, ContactSource, SimConfig, SimConfigBuilder};
pub use contact_bin::BatchedContacts;
pub use engine::{run_trial, TrialOutcome};
pub use engine_discrete::{run_trial_discrete, DiscreteSource};
pub use faults::{CacheFaults, Churn, ContactDrop, FaultConfig, MsgFaults};
pub use metrics::Metrics;
pub use policy::PolicyKind;
pub use runner::{
    run_campaign, run_trials, run_trials_sharded, CampaignError, CampaignOptions, ShardedAggregate,
    TrialAggregate,
};
pub use sharded::{
    run_trial_sharded, validate_sharded, FaultRecord, ShardedOutcome, LOGICAL_SHARDS,
};
pub use state::EvictionPolicy;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::checkpoint::{CampaignCheckpoint, CheckpointError};
    pub use crate::config::{ConfigError, ContactSource, SimConfig};
    pub use crate::engine::{run_trial, run_trial_observed};
    pub use crate::faults::FaultConfig;
    pub use crate::policy::{PolicyKind, QcrConfig};
    pub use crate::runner::{
        run_campaign, run_trials, run_trials_observed, CampaignError, CampaignOptions,
        TrialAggregate,
    };
    pub use crate::sharded::{run_trial_sharded, validate_sharded, ShardedOutcome};
}
