//! Compact binary contact-batch format: fixed-width little-endian
//! records with zero per-event allocation.
//!
//! The text trace format (`# impatience-trace v1`) is convenient for
//! humans but costs a heap-allocated line parse per contact; at the
//! 10⁹-contact scale of the sharded engine that dominates the run. This
//! module defines the wire shape the engine's hot path actually moves:
//!
//! * one contact = one 16-byte record — `f64` time, `u32 a`, `u32 b`,
//!   all little-endian ([`RECORD_BYTES`]);
//! * a *batch* is a plain `Vec<u8>` of concatenated records, reused
//!   across refills so steady-state consumption allocates nothing;
//! * the on-disk form ([`write_contact_bin`]/[`read_contact_bin`])
//!   prefixes a 20-byte header (magic, node count, duration) so files
//!   are self-describing and validated on read.
//!
//! [`BatchedContacts`] adapts a lazy [`ContactStream`] to batch
//! consumption: the sampler encodes up to a batch of upcoming events
//! into the reusable buffer, and the engine decodes them back on
//! `peek`/`next`. Encoding is lossless (`f64`/`u32` ↔ LE bytes), and the
//! contact stream runs on its own forked RNG stream, so pulling events
//! a batch ahead of the simulation clock leaves every trajectory
//! bit-identical to unbatched consumption.

use std::io::{Read, Write};
use std::path::Path;

use impatience_traces::{ContactEvent, ContactStream, ContactTrace, TraceError};

/// Size of one encoded contact record: `f64` time + `u32 a` + `u32 b`.
pub const RECORD_BYTES: usize = 16;

/// Magic prefix of the on-disk form (8 bytes: format name + version 1).
pub const MAGIC: [u8; 8] = *b"IMPCBIN\x01";

/// Default number of records pulled per [`BatchedContacts`] refill.
///
/// 1024 records = 16 KiB — comfortably inside L1/L2 so decode stays in
/// cache, while amortizing the per-refill call overhead ~1000×.
pub const DEFAULT_BATCH: usize = 1024;

/// Append one contact as a 16-byte LE record.
#[inline]
pub fn encode_record(event: &ContactEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&event.time.to_le_bytes());
    out.extend_from_slice(&event.a.to_le_bytes());
    out.extend_from_slice(&event.b.to_le_bytes());
}

/// Decode one record from a 16-byte chunk without validation.
///
/// Only safe to feed bytes produced by [`encode_record`] (the stream
/// sampler already normalizes `a < b` and monotone finite times); file
/// input goes through [`decode_records`] instead.
#[inline]
pub(crate) fn decode_record_unchecked(chunk: &[u8]) -> ContactEvent {
    debug_assert_eq!(chunk.len(), RECORD_BYTES);
    let mut time = [0u8; 8];
    time.copy_from_slice(&chunk[0..8]);
    let mut a = [0u8; 4];
    a.copy_from_slice(&chunk[8..12]);
    let mut b = [0u8; 4];
    b.copy_from_slice(&chunk[12..16]);
    ContactEvent {
        time: f64::from_le_bytes(time),
        a: u32::from_le_bytes(a),
        b: u32::from_le_bytes(b),
    }
}

/// Decode and validate a batch of concatenated records.
///
/// Checks, per record (1-based index reported as the error `line`):
/// truncation (`bytes.len()` not a multiple of [`RECORD_BYTES`] — blamed
/// on the first incomplete record), non-finite or negative or decreasing
/// times, unnormalized pairs (`a ≥ b`), and out-of-range nodes
/// (`b ≥ nodes`).
pub fn decode_records(bytes: &[u8], nodes: usize) -> Result<Vec<ContactEvent>, TraceError> {
    let complete = bytes.len() / RECORD_BYTES;
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(TraceError::Format {
            line: complete + 1,
            message: format!(
                "truncated record: {} trailing bytes (records are {RECORD_BYTES} bytes)",
                bytes.len() % RECORD_BYTES
            ),
        });
    }
    let mut events = Vec::with_capacity(complete);
    let mut prev = 0.0f64;
    for (idx, chunk) in bytes.chunks_exact(RECORD_BYTES).enumerate() {
        let e = decode_record_unchecked(chunk);
        let line = idx + 1;
        if !e.time.is_finite() || e.time < 0.0 {
            return Err(TraceError::Format {
                line,
                message: format!("contact time must be finite and ≥ 0, got {}", e.time),
            });
        }
        if e.time < prev {
            return Err(TraceError::Format {
                line,
                message: format!(
                    "contact times must be non-decreasing ({} after {prev})",
                    e.time
                ),
            });
        }
        if e.a >= e.b {
            return Err(TraceError::Format {
                line,
                message: format!("pair must satisfy a < b, got ({}, {})", e.a, e.b),
            });
        }
        if e.b as usize >= nodes {
            return Err(TraceError::Format {
                line,
                message: format!("node {} out of range (population is {nodes})", e.b),
            });
        }
        prev = e.time;
        events.push(e);
    }
    Ok(events)
}

/// Write a trace in the binary form: header (magic, `u32` node count,
/// `f64` duration, all LE) followed by the concatenated records.
pub fn write_contact_bin<W: Write>(trace: &ContactTrace, mut w: W) -> Result<(), TraceError> {
    w.write_all(&MAGIC)?;
    w.write_all(&(trace.nodes() as u32).to_le_bytes())?;
    w.write_all(&trace.duration().to_le_bytes())?;
    // Encode through a reused chunk buffer rather than one write_all per
    // record: the writer may be unbuffered (e.g. a raw File).
    let mut buf = Vec::with_capacity(DEFAULT_BATCH * RECORD_BYTES);
    for e in trace.events() {
        if buf.len() == buf.capacity() {
            w.write_all(&buf)?;
            buf.clear();
        }
        encode_record(e, &mut buf);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Read and validate a binary contact file produced by
/// [`write_contact_bin`].
pub fn read_contact_bin<R: Read>(mut r: R) -> Result<ContactTrace, TraceError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let header = MAGIC.len() + 4 + 8;
    if bytes.len() < header || bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceError::Format {
            line: 0,
            message: format!(
                "missing IMPCBIN header (magic {MAGIC:02x?} + u32 nodes + f64 duration)"
            ),
        });
    }
    let mut nodes_le = [0u8; 4];
    nodes_le.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    let nodes = u32::from_le_bytes(nodes_le) as usize;
    let mut duration_le = [0u8; 8];
    duration_le.copy_from_slice(&bytes[MAGIC.len() + 4..header]);
    let duration = f64::from_le_bytes(duration_le);
    if !duration.is_finite() || duration < 0.0 {
        return Err(TraceError::Format {
            line: 0,
            message: format!("duration must be finite and ≥ 0, got {duration}"),
        });
    }
    let events = decode_records(&bytes[header..], nodes)?;
    if let Some(last) = events.last() {
        if last.time > duration {
            return Err(TraceError::Format {
                line: events.len(),
                message: format!(
                    "contact at t = {} exceeds the declared duration {duration}",
                    last.time
                ),
            });
        }
    }
    Ok(ContactTrace::new(nodes, duration, events))
}

/// [`write_contact_bin`] to a filesystem path, with the path attached to
/// any error.
pub fn write_contact_bin_file(trace: &ContactTrace, path: &Path) -> Result<(), TraceError> {
    let file = std::fs::File::create(path).map_err(|e| TraceError::from(e).in_file(path))?;
    write_contact_bin(trace, std::io::BufWriter::new(file)).map_err(|e| e.in_file(path))
}

/// [`read_contact_bin`] from a filesystem path, with the path attached
/// to any error.
pub fn read_contact_bin_file(path: &Path) -> Result<ContactTrace, TraceError> {
    let file = std::fs::File::open(path).map_err(|e| TraceError::from(e).in_file(path))?;
    read_contact_bin(std::io::BufReader::new(file)).map_err(|e| e.in_file(path))
}

/// Batch adapter from a lazy [`ContactStream`] to the binary record
/// form: refills encode up to `batch` upcoming events into one reusable
/// byte buffer; `peek`/`next` decode records back out in order.
///
/// Steady-state consumption performs zero allocation — `clear()` keeps
/// the buffer's capacity across refills. Because the underlying contact
/// stream draws from its own forked RNG stream, sampling a batch ahead
/// of the simulation clock cannot perturb any other random draw, and the
/// LE round-trip is exact, so the event sequence is bit-identical to
/// consuming the stream directly.
#[derive(Debug)]
pub struct BatchedContacts {
    stream: ContactStream,
    nodes: usize,
    duration: f64,
    batch: usize,
    buf: Vec<u8>,
    /// Byte offset of the next undecoded record in `buf`.
    pos: usize,
    exhausted: bool,
}

impl BatchedContacts {
    /// Wrap a stream with the default batch size ([`DEFAULT_BATCH`]).
    pub fn new(stream: ContactStream) -> Self {
        Self::with_batch(stream, DEFAULT_BATCH)
    }

    /// Wrap a stream, pulling `batch` records per refill.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn with_batch(stream: ContactStream, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be at least 1");
        BatchedContacts {
            nodes: stream.nodes(),
            duration: stream.duration(),
            stream,
            batch,
            buf: Vec::with_capacity(batch * RECORD_BYTES),
            pos: 0,
            exhausted: false,
        }
    }

    /// Number of nodes the stream covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Length of the observation window.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Encode the next batch of events into the reusable buffer.
    fn refill(&mut self) {
        self.buf.clear();
        self.pos = 0;
        for _ in 0..self.batch {
            match self.stream.next() {
                Some(e) => encode_record(&e, &mut self.buf),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
    }

    /// The next event without consuming it (refilling if the current
    /// batch is drained).
    pub fn peek(&mut self) -> Option<ContactEvent> {
        if self.pos == self.buf.len() {
            if self.exhausted {
                return None;
            }
            self.refill();
        }
        (self.pos < self.buf.len())
            .then(|| decode_record_unchecked(&self.buf[self.pos..self.pos + RECORD_BYTES]))
    }
}

impl Iterator for BatchedContacts {
    type Item = ContactEvent;

    fn next(&mut self) -> Option<ContactEvent> {
        let e = self.peek()?;
        self.pos += RECORD_BYTES;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::rng::Xoshiro256;

    fn sample_trace(seed: u64, nodes: usize, mu: f64, duration: f64) -> ContactTrace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        ContactStream::poisson(nodes, mu, duration, rng.split(1)).collect_trace()
    }

    #[test]
    fn record_round_trip_is_exact() {
        let trace = sample_trace(7, 12, 0.05, 500.0);
        let mut buf = Vec::new();
        for e in trace.events() {
            encode_record(e, &mut buf);
        }
        assert_eq!(buf.len(), trace.len() * RECORD_BYTES);
        let back = decode_records(&buf, trace.nodes()).unwrap();
        assert_eq!(back, trace.events());
    }

    #[test]
    fn file_round_trip_preserves_header_and_events() {
        let trace = sample_trace(3, 9, 0.1, 200.0);
        let mut bytes = Vec::new();
        write_contact_bin(&trace, &mut bytes).unwrap();
        assert_eq!(&bytes[..MAGIC.len()], &MAGIC);
        let back = read_contact_bin(bytes.as_slice()).unwrap();
        assert_eq!(back.nodes(), trace.nodes());
        assert_eq!(back.duration(), trace.duration());
        assert_eq!(back.events(), trace.events());
    }

    #[test]
    fn batched_stream_is_bit_identical_to_direct_consumption() {
        for batch in [1, 3, DEFAULT_BATCH] {
            let mut rng = Xoshiro256::seed_from_u64(11);
            let direct: Vec<ContactEvent> =
                ContactStream::poisson(20, 0.02, 1_000.0, rng.split(2)).collect();
            let mut rng = Xoshiro256::seed_from_u64(11);
            let stream = ContactStream::poisson(20, 0.02, 1_000.0, rng.split(2));
            let mut batched = BatchedContacts::with_batch(stream, batch);
            let mut got = Vec::new();
            while let Some(peeked) = batched.peek() {
                let next = batched.next().unwrap();
                assert_eq!(peeked, next);
                got.push(next);
            }
            assert_eq!(got, direct, "batch size {batch}");
            assert!(batched.next().is_none());
        }
    }

    #[test]
    fn truncated_batch_is_reported_on_the_right_record() {
        let trace = sample_trace(5, 8, 0.1, 100.0);
        let mut buf = Vec::new();
        for e in trace.events() {
            encode_record(e, &mut buf);
        }
        buf.truncate(2 * RECORD_BYTES + 5);
        let err = decode_records(&buf, trace.nodes()).unwrap_err();
        match err {
            TraceError::Format { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("truncated"), "{message}");
            }
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_records_are_rejected() {
        let mk = |time: f64, a: u32, b: u32| {
            let mut buf = Vec::new();
            encode_record(&ContactEvent { time, a, b }, &mut buf);
            buf
        };
        // a ≥ b.
        assert!(matches!(
            decode_records(&mk(1.0, 5, 5), 10),
            Err(TraceError::Format { line: 1, .. })
        ));
        // Node out of range.
        assert!(matches!(
            decode_records(&mk(1.0, 0, 10), 10),
            Err(TraceError::Format { line: 1, .. })
        ));
        // Non-finite time.
        assert!(matches!(
            decode_records(&mk(f64::NAN, 0, 1), 10),
            Err(TraceError::Format { line: 1, .. })
        ));
        // Decreasing time — blamed on the second record.
        let mut buf = mk(5.0, 0, 1);
        buf.extend_from_slice(&mk(2.0, 0, 1));
        assert!(matches!(
            decode_records(&buf, 10),
            Err(TraceError::Format { line: 2, .. })
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(
            read_contact_bin(&b"not a contact file"[..]),
            Err(TraceError::Format { line: 0, .. })
        ));
        let mut bytes = Vec::new();
        write_contact_bin(&sample_trace(1, 4, 0.1, 50.0), &mut bytes).unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_contact_bin(bytes.as_slice()),
            Err(TraceError::Format { line: 0, .. })
        ));
    }
}
