//! Recursive-descent JSON parser.
//!
//! Accepts RFC 8259 documents (one top-level value, any type). Numbers
//! without a fraction or exponent that fit `i64` become [`Json::Int`];
//! everything else becomes [`Json::Float`].

use std::fmt;

use crate::Json;

/// A parse failure, carrying the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

pub(crate) fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

/// Nesting limit: recursion-based parsing must not let hostile input
/// overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 and we only stopped on ASCII
                // delimiters, so the run is a valid str slice; report a
                // positioned parse error rather than panic if that
                // invariant ever breaks.
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(run) => out.push_str(run),
                    Err(_) => return Err(self.err("invalid UTF-8 in string")),
                }
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = match self.peek() {
            None => return Err(self.err("unterminated escape")),
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(code).ok_or_else(|| self.err("invalid code point"));
                    }
                    return Err(self.err("unpaired surrogate"));
                }
                return char::from_u32(hi).ok_or_else(|| self.err("invalid code point"));
            }
            Some(_) => return Err(self.err("invalid escape character")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Number spans are ASCII by construction; degrade to a
        // positioned parse error instead of panicking if not.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
