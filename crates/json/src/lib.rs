//! # impatience-json
//!
//! A small, dependency-free JSON library: a [`Json`] value model, a
//! recursive-descent parser, and a compact writer.
//!
//! The workspace builds in hermetic environments with no access to a
//! crates registry, so the trace I/O ([`impatience-traces`]) and the
//! observability layer ([`impatience-obs`]: JSONL event streams, run
//! manifests) serialize through this crate instead of serde. The
//! supported surface is deliberately plain: UTF-8 text, `i64`/`f64`
//! numbers, objects with insertion-ordered keys (deterministic output —
//! important for manifest diffing and golden tests).
//!
//! ```
//! use impatience_json::Json;
//!
//! let v = Json::obj([
//!     ("name", Json::from("fig4")),
//!     ("trials", Json::from(15u64)),
//!     ("rate", Json::from(0.7321)),
//! ]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("trials").and_then(Json::as_u64), Some(15));
//! ```
//!
//! [`impatience-traces`]: ../impatience_traces/index.html
//! [`impatience-obs`]: ../impatience_obs/index.html

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod parse;

pub use parse::JsonParseError;

use std::fmt;

/// A JSON value.
///
/// Numbers keep their integer-ness: values written as integers parse back
/// as [`Json::Int`], everything else as [`Json::Float`]. Object keys keep
/// insertion order so output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no fraction or exponent, fits `i64`).
    Int(i64),
    /// Any other number. Non-finite floats serialize as `null` (JSON has
    /// no representation for them).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parse a JSON document (must be a single value with only trailing
    /// whitespace after it).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        parse::parse(text)
    }

    /// Member lookup on an object (first match wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize compactly into `out` (no trailing newline).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-roundtrip in Rust.
                    use fmt::Write as _;
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    // Keep floats recognizably non-integer on re-parse.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize with `indent`-space indentation (no trailing newline).
    /// Scalars render exactly as [`Json::write`] does, so a re-parse is
    /// value-identical; only whitespace differs. Used for the committed
    /// human-diffed documents (`BENCH_*.json`, API examples).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        self.write_pretty_at(out, indent, 0);
    }

    fn write_pretty_at(&self, out: &mut String, indent: usize, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&" ".repeat(indent * (depth + 1)));
                    v.write_pretty_at(out, indent, depth + 1);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent * depth));
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&" ".repeat(indent * (depth + 1)));
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty_at(out, indent, depth + 1);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent * depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Write `x` exactly as [`Json::Float`] serializes it: shortest
/// round-trip via `{}`, a `.0` suffix when the text would otherwise look
/// integral, `null` for non-finite values. Exposed so callers building
/// JSON text directly (e.g. the JSONL event fast path in
/// `impatience-obs`) stay byte-identical with tree serialization.
pub fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        use fmt::Write as _;
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Write `n` exactly as `Json::from(u64)` serializes it (integer text,
/// falling back to the float path above `i64::MAX`).
pub fn write_u64(n: u64, out: &mut String) {
    match i64::try_from(n) {
        Ok(i) => {
            use fmt::Write as _;
            let _ = write!(out, "{i}");
        }
        Err(_) => write_f64(n as f64, out),
    }
}

/// Write `s` as a quoted, escaped JSON string exactly as [`Json::Str`]
/// serializes it.
pub fn write_str(s: &str, out: &mut String) {
    write_escaped(s, out);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n)
            .map(Json::Int)
            .unwrap_or(Json::Float(n as f64))
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_print_reparses_identically() {
        let v = Json::obj([
            ("name", Json::from("bench")),
            ("empty_obj", Json::obj::<&str, _>([])),
            ("empty_arr", Json::Array(vec![])),
            (
                "rows",
                Json::Array(vec![Json::from(1i64), Json::from(2.5), Json::Null]),
            ),
            ("nested", Json::obj([("p99", Json::from(3.25))])),
        ]);
        let mut pretty = String::new();
        v.write_pretty(&mut pretty, 2);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("{\n  \"name\": \"bench\""));
        assert!(pretty.contains("\"empty_obj\": {}"));
        assert!(pretty.contains("\"nested\": {\n    \"p99\": 3.25\n  }"));
    }

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e-3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::from(42u64).to_string(), "42");
        let x = Json::parse("42.0").unwrap();
        assert_eq!(x, Json::Float(42.0));
        // A float that happens to be integral still re-parses as a float.
        assert_eq!(Json::parse(&x.to_string()).unwrap(), Json::Float(42.0));
    }

    #[test]
    fn float_roundtrip_is_lossless() {
        for x in [0.1, -2.5e-300, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let text = Json::Float(x).to_string();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn object_helpers_and_order() {
        let v = Json::obj([("b", Json::from(1u64)), ("a", Json::from("x"))]);
        assert_eq!(v.to_string(), "{\"b\":1,\"a\":\"x\"}");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}é→";
        let text = Json::from(nasty).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a":[1,2.5,{"b":null},"s"],"c":{"d":[true,false]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].as_f64(), Some(2.5));
    }

    #[test]
    fn parse_errors_carry_positions() {
        for bad in [
            "", "{", "[1,]", "{\"a\"1}", "tru", "1 2", "\"\\q\"", "{\"a\":}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.to_string().contains("offset"), "{bad}: {err}");
        }
    }
}
