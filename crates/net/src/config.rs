//! Knobs of the distributed runtime: contact-window geometry, message
//! delay, retry/backoff budget, heartbeats, checkpoints, and chaos
//! hooks.

use impatience_sim::policy::QcrConfig;

use crate::error::NetError;

/// A scheduled chaos injection against one node task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEvent {
    /// When the event fires (minutes).
    pub t: f64,
    /// The victim node.
    pub node: u32,
    /// What happens to it.
    pub kind: ChaosKind,
}

/// The two chaos primitives the kernel understands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosKind {
    /// Crash the node (volatile state lost, durable mandate ledger
    /// survives) and restart it `down_for` minutes later from its last
    /// checkpoint.
    Kill {
        /// Downtime before the restart (minutes).
        down_for: f64,
    },
    /// Wedge the node: it stops processing messages, timers, and
    /// heartbeats but is never restarted by the churn schedule. Only the
    /// supervisor's heartbeat timeout removes it (degrading the run).
    Stall,
}

/// Configuration of the distributed QCR runtime.
///
/// Times are minutes, like everything else in the simulator. The
/// defaults put the whole message exchange (advert → request → fulfill,
/// plus a handoff/ack round) well inside one contact window, and the
/// window itself well under typical inter-contact times (1/μ ≈ 10–20
/// minutes), so the clean-transport runtime is statistically the engine.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// QCR protocol knobs; must match the engine's for differential runs.
    pub qcr: QcrConfig,
    /// How long a trace contact keeps the link up (minutes).
    pub window: f64,
    /// One-way message delay (minutes).
    pub msg_delay: f64,
    /// Initial retransmission timeout; doubles per attempt.
    pub rto_base: f64,
    /// Cap on the (pre-jitter) backoff delay.
    pub rto_cap: f64,
    /// Send attempts before a transfer is parked as an ack timeout.
    pub max_attempts: u32,
    /// Heartbeat period of every live node.
    pub heartbeat_every: f64,
    /// Supervisor kills a node silent for this long.
    pub heartbeat_timeout: f64,
    /// Period of the volatile-state checkpoint each node recovers from
    /// after a crash.
    pub checkpoint_every: f64,
    /// Request deadline budget: a pending request older than this is
    /// abandoned and settled as unfulfilled. `None` waits until the
    /// horizon (the engine's semantics).
    pub deadline: Option<f64>,
    /// Hard cap on kernel events per trial (anti-wedge backstop);
    /// `0` derives a generous bound from the workload.
    pub max_events: u64,
    /// Scheduled chaos injections.
    pub chaos: Vec<ChaosEvent>,
    /// Strict transport semantics: the first handshake or ack timeout
    /// aborts the trial with the corresponding [`NetError`] instead of
    /// being counted and retried. For tests; production runs degrade.
    pub strict: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            qcr: QcrConfig::default(),
            window: 0.05,
            msg_delay: 0.002,
            rto_base: 0.01,
            rto_cap: 0.08,
            max_attempts: 64,
            heartbeat_every: 120.0,
            heartbeat_timeout: 360.0,
            checkpoint_every: 60.0,
            deadline: None,
            max_events: 0,
            chaos: Vec::new(),
            strict: false,
        }
    }
}

impl NetConfig {
    /// Validate the runtime parameters.
    pub fn validate(&self) -> Result<(), NetError> {
        let pos = |x: f64| x > 0.0 && x.is_finite();
        if !pos(self.window) || !pos(self.msg_delay) || !pos(self.rto_base) || !pos(self.rto_cap) {
            return Err(NetError::Config(format!(
                "window/msg_delay/rto_base/rto_cap must be positive and finite \
                 (got {}/{}/{}/{})",
                self.window, self.msg_delay, self.rto_base, self.rto_cap
            )));
        }
        if self.msg_delay >= self.window {
            return Err(NetError::Config(format!(
                "message delay {} must be below the contact window {} or nothing \
                 can ever be delivered",
                self.msg_delay, self.window
            )));
        }
        if !pos(self.heartbeat_every) || !pos(self.heartbeat_timeout) || !pos(self.checkpoint_every)
        {
            return Err(NetError::Config(
                "heartbeat and checkpoint periods must be positive and finite".into(),
            ));
        }
        if self.heartbeat_timeout <= self.heartbeat_every {
            return Err(NetError::Config(format!(
                "heartbeat timeout {} must exceed the heartbeat period {}",
                self.heartbeat_timeout, self.heartbeat_every
            )));
        }
        if let Some(d) = self.deadline {
            if !pos(d) {
                return Err(NetError::Config(format!(
                    "request deadline must be positive and finite (got {d})"
                )));
            }
        }
        if self.max_attempts == 0 {
            return Err(NetError::Config("max_attempts must be at least 1".into()));
        }
        for c in &self.chaos {
            if !(c.t >= 0.0 && c.t.is_finite()) {
                return Err(NetError::Config(format!(
                    "chaos event time must be finite and >= 0 (got {})",
                    c.t
                )));
            }
            if let ChaosKind::Kill { down_for } = c.kind {
                if !pos(down_for) {
                    return Err(NetError::Config(format!(
                        "chaos kill downtime must be positive (got {down_for})"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        NetConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let mut cfg = NetConfig {
            window: 0.0,
            ..NetConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.window = 0.05;
        cfg.msg_delay = 0.06;
        assert!(cfg.validate().is_err());
        cfg.msg_delay = 0.002;
        cfg.heartbeat_timeout = cfg.heartbeat_every;
        assert!(cfg.validate().is_err());
        cfg.heartbeat_timeout = 360.0;
        cfg.chaos.push(ChaosEvent {
            t: -1.0,
            node: 0,
            kind: ChaosKind::Stall,
        });
        assert!(cfg.validate().is_err());
        cfg.chaos[0] = ChaosEvent {
            t: 1.0,
            node: 0,
            kind: ChaosKind::Kill { down_for: 0.0 },
        };
        assert!(cfg.validate().is_err());
        cfg.chaos.clear();
        cfg.validate().unwrap();
    }
}
