//! The per-node protocol state machine.
//!
//! Each node is an independent task driven purely by delivered messages
//! and timers; it owns no global view. Its state splits into:
//!
//! * **durable** (write-ahead semantics: survives a crash) — the mandate
//!   pool, the escrow of un-acked outgoing transfers, the idempotency
//!   table of applied incoming transfers, and the node's RNG. This is
//!   exactly the state the conservation invariant audits, which is why a
//!   crash mid-handoff can never duplicate or leak a mandate.
//! * **volatile** (lost on crash, restored from a periodic checkpoint) —
//!   pending requests, per-window exchange state, and retry timers.
//!   Losing it degrades welfare (abandoned requests settle as
//!   unfulfilled) but never corrupts mandate accounting.
//!
//! Handlers communicate only through [`Ctx`]: outgoing messages, new
//! timers, metrics, and the kernel-side request registry (the omniscient
//! "user" that books each request's welfare exactly once, even when a
//! crash resurrects an already-fulfilled request from a stale
//! checkpoint).

use std::collections::BTreeMap;

use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;
use impatience_obs::{Recorder, Sink};
use impatience_sim::state::SimState;
use impatience_sim::Metrics;

use crate::config::NetConfig;
use crate::error::NetError;
use crate::kernel::{Ledger, NetStats, ReqRecord};
use crate::wire::Msg;

/// Node-local timers, scheduled through [`Ctx::timers`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Timer {
    /// Re-drive a stalled window exchange (lost advert / request).
    WindowRetry {
        /// The peer of the exchange.
        peer: u32,
        /// The window the exchange belongs to.
        window: u64,
    },
    /// Re-send an un-acked mandate transfer.
    XferRetry {
        /// The transfer id.
        xfer: u64,
    },
    /// Periodic liveness beacon (kernel-observed).
    Heartbeat,
    /// Periodic volatile-state checkpoint.
    Checkpoint,
}

/// One pending (unfulfilled) request at its origin node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct PendingReq {
    /// Index into the kernel's request registry.
    pub req_id: u64,
    /// The wanted item.
    pub item: u32,
    /// Arrival time.
    pub created: f64,
    /// Query counter (meetings with cache-carrying peers lacking the
    /// item), the `y` of ψ(y).
    pub queries: u64,
}

/// An escrowed outgoing mandate transfer (durable until acked).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Xfer {
    /// Receiver.
    pub peer: u32,
    /// Mandated item.
    pub item: u32,
    /// Mandates escrowed.
    pub count: u64,
    /// Execution (store a copy) vs custody handoff.
    pub execute: bool,
    /// Send attempts so far.
    pub attempts: u32,
    /// Retry budget exhausted; waits in escrow forever.
    pub parked: bool,
}

/// Per-window exchange state with one peer (volatile).
#[derive(Clone, Debug, Default)]
pub(crate) struct Exchange {
    /// Window id.
    pub window: u64,
    /// Peer advert received and processed.
    pub advert_seen: bool,
    /// Items the peer advertised (sorted).
    pub peer_items: Vec<u32>,
    /// Mandate pool the peer advertised.
    pub peer_mandates: Vec<(u32, u64)>,
    /// Items we requested this window.
    pub requested: Vec<u32>,
    /// A fulfill frame arrived.
    pub fulfill_seen: bool,
    /// Window-retry rounds fired.
    pub retries: u32,
    /// Adverts re-sent in response to duplicate adverts (anti-entropy;
    /// bounded to stop live nodes ping-ponging).
    pub dup_resends: u32,
}

/// Everything a handler may touch outside the node itself.
pub(crate) struct Ctx<'a, S: Sink> {
    /// Current simulation time.
    pub t: f64,
    /// Ground-truth caches (each node only reads/writes its own row).
    pub state: &'a mut SimState,
    /// Trial welfare accounting.
    pub metrics: &'a mut Metrics,
    /// Protocol counters.
    pub stats: &'a mut NetStats,
    /// Global mandate conservation ledger.
    pub ledger: &'a mut Ledger,
    /// Kernel-side request registry indexed by `req_id`.
    pub registry: &'a mut Vec<ReqRecord>,
    /// Outgoing messages: (receiver, message).
    pub out: &'a mut Vec<(u32, Msg)>,
    /// New timers for this node: (fire time, timer).
    pub timers: &'a mut Vec<(f64, Timer)>,
    /// Event recorder.
    pub rec: &'a mut Recorder<S>,
    /// The welfare utility (books `h(wait)` gains, like the engine's
    /// `config.utility`).
    pub utility: &'a dyn DelayUtility,
    /// The protocol utility driving ψ (the engine's `protocol_utility`
    /// override, falling back to the welfare utility).
    pub protocol: &'a dyn DelayUtility,
    /// ψ multiplier shared with the engine ([`impatience_sim::policy::reaction_scale`]).
    pub scale: f64,
    /// Reference contact rate fed to ψ (same value the engine passes).
    pub mu_ref: f64,
    /// Runtime knobs.
    pub cfg: &'a NetConfig,
    /// Global transfer-id counter.
    pub next_xfer: &'a mut u64,
    /// First fatal error in strict mode; kernel aborts when set.
    pub fatal: &'a mut Option<NetError>,
}

/// One protocol node.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// Node id (row in the cache arena).
    pub id: u32,
    /// Processing events (false while crashed or after a stall kill).
    pub alive: bool,
    /// Wedged by chaos: drops everything, including heartbeats.
    pub stalled: bool,
    /// Bumped on every restart.
    pub incarnation: u32,
    /// Node-private randomness (durable).
    pub rng: Xoshiro256,
    // --- durable mandate ledger ---
    /// Mandate pool: item → count (≤ mandate cap).
    pub pool: BTreeMap<u32, u64>,
    /// Un-acked outgoing transfers.
    pub escrow: BTreeMap<u64, Xfer>,
    /// Applied incoming transfers: xfer id → mandates consumed. The
    /// idempotent-dedup table: redelivered handoffs re-ack this value.
    pub applied: BTreeMap<u64, u64>,
    // --- volatile ---
    /// Outstanding requests.
    pub pending: Vec<PendingReq>,
    /// Open window exchanges by peer.
    pub exchanges: BTreeMap<u32, Exchange>,
    /// Last volatile checkpoint (what a restart recovers).
    pub ckpt_pending: Vec<PendingReq>,
}

impl Node {
    pub(crate) fn new(id: u32, rng: Xoshiro256) -> Node {
        Node {
            id,
            alive: true,
            stalled: false,
            incarnation: 0,
            rng,
            pool: BTreeMap::new(),
            escrow: BTreeMap::new(),
            applied: BTreeMap::new(),
            pending: Vec::new(),
            exchanges: BTreeMap::new(),
            ckpt_pending: Vec::new(),
        }
    }

    /// Capped exponential backoff with ±50% jitter.
    fn backoff(&mut self, cfg: &NetConfig, attempts: u32) -> f64 {
        let raw = cfg.rto_base * 2f64.powi(attempts.min(16) as i32);
        raw.min(cfg.rto_cap) * (0.5 + self.rng.f64())
    }

    fn advert<S: Sink>(&self, ctx: &Ctx<'_, S>, window: u64) -> Msg {
        let mut items = ctx.state.caches.node(self.id as usize).items().to_vec();
        items.sort_unstable();
        Msg::CacheAdvert {
            window,
            items,
            mandates: self.pool.iter().map(|(&i, &c)| (i, c)).collect(),
        }
    }

    /// A contact window to `peer` just opened.
    pub(crate) fn on_contact<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, peer: u32, window: u64) {
        self.exchanges.insert(
            peer,
            Exchange {
                window,
                ..Exchange::default()
            },
        );
        let hello = self.advert(ctx, window);
        ctx.out.push((peer, hello));
        // Re-drive every live escrowed transfer aimed at this peer: the
        // jittered per-window retries do the short-timescale recovery,
        // the next contact does the long one.
        let xfers: Vec<u64> = self
            .escrow
            .iter()
            .filter(|(_, x)| x.peer == peer && !x.parked)
            .map(|(&id, _)| id)
            .collect();
        for id in xfers {
            self.send_xfer(ctx, id);
        }
        let delay = self.backoff(ctx.cfg, 0);
        ctx.timers
            .push((ctx.t + delay, Timer::WindowRetry { peer, window }));
    }

    /// The window to `peer` closed (link down or peer churned away).
    pub(crate) fn on_link_down<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, peer: u32, window: u64) {
        let Some(ex) = self.exchanges.get(&peer) else {
            return;
        };
        if ex.window != window {
            return; // a newer exchange replaced it
        }
        let ex = self.exchanges.remove(&peer).expect("checked above");
        if !ex.advert_seen {
            ctx.stats.handshake_timeouts += 1;
            ctx.rec.fault(ctx.t, "net_handshake_timeout", self.id, peer);
            if ctx.cfg.strict && ctx.fatal.is_none() {
                *ctx.fatal = Some(NetError::HandshakeTimeout {
                    node: self.id,
                    peer,
                    window,
                });
            }
        }
    }

    /// The kernel parked a new request at this node (origin lacks the
    /// item; immediate hits never reach the node).
    pub(crate) fn on_request_arrival(&mut self, req_id: u64, item: u32, created: f64) {
        self.pending.push(PendingReq {
            req_id,
            item,
            created,
            queries: 0,
        });
    }

    /// Dispatch one delivered protocol message.
    pub(crate) fn on_msg<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, from: u32, msg: Msg) {
        match msg {
            Msg::CacheAdvert {
                window,
                items,
                mandates,
            } => self.on_advert(ctx, from, window, items, mandates),
            Msg::Request { window, wants } => self.on_peer_request(ctx, from, window, wants),
            Msg::Fulfill { window, grants } => self.on_fulfill(ctx, from, window, grants),
            Msg::MandateHandoff {
                xfer,
                item,
                count,
                execute,
            } => self.on_handoff(ctx, from, xfer, item, count, execute),
            Msg::MandateAck { xfer, consumed } => self.on_ack(ctx, from, xfer, consumed),
        }
    }

    fn on_advert<S: Sink>(
        &mut self,
        ctx: &mut Ctx<'_, S>,
        from: u32,
        window: u64,
        mut items: Vec<u32>,
        mandates: Vec<(u32, u64)>,
    ) {
        let Some(ex) = self.exchanges.get_mut(&from) else {
            return; // stale: the window already closed here
        };
        if ex.window != window {
            return;
        }
        if ex.advert_seen {
            // Duplicate (fault or peer retry). The peer retrying its
            // advert usually means it lost ours — resend it, bounded.
            if ex.dup_resends < 3 {
                ex.dup_resends += 1;
                let hello = self.advert(ctx, window);
                ctx.out.push((from, hello));
            }
            return;
        }
        items.sort_unstable();
        ex.advert_seen = true;
        ex.peer_mandates = mandates;

        // Query counting and request assembly: one advert = one meeting
        // with a cache-carrying peer, exactly the engine's per-contact
        // increment. Items the peer holds are requested (their counter
        // bumps by one at fulfillment); items it lacks count a query.
        let mut wants: Vec<u32> = Vec::new();
        for p in &mut self.pending {
            if items.binary_search(&p.item).is_ok() {
                wants.push(p.item);
            } else {
                p.queries += 1;
            }
        }
        ex.peer_items = items;
        wants.sort_unstable();
        wants.dedup();
        if !wants.is_empty() {
            ex.requested = wants.clone();
            ctx.out.push((from, Msg::Request { window, wants }));
        }

        // Mandate execution (§5.3's possession rule): for each pooled
        // item this node holds and the peer lacks, offer one copy.
        let pooled: Vec<u32> = self.pool.keys().copied().collect();
        for item in pooled {
            let holds_here = ctx.state.caches.holds(self.id as usize, item);
            let holds_peer = self.peer_holds(from, item);
            if holds_here && !holds_peer && !self.xfer_in_flight(from, item) {
                self.start_xfer(ctx, from, item, 1, true);
            }
        }
        // Mandate routing toward replica holders.
        self.route_pool(ctx, from);
    }

    fn peer_holds(&self, peer: u32, item: u32) -> bool {
        self.exchanges
            .get(&peer)
            .map(|ex| ex.peer_items.binary_search(&item).is_ok())
            .unwrap_or(false)
    }

    fn peer_pool(&self, peer: u32, item: u32) -> u64 {
        self.exchanges
            .get(&peer)
            .and_then(|ex| {
                ex.peer_mandates
                    .iter()
                    .find(|&&(i, _)| i == item)
                    .map(|&(_, c)| c)
            })
            .unwrap_or(0)
    }

    fn xfer_in_flight(&self, peer: u32, item: u32) -> bool {
        self.escrow
            .values()
            .any(|x| x.peer == peer && x.item == item)
    }

    /// Give away the part of the pool the §5.3 split assigns to `peer`.
    ///
    /// Each side runs this independently from (its own pool, the peer's
    /// advertised pool); the deterministic tie-break (the lower node id
    /// keeps an odd leftover) keeps the two computations consistent, so
    /// at most one direction transfers custody per item.
    fn route_pool<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, peer: u32) {
        let items: Vec<u32> = self.pool.keys().copied().collect();
        for item in items {
            self.route_item(ctx, peer, item);
        }
    }

    fn route_item<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, peer: u32, item: u32) {
        let mine = self.pool.get(&item).copied().unwrap_or(0);
        if mine == 0 || self.xfer_in_flight(peer, item) {
            return;
        }
        let theirs = self.peer_pool(peer, item);
        let cap = ctx.cfg.qcr.mandate_cap;
        let total = (mine + theirs).min(cap);
        let me = self.id as usize;
        let holds_here = ctx.state.caches.holds(me, item);
        let holds_peer = self.peer_holds(peer, item);
        let sticky = ctx.state.sticky_owner[item as usize];
        let keep = match (holds_here, holds_peer) {
            (true, false) => total,
            (false, true) => 0,
            _ => {
                if holds_here && sticky == me {
                    (total * 2).div_ceil(3)
                } else if holds_peer && sticky == peer as usize {
                    total - (total * 2).div_ceil(3)
                } else {
                    // Even split; the lower id keeps an odd leftover.
                    total / 2 + u64::from(total % 2 == 1 && self.id < peer)
                }
            }
        };
        if mine > keep {
            let give = mine - keep;
            self.start_xfer(ctx, peer, item, give, false);
        }
    }

    /// Escrow `count` mandates of `item` and send the handoff frame.
    fn start_xfer<S: Sink>(
        &mut self,
        ctx: &mut Ctx<'_, S>,
        peer: u32,
        item: u32,
        count: u64,
        execute: bool,
    ) {
        debug_assert!(count > 0);
        let pool = self.pool.get_mut(&item).expect("escrow from pooled item");
        debug_assert!(*pool >= count);
        *pool -= count;
        if *pool == 0 {
            self.pool.remove(&item);
        }
        let id = *ctx.next_xfer;
        *ctx.next_xfer += 1;
        self.escrow.insert(
            id,
            Xfer {
                peer,
                item,
                count,
                execute,
                attempts: 0,
                parked: false,
            },
        );
        ctx.stats.handoffs_started += 1;
        self.send_xfer(ctx, id);
    }

    /// (Re-)send an escrowed transfer and arm its retry timer.
    fn send_xfer<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, id: u64) {
        let Some(x) = self.escrow.get_mut(&id) else {
            return;
        };
        if x.parked {
            return;
        }
        x.attempts += 1;
        if x.attempts > ctx.cfg.max_attempts {
            x.parked = true;
            let (peer, attempts) = (x.peer, x.attempts - 1);
            ctx.stats.ack_timeouts += 1;
            ctx.rec.fault(ctx.t, "net_ack_timeout", self.id, peer);
            if ctx.cfg.strict && ctx.fatal.is_none() {
                *ctx.fatal = Some(NetError::AckTimeout {
                    node: self.id,
                    peer,
                    xfer: id,
                    attempts,
                });
            }
            return;
        }
        let msg = Msg::MandateHandoff {
            xfer: id,
            item: x.item,
            count: x.count,
            execute: x.execute,
        };
        let (peer, attempts) = (x.peer, x.attempts);
        if attempts > 1 {
            ctx.stats.retries += 1;
        }
        ctx.out.push((peer, msg));
        let delay = self.backoff(ctx.cfg, attempts);
        ctx.timers
            .push((ctx.t + delay, Timer::XferRetry { xfer: id }));
    }

    /// Serve a peer's request list from the local cache.
    fn on_peer_request<S: Sink>(
        &mut self,
        ctx: &mut Ctx<'_, S>,
        from: u32,
        window: u64,
        wants: Vec<u32>,
    ) {
        let mut grants = Vec::with_capacity(wants.len());
        let me = self.id as usize;
        for item in wants {
            if ctx.state.caches.holds(me, item) {
                // Serving counts as a use of this copy (LRU recency).
                ctx.state.caches.node_mut(me).touch(item);
                grants.push(item);
            }
        }
        ctx.out.push((from, Msg::Fulfill { window, grants }));
    }

    /// Content arrived: settle matching pending requests, mint mandates
    /// (ψ of the final query count), and route the fresh mandates toward
    /// the node that just proved it holds the item — the engine performs
    /// exactly this mint-then-route inside the same meeting.
    fn on_fulfill<S: Sink>(
        &mut self,
        ctx: &mut Ctx<'_, S>,
        from: u32,
        window: u64,
        grants: Vec<u32>,
    ) {
        if let Some(ex) = self.exchanges.get_mut(&from) {
            if ex.window == window {
                ex.fulfill_seen = true;
            }
        }
        for &item in &grants {
            let mut fulfilled: Vec<PendingReq> = Vec::new();
            self.pending.retain(|p| {
                if p.item == item {
                    fulfilled.push(*p);
                    false
                } else {
                    true
                }
            });
            for p in fulfilled {
                let record = &mut ctx.registry[p.req_id as usize];
                if record.fulfilled || record.lost {
                    continue; // checkpoint zombie: welfare already booked
                }
                record.fulfilled = true;
                let wait = ctx.t - p.created;
                let gain = ctx.utility.h(wait);
                ctx.metrics.record_fulfillment(ctx.t, gain);
                ctx.rec
                    .fulfillment(ctx.t, self.id, item, wait, (p.queries + 1) as u32);
                self.mint(ctx, item, p.queries + 1);
            }
            // The granting peer certainly holds the item now.
            if let Some(ex) = self.exchanges.get_mut(&from) {
                if ex.window == window {
                    if let Err(pos) = ex.peer_items.binary_search(&item) {
                        ex.peer_items.insert(pos, item);
                    }
                }
            }
            self.route_item(ctx, from, item);
        }
    }

    /// Mint ψ(y)-scaled mandates — the engine's `Qcr::mint` verbatim,
    /// with the conservation ledger recording what actually entered the
    /// pool.
    fn mint<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, item: u32, queries: u64) {
        if queries == 0 {
            return;
        }
        let servers = ctx.state.caches.cache_nodes() as f64;
        let raw = match ctx.cfg.qcr.reaction {
            impatience_sim::policy::Reaction::Psi => {
                ctx.protocol.psi(queries as f64, servers, ctx.mu_ref) * ctx.scale
            }
            impatience_sim::policy::Reaction::Constant(k) => k * ctx.cfg.qcr.gain_scale,
        };
        if raw.is_nan() || raw <= 0.0 {
            return;
        }
        let mut count = raw.floor() as u64;
        if self.rng.bernoulli(raw - count as f64) {
            count += 1;
        }
        let cap = ctx.cfg.qcr.mandate_cap;
        if count > cap {
            ctx.metrics.mandate_cap_hits += 1;
            count = cap;
        }
        if count > 0 {
            let pool = self.pool.entry(item).or_insert(0);
            let before = *pool;
            *pool = (*pool + count).min(cap);
            let added = *pool - before;
            ctx.metrics.mandates_created += added;
            ctx.ledger.minted += added;
            if *pool == 0 {
                self.pool.remove(&item);
            }
        }
    }

    /// Phase 1 receiver: apply idempotently, remember the decision, ack.
    fn on_handoff<S: Sink>(
        &mut self,
        ctx: &mut Ctx<'_, S>,
        from: u32,
        xfer: u64,
        item: u32,
        count: u64,
        execute: bool,
    ) {
        if let Some(&consumed) = self.applied.get(&xfer) {
            // Redelivery (duplicate frame or sender retry): same ack.
            ctx.out.push((from, Msg::MandateAck { xfer, consumed }));
            return;
        }
        let me = self.id as usize;
        let consumed = if execute {
            if ctx.state.caches.holds(me, item) {
                0 // no rewriting: the mandate returns to the sender
            } else if ctx.state.replicate(item, me, &mut self.rng) {
                ctx.ledger.executed += 1;
                ctx.stats.execs_applied += 1;
                ctx.rec.replications(ctx.t, 1);
                1
            } else {
                0 // cache can't accept (all slots sticky)
            }
        } else {
            let cap = ctx.cfg.qcr.mandate_cap;
            let pool = self.pool.entry(item).or_insert(0);
            let before = *pool;
            *pool = (*pool + count).min(cap);
            let overflow = count - (*pool - before);
            ctx.ledger.discarded += overflow;
            ctx.stats.handoffs_applied += 1;
            count // custody fully consumed (overflow destroyed here)
        };
        self.applied.insert(xfer, consumed);
        ctx.out.push((from, Msg::MandateAck { xfer, consumed }));
    }

    /// Phase 2 sender: release the escrow; un-consumed mandates return
    /// to the pool.
    fn on_ack<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, _from: u32, xfer: u64, consumed: u64) {
        let Some(x) = self.escrow.remove(&xfer) else {
            return; // duplicate ack
        };
        ctx.stats.acks_received += 1;
        let returned = x.count.saturating_sub(consumed);
        if returned > 0 {
            let cap = ctx.cfg.qcr.mandate_cap;
            let pool = self.pool.entry(x.item).or_insert(0);
            let before = *pool;
            *pool = (*pool + returned).min(cap);
            let overflow = returned - (*pool - before);
            ctx.ledger.discarded += overflow;
        }
    }

    /// A node-local timer fired. `link_up` reports whether the link to
    /// the timer's peer is currently up (retries are pointless otherwise;
    /// the next contact re-drives everything).
    pub(crate) fn on_timer<S: Sink>(&mut self, ctx: &mut Ctx<'_, S>, timer: Timer, link_up: bool) {
        match timer {
            Timer::WindowRetry { peer, window } => {
                if !link_up {
                    return;
                }
                let Some(ex) = self.exchanges.get_mut(&peer) else {
                    return;
                };
                if ex.window != window || ex.retries >= 6 {
                    return;
                }
                let stalled_handshake = !ex.advert_seen;
                let stalled_fulfill = !ex.requested.is_empty() && !ex.fulfill_seen;
                if !stalled_handshake && !stalled_fulfill {
                    return; // exchange complete
                }
                ex.retries += 1;
                let attempts = ex.retries;
                let requested = ex.requested.clone();
                ctx.stats.retries += 1;
                if stalled_handshake {
                    let hello = self.advert(ctx, window);
                    ctx.out.push((peer, hello));
                } else {
                    ctx.out.push((
                        peer,
                        Msg::Request {
                            window,
                            wants: requested,
                        },
                    ));
                }
                let delay = self.backoff(ctx.cfg, attempts);
                ctx.timers
                    .push((ctx.t + delay, Timer::WindowRetry { peer, window }));
            }
            Timer::XferRetry { xfer } => {
                let Some(x) = self.escrow.get(&xfer) else {
                    return; // acked
                };
                if x.parked {
                    return;
                }
                if link_up {
                    self.send_xfer(ctx, xfer);
                } else {
                    // Wait for the next contact; keep a slow timer armed
                    // so a reopened window inside a long gap still
                    // retries even without a fresh contact event.
                    let delay = ctx.cfg.rto_cap * (0.5 + self.rng.f64());
                    ctx.timers.push((ctx.t + delay, Timer::XferRetry { xfer }));
                }
            }
            // Heartbeat and Checkpoint bookkeeping live in the kernel.
            Timer::Heartbeat | Timer::Checkpoint => {}
        }
    }

    /// Snapshot volatile state (Checkpoint timer).
    pub(crate) fn checkpoint(&mut self) {
        self.ckpt_pending = self.pending.clone();
    }

    /// Crash: volatile state is lost. Returns the registry ids of
    /// pending requests that were *not* in the last checkpoint — those
    /// are gone for good and settle as unfulfilled at the horizon.
    pub(crate) fn crash(&mut self) -> Vec<u64> {
        self.alive = false;
        let lost: Vec<u64> = self
            .pending
            .iter()
            .filter(|p| !self.ckpt_pending.iter().any(|c| c.req_id == p.req_id))
            .map(|p| p.req_id)
            .collect();
        self.pending.clear();
        self.exchanges.clear();
        lost
    }

    /// Restart from the durable ledger plus the last volatile checkpoint.
    pub(crate) fn restart(&mut self) {
        self.alive = true;
        self.incarnation += 1;
        self.pending = self.ckpt_pending.clone();
        self.exchanges.clear();
    }

    /// Deadline budget: abandon pending requests older than `deadline`.
    /// Returns the abandoned registry ids.
    pub(crate) fn expire_deadline(&mut self, t: f64, deadline: f64) -> Vec<u64> {
        let mut expired = Vec::new();
        self.pending.retain(|p| {
            if t - p.created > deadline {
                expired.push(p.req_id);
                false
            } else {
                true
            }
        });
        expired
    }
}
