//! Parallel multi-trial runner for the distributed kernel.
//!
//! One kernel per trial, trials sharded over OS threads with a
//! work-stealing claim counter (the engine runner's scheme). Trial `k`
//! uses seed `base_seed + k` — the same convention as
//! [`impatience_sim::runner::run_trials`], so a net batch and an engine
//! batch on the same `base_seed` run *paired* randomness: identical
//! contact streams, sticky fills, and demand arrivals, which is what the
//! differential oracle leans on. Per-trial tallies and event streams are
//! absorbed into the caller's recorder **in trial order**, so all
//! observability output is independent of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use impatience_obs::stats::percentile_sorted;
use impatience_obs::{MemorySink, Recorder, Sink};
use impatience_sim::config::{ContactSource, SimConfig};

use crate::config::NetConfig;
use crate::error::NetError;
use crate::kernel::{run_net_trial_observed, Conservation, NetStats, NetTrialOutcome};

/// Aggregate of many independent distributed trials.
#[derive(Clone, Debug)]
pub struct NetAggregate {
    /// Number of trials.
    pub trials: usize,
    /// Post-warm-up average observed gain rate, one entry per trial.
    pub rates: Vec<f64>,
    /// Mean of `rates`.
    pub mean_rate: f64,
    /// 5th percentile of `rates` (nearest rank).
    pub p5_rate: f64,
    /// 95th percentile of `rates` (nearest rank).
    pub p95_rate: f64,
    /// Transport/protocol counters summed over trials.
    pub stats: NetStats,
    /// Conservation terms summed over trials (each trial already passed
    /// its own audit or the batch would have errored).
    pub conservation: Conservation,
    /// Trials that finished degraded (supervisor kill / event cap).
    pub degraded_trials: usize,
    /// Mean final replica count per item.
    pub mean_final_replicas: Vec<f64>,
    /// Mean requests still unfulfilled at the horizon per trial.
    pub mean_unfulfilled: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
}

/// Run `trials` distributed trials in parallel and aggregate.
///
/// The first trial error (in trial order, not completion order) aborts
/// the batch — a conservation violation on seed `base_seed + k` is
/// reported for that seed whatever the thread interleaving was.
pub fn run_net_trials(
    config: &SimConfig,
    source: &ContactSource,
    net: &NetConfig,
    trials: usize,
    base_seed: u64,
) -> Result<NetAggregate, NetError> {
    run_net_trials_observed(
        config,
        source,
        net,
        trials,
        base_seed,
        None,
        &mut Recorder::disabled(),
    )
}

/// [`run_net_trials`] with instrumentation and an explicit worker count
/// (`None` picks one per available core).
#[allow(clippy::too_many_arguments)]
pub fn run_net_trials_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    net: &NetConfig,
    trials: usize,
    base_seed: u64,
    workers: Option<usize>,
    rec: &mut Recorder<S>,
) -> Result<NetAggregate, NetError> {
    assert!(trials > 0, "need at least one trial");
    let batch_start = Instant::now();
    let workers = workers
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .max(1)
        .min(trials);

    let shape = (
        rec.delay.range(),
        rec.inter_contact.range(),
        rec.delay.buckets(),
    );
    let live = rec.is_active();
    let results = shard(trials, workers, &|k| {
        let seed = base_seed + k as u64;
        if live {
            let mut wrec = Recorder::with_shape(MemorySink::new(), shape.0, shape.1, shape.2);
            let outcome = run_net_trial_observed(config, source, net, seed, &mut wrec);
            (outcome, Some(wrec))
        } else {
            (
                run_net_trial_observed(config, source, net, seed, &mut Recorder::disabled()),
                None,
            )
        }
    });

    // Trial-order merge: recorder state stays worker-count independent,
    // and the first error reported is the lowest-seed one.
    let mut outcomes: Vec<NetTrialOutcome> = Vec::with_capacity(trials);
    for (outcome, wrec) in results {
        let outcome = outcome?;
        if let Some(wrec) = wrec {
            rec.absorb(&wrec);
            if S::WANTS_EVENTS {
                for event in &wrec.into_sink().events {
                    rec.sink_mut().record(event);
                }
            }
        }
        outcomes.push(outcome);
    }

    let warmup = config.warmup_fraction;
    let rates: Vec<f64> = outcomes
        .iter()
        .map(|o| o.metrics.average_observed_rate(warmup))
        .collect();
    let mean_rate = rates.iter().sum::<f64>() / trials as f64;
    let mut sorted = rates.clone();
    sorted.sort_by(f64::total_cmp);

    let mut stats = NetStats::default();
    let mut conservation = Conservation::default();
    let mut degraded_trials = 0;
    let items = outcomes[0].final_replicas.len();
    let mut mean_final_replicas = vec![0.0; items];
    let mut unfulfilled = 0.0;
    for o in &outcomes {
        stats.merge(&o.stats);
        conservation.minted += o.conservation.minted;
        conservation.executed += o.conservation.executed;
        conservation.discarded += o.conservation.discarded;
        conservation.pooled += o.conservation.pooled;
        conservation.escrowed += o.conservation.escrowed;
        degraded_trials += usize::from(o.degraded);
        for (acc, &r) in mean_final_replicas.iter_mut().zip(&o.final_replicas) {
            *acc += r as f64 / trials as f64;
        }
        unfulfilled += o.metrics.unfulfilled as f64;
    }

    Ok(NetAggregate {
        trials,
        mean_rate,
        p5_rate: percentile_sorted(&sorted, 0.05),
        p95_rate: percentile_sorted(&sorted, 0.95),
        rates,
        stats,
        conservation,
        degraded_trials,
        mean_final_replicas,
        mean_unfulfilled: unfulfilled / trials as f64,
        workers,
        wall_s: batch_start.elapsed().as_secs_f64(),
    })
}

/// Work-stealing shard: idle workers claim the next trial index; results
/// return in trial order.
fn shard<T: Send>(trials: usize, workers: usize, job: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= trials {
                        break;
                    }
                    local.push((k, job(k)));
                }
                local
            }));
        }
        let mut all: Vec<(usize, T)> = Vec::with_capacity(trials);
        for handle in handles {
            all.extend(handle.join().expect("net trial thread panicked"));
        }
        all.sort_by_key(|(k, _)| *k);
        all.into_iter().map(|(_, r)| r).collect()
    })
}
