//! The wire codec: the five-message QCR protocol as length-checked,
//! checksummed little-endian frames.
//!
//! Frame layout (mirroring the `sim::contact_bin` idiom: fixed magic,
//! explicit little-endian fields, typed decode errors with truncation
//! blame):
//!
//! ```text
//! [ MAGIC (1) | kind (1) | payload (kind-specific) | FNV-1a32 (4) ]
//! ```
//!
//! The trailing checksum covers everything before it, so a corrupted
//! frame — any single bit flip, anywhere — decodes to a typed
//! [`WireError`] instead of a silently wrong message. Vectors are
//! encoded as a `u32` count followed by the elements; counts are bounded
//! by [`MAX_LIST`] so a corrupt length can never drive an allocation.

use std::fmt;

/// Frame marker; bump on any layout change.
pub const MAGIC: u8 = 0xA9;

/// Upper bound on encoded list lengths (items, wants, grants, pools).
pub const MAX_LIST: u32 = 1 << 20;

/// Message kind tags (wire byte 1).
const KIND_ADVERT: u8 = 1;
const KIND_REQUEST: u8 = 2;
const KIND_FULFILL: u8 = 3;
const KIND_HANDOFF: u8 = 4;
const KIND_ACK: u8 = 5;

/// The typed message set of the distributed QCR protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Contact-window hello: what the sender caches and which mandates
    /// it holds. Drives query counting, fulfillment, mandate execution
    /// and routing at the receiver.
    CacheAdvert {
        /// Contact-window id the advert belongs to.
        window: u64,
        /// Items in the sender's cache (sorted).
        items: Vec<u32>,
        /// The sender's mandate pool as (item, count) pairs (sorted).
        mandates: Vec<(u32, u64)>,
    },
    /// Ask the peer to serve the listed items this window.
    Request {
        /// Contact-window id.
        window: u64,
        /// Items the sender wants (sorted, deduplicated).
        wants: Vec<u32>,
    },
    /// Serve content: every listed item was in the sender's cache when
    /// the request was processed.
    Fulfill {
        /// Contact-window id.
        window: u64,
        /// Items granted.
        grants: Vec<u32>,
    },
    /// Two-phase mandate transfer (phase 1). With `execute` false this
    /// hands custody of `count` mandates to the receiver (§5.3 routing);
    /// with `execute` true it offers one mandated copy of `item` for the
    /// receiver to store. Idempotent under redelivery: the receiver
    /// dedups on `xfer`.
    MandateHandoff {
        /// Globally unique transfer id.
        xfer: u64,
        /// The mandated item.
        item: u32,
        /// Mandates in escrow for this transfer.
        count: u64,
        /// Execute (store a copy) instead of transferring custody.
        execute: bool,
    },
    /// Two-phase mandate transfer (phase 2): how many of the transfer's
    /// mandates the receiver consumed. Re-sent verbatim on duplicate
    /// handoffs.
    MandateAck {
        /// The transfer being acknowledged.
        xfer: u64,
        /// Mandates consumed at the receiver (`count` for applied
        /// custody transfers, 0 or 1 for executions).
        consumed: u64,
    },
}

impl Msg {
    /// Stable kind name for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::CacheAdvert { .. } => "cache_advert",
            Msg::Request { .. } => "request",
            Msg::Fulfill { .. } => "fulfill",
            Msg::MandateHandoff { .. } => "mandate_handoff",
            Msg::MandateAck { .. } => "mandate_ack",
        }
    }

    /// Encode the message as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        buf.push(MAGIC);
        match self {
            Msg::CacheAdvert {
                window,
                items,
                mandates,
            } => {
                buf.push(KIND_ADVERT);
                buf.extend_from_slice(&window.to_le_bytes());
                put_u32_list(&mut buf, items);
                buf.extend_from_slice(&(mandates.len() as u32).to_le_bytes());
                for &(item, count) in mandates {
                    buf.extend_from_slice(&item.to_le_bytes());
                    buf.extend_from_slice(&count.to_le_bytes());
                }
            }
            Msg::Request { window, wants } => {
                buf.push(KIND_REQUEST);
                buf.extend_from_slice(&window.to_le_bytes());
                put_u32_list(&mut buf, wants);
            }
            Msg::Fulfill { window, grants } => {
                buf.push(KIND_FULFILL);
                buf.extend_from_slice(&window.to_le_bytes());
                put_u32_list(&mut buf, grants);
            }
            Msg::MandateHandoff {
                xfer,
                item,
                count,
                execute,
            } => {
                buf.push(KIND_HANDOFF);
                buf.extend_from_slice(&xfer.to_le_bytes());
                buf.extend_from_slice(&item.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
                buf.push(u8::from(*execute));
            }
            Msg::MandateAck { xfer, consumed } => {
                buf.push(KIND_ACK);
                buf.extend_from_slice(&xfer.to_le_bytes());
                buf.extend_from_slice(&consumed.to_le_bytes());
            }
        }
        let sum = fnv1a32(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decode one frame. Truncated input is blamed as
    /// [`WireError::Truncated`] with the byte counts; any corruption the
    /// structure checks miss is caught by the trailing checksum.
    pub fn decode(buf: &[u8]) -> Result<Msg, WireError> {
        if buf.len() < 6 {
            return Err(WireError::Truncated {
                need: 6,
                have: buf.len(),
            });
        }
        if buf[0] != MAGIC {
            return Err(WireError::BadMagic { found: buf[0] });
        }
        let kind = buf[1];
        let mut cur = Cursor {
            buf,
            pos: 2,
            // The last 4 bytes are the checksum, not payload.
            end: buf.len() - 4,
        };
        let msg = match kind {
            KIND_ADVERT => {
                let window = cur.u64()?;
                let items = cur.u32_list()?;
                let n = cur.list_len()?;
                let mut mandates = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let item = cur.u32()?;
                    let count = cur.u64()?;
                    mandates.push((item, count));
                }
                Msg::CacheAdvert {
                    window,
                    items,
                    mandates,
                }
            }
            KIND_REQUEST => Msg::Request {
                window: cur.u64()?,
                wants: cur.u32_list()?,
            },
            KIND_FULFILL => Msg::Fulfill {
                window: cur.u64()?,
                grants: cur.u32_list()?,
            },
            KIND_HANDOFF => Msg::MandateHandoff {
                xfer: cur.u64()?,
                item: cur.u32()?,
                count: cur.u64()?,
                execute: cur.u8()? != 0,
            },
            KIND_ACK => Msg::MandateAck {
                xfer: cur.u64()?,
                consumed: cur.u64()?,
            },
            other => return Err(WireError::UnknownKind { kind: other }),
        };
        if cur.pos != cur.end {
            return Err(WireError::TrailingBytes {
                extra: cur.end - cur.pos,
            });
        }
        let expected = fnv1a32(&buf[..cur.end]);
        let found = u32::from_le_bytes(buf[cur.end..].try_into().expect("4 bytes"));
        if expected != found {
            return Err(WireError::ChecksumMismatch { expected, found });
        }
        Ok(msg)
    }
}

fn put_u32_list(buf: &mut Vec<u8>, xs: &[u32]) {
    buf.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// FNV-1a, 32-bit. Any single-bit flip in the covered bytes changes the
/// hash: each step xors the byte into the state and multiplies by an odd
/// prime (a bijection), so differing states never re-converge.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    end: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.pos + n > self.end {
            return Err(WireError::Truncated {
                need: self.pos + n + 4,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn list_len(&mut self) -> Result<u32, WireError> {
        let n = self.u32()?;
        if n > MAX_LIST {
            return Err(WireError::Oversized {
                len: n,
                max: MAX_LIST,
            });
        }
        Ok(n)
    }

    fn u32_list(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.list_len()?;
        let mut xs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            xs.push(self.u32()?);
        }
        Ok(xs)
    }
}

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs at least.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The first byte is not [`MAGIC`].
    BadMagic {
        /// The byte found instead.
        found: u8,
    },
    /// The kind tag names no known message.
    UnknownKind {
        /// The offending tag.
        kind: u8,
    },
    /// A list length exceeds [`MAX_LIST`].
    Oversized {
        /// The declared length.
        len: u32,
        /// The allowed maximum.
        max: u32,
    },
    /// Payload bytes remain after the message parsed.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// The trailing FNV-1a checksum does not match the frame.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        expected: u32,
        /// Checksum carried by the frame.
        found: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need >= {need} bytes, have {have}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic byte {found:#04x} (expected {MAGIC:#04x})")
            }
            WireError::UnknownKind { kind } => write!(f, "unknown message kind {kind}"),
            WireError::Oversized { len, max } => {
                write!(f, "list length {len} exceeds the {max} cap")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the message")
            }
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: frame carries {found:#010x}, bytes hash to {expected:#010x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::CacheAdvert {
                window: 7,
                items: vec![0, 3, 9],
                mandates: vec![(3, 2), (11, 20)],
            },
            Msg::CacheAdvert {
                window: 0,
                items: vec![],
                mandates: vec![],
            },
            Msg::Request {
                window: u64::MAX,
                wants: vec![1],
            },
            Msg::Fulfill {
                window: 42,
                grants: vec![5, 6],
            },
            Msg::MandateHandoff {
                xfer: 99,
                item: 4,
                count: 3,
                execute: false,
            },
            Msg::MandateHandoff {
                xfer: 100,
                item: 4,
                count: 1,
                execute: true,
            },
            Msg::MandateAck {
                xfer: 99,
                consumed: 3,
            },
        ]
    }

    #[test]
    fn round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(Msg::decode(&bytes).unwrap(), msg, "{}", msg.kind());
        }
    }

    #[test]
    fn every_truncation_errors() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Msg::decode(&bytes[..cut]).is_err(),
                    "{} truncated to {cut} of {} decoded",
                    msg.kind(),
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_errors() {
        for msg in samples() {
            let bytes = msg.encode();
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[byte] ^= 1 << bit;
                    assert!(
                        Msg::decode(&bad).is_err(),
                        "{}: flip of byte {byte} bit {bit} decoded",
                        msg.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_list_is_rejected_without_allocating() {
        let mut bytes = vec![MAGIC, KIND_REQUEST];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let sum = fnv1a32(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Msg::decode(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::MandateAck {
            xfer: 1,
            consumed: 0,
        }
        .encode();
        let pos = bytes.len() - 4;
        bytes.insert(pos, 0);
        assert!(matches!(
            Msg::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }
}
