//! Typed error taxonomy of the distributed runtime.
//!
//! Extends the PR 3 per-class CLI exit codes: every `NetError` maps to
//! exit code **12** in `impatience netrun`. The variants separate what
//! went wrong at the *protocol* layer (a link that was never up, a
//! contact window that closed before the peers exchanged a single
//! message, a transfer that exhausted its retry budget) from the one
//! failure that is always a bug rather than weather: a violated mandate
//! conservation invariant at quiesce.

use std::fmt;

use crate::wire::WireError;

/// Everything that can go wrong inside the distributed QCR runtime.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A message was submitted for a link that is not up (or to a node
    /// outside the population). In normal operation the kernel counts
    /// and drops these; the error surfaces when a caller demands strict
    /// transport semantics.
    TransportClosed {
        /// Sending node.
        from: u32,
        /// Intended receiver.
        to: u32,
        /// Simulation time of the attempt.
        at: f64,
    },
    /// A contact window closed before the two endpoints completed even
    /// one advert exchange, while at least one of them had protocol
    /// state pending for the other (strict mode only; otherwise counted
    /// and retried at the next contact).
    HandshakeTimeout {
        /// The node reporting the failed exchange.
        node: u32,
        /// The peer it never heard from.
        peer: u32,
        /// The contact-window id.
        window: u64,
    },
    /// A two-phase mandate transfer exhausted its retry budget without
    /// an acknowledgment. The mandates stay escrowed (conservation
    /// holds); strict mode turns the parked transfer into this error.
    AckTimeout {
        /// The escrow holder.
        node: u32,
        /// The unresponsive peer.
        peer: u32,
        /// The transfer id.
        xfer: u64,
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// The quiesce-time mandate audit failed: minted mandates are not
    /// exactly accounted for by executions, discards, node pools, and
    /// in-flight escrow. Always a protocol bug, never injected weather.
    ConservationViolation {
        /// Mandates minted over the trial.
        minted: u64,
        /// Mandates consumed by producing (or rejecting) a copy.
        executed: u64,
        /// Mandates destroyed at pool-cap clamps.
        discarded: u64,
        /// Mandates sitting in node pools at quiesce.
        pooled: u64,
        /// Mandates still escrowed in unapplied transfers at quiesce.
        escrowed: u64,
    },
    /// A wire frame failed to decode.
    Codec(WireError),
    /// The run was configured with parameters the runtime cannot honor.
    Config(String),
}

impl NetError {
    /// Stable machine-readable class name (manifest / log field).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::TransportClosed { .. } => "transport_closed",
            NetError::HandshakeTimeout { .. } => "handshake_timeout",
            NetError::AckTimeout { .. } => "ack_timeout",
            NetError::ConservationViolation { .. } => "conservation_violation",
            NetError::Codec(_) => "codec",
            NetError::Config(_) => "config",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::TransportClosed { from, to, at } => {
                write!(f, "transport closed: {from} -> {to} at t={at}")
            }
            NetError::HandshakeTimeout { node, peer, window } => write!(
                f,
                "handshake timeout: node {node} never heard from {peer} in window {window}"
            ),
            NetError::AckTimeout {
                node,
                peer,
                xfer,
                attempts,
            } => write!(
                f,
                "ack timeout: transfer {xfer} from {node} to {peer} unacked after {attempts} attempts"
            ),
            NetError::ConservationViolation {
                minted,
                executed,
                discarded,
                pooled,
                escrowed,
            } => write!(
                f,
                "mandate conservation violated: minted {minted} != executed {executed} \
                 + discarded {discarded} + pooled {pooled} + escrowed {escrowed} \
                 (= {})",
                executed + discarded + pooled + escrowed
            ),
            NetError::Codec(e) => write!(f, "wire codec: {e}"),
            NetError::Config(msg) => write!(f, "net config: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind_cover_every_variant() {
        let cases: Vec<NetError> = vec![
            NetError::TransportClosed {
                from: 1,
                to: 2,
                at: 3.5,
            },
            NetError::HandshakeTimeout {
                node: 0,
                peer: 9,
                window: 77,
            },
            NetError::AckTimeout {
                node: 4,
                peer: 5,
                xfer: 12,
                attempts: 64,
            },
            NetError::ConservationViolation {
                minted: 10,
                executed: 4,
                discarded: 1,
                pooled: 3,
                escrowed: 1,
            },
            NetError::Codec(WireError::Truncated { need: 6, have: 2 }),
            NetError::Config("bad".into()),
        ];
        let kinds: Vec<&str> = cases.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "transport_closed",
                "handshake_timeout",
                "ack_timeout",
                "conservation_violation",
                "codec",
                "config"
            ]
        );
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conservation_message_shows_the_imbalance() {
        let e = NetError::ConservationViolation {
            minted: 10,
            executed: 4,
            discarded: 1,
            pooled: 3,
            escrowed: 1,
        };
        let s = e.to_string();
        assert!(s.contains("minted 10"), "{s}");
        assert!(s.contains("= 9"), "{s}");
    }
}
