//! Fault-tolerant distributed QCR runtime.
//!
//! The in-process engine (`impatience-sim`) fulfills requests and routes
//! mandates by mutating shared state at each contact — a useful fiction.
//! This crate removes it: every node is an independent task that knows
//! only what the *typed message protocol* told it, links exist only
//! while the [`ContactSource`](impatience_sim::config::ContactSource)
//! says two nodes are in range, and the transport loses, duplicates,
//! reorders, and delays frames under an injected fault family seeded
//! with the `sim::faults` discipline. Nodes crash and restart under the
//! same churn schedule the engine uses to suppress contacts, recovering
//! durable mandate ledgers plus a periodic checkpoint of volatile state.
//!
//! The protocol (five frames: `CacheAdvert`, `Request`, `Fulfill`,
//! `MandateHandoff`, `MandateAck`) implements QCR (paper §5) end to end:
//! query counting per advert, ψ-scaled minting at the requester, and
//! §5.3 mandate routing — with every mandate movement a *two-phase
//! acked transfer* (escrow at the sender, idempotent dedup at the
//! receiver), so the quiesce-time conservation audit
//! ([`Conservation`]) holds exactly under any combination of message
//! loss and mid-handoff crashes. A heartbeat supervisor condemns wedged
//! nodes and degrades the run instead of hanging it.
//!
//! Everything is deterministic by `(config, source, net, seed)` and
//! independent of worker count; `impatience netrun --verify` runs the
//! same seeds through this runtime and the engine and asserts welfare
//! agreement within the differential oracle's CLT budget.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod kernel;
mod node;
pub mod runner;
pub mod wire;

pub use config::{ChaosEvent, ChaosKind, NetConfig};
pub use error::NetError;
pub use kernel::{run_net_trial, run_net_trial_observed, Conservation, NetStats, NetTrialOutcome};
pub use runner::{run_net_trials, run_net_trials_observed, NetAggregate};
pub use wire::{Msg, WireError};
