//! The deterministic discrete-event kernel hosting the node tasks.
//!
//! There is no wall clock and no thread scheduler anywhere in this
//! crate: one kernel runs one trial on one thread, driving independent
//! node state machines (`node::Node`) through a single
//! time-ordered event queue — message deliveries, link closures, node
//! timers, churn toggles, chaos injections, and supervisor sweeps. All
//! nondeterminism comes from seeded RNG streams (the trial RNG for
//! demand, one forked stream per node, and the PR 3 fault-seed
//! discipline for transport chaos), so a trial is a pure function of
//! `(config, source, net, seed)` — the same property the in-process
//! engine has, which is what makes differential verification against it
//! meaningful.
//!
//! The transport is an *unreliable link* abstraction: a contact from the
//! [`ContactSource`] opens a link for [`NetConfig::window`] minutes;
//! messages submitted on an open link arrive after a delay unless the
//! message-fault family ([`MsgFaults`]) loses, duplicates, or reorders
//! them; messages in flight when the link closes are dropped. Every
//! retry, timeout, and backoff in the node layer exists because of this
//! transport.

use std::borrow::Cow;
use std::collections::{BTreeMap, BinaryHeap};

use impatience_core::rng::{AliasTable, Xoshiro256};
use impatience_obs::{Recorder, Sink};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::contact_bin::BatchedContacts;
use impatience_sim::faults::{FaultState, MsgFaults, MSG_STREAM_ID};
use impatience_sim::policy::reaction_scale;
use impatience_sim::state::SimState;
use impatience_sim::Metrics;

use crate::config::{ChaosKind, NetConfig};
use crate::error::NetError;
use crate::node::{Ctx, Node, Timer};
use crate::wire::Msg;

/// Stream id for the per-node RNG forks (continues the
/// `sim::faults` stream-id family).
const NODE_STREAM_ID: u64 = 0xFA17_0005_0DE5_EED5;

/// Anti-wedge backstop when [`NetConfig::max_events`] is 0: no realistic
/// trial comes near it, and a protocol bug that loops cannot hang the
/// process — the run degrades instead.
const AUTO_EVENT_CAP: u64 = 20_000_000;

/// Transport/protocol counters of one trial (or, merged, of a batch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames submitted to an open link (duplicates included).
    pub msgs_sent: u64,
    /// Frames delivered to a live node.
    pub msgs_delivered: u64,
    /// Frames destroyed by injected loss.
    pub msgs_lost: u64,
    /// Extra copies injected by duplication faults.
    pub msgs_duplicated: u64,
    /// Sends or deliveries on a closed link / to a dead node.
    pub transport_closed: u64,
    /// Protocol retransmissions (adverts, requests, handoffs).
    pub retries: u64,
    /// Transfers that exhausted their retry budget and parked.
    pub ack_timeouts: u64,
    /// Windows that closed without completing an advert exchange.
    pub handshake_timeouts: u64,
    /// Two-phase mandate transfers initiated.
    pub handoffs_started: u64,
    /// Custody handoffs applied at the receiver.
    pub handoffs_applied: u64,
    /// Acks received back at the escrow holder.
    pub acks_received: u64,
    /// Mandated copies actually written by an execute transfer.
    pub execs_applied: u64,
    /// Node crashes (churn schedule + chaos kills).
    pub crashes: u64,
    /// Node restarts from checkpoint.
    pub restarts: u64,
    /// Nodes condemned by the supervisor's heartbeat timeout.
    pub stalls: u64,
    /// Requests abandoned by the deadline budget.
    pub requests_expired: u64,
    /// Heartbeats observed by the supervisor.
    pub heartbeats: u64,
}

impl NetStats {
    /// Accumulate another trial's counters.
    pub fn merge(&mut self, o: &NetStats) {
        self.msgs_sent += o.msgs_sent;
        self.msgs_delivered += o.msgs_delivered;
        self.msgs_lost += o.msgs_lost;
        self.msgs_duplicated += o.msgs_duplicated;
        self.transport_closed += o.transport_closed;
        self.retries += o.retries;
        self.ack_timeouts += o.ack_timeouts;
        self.handshake_timeouts += o.handshake_timeouts;
        self.handoffs_started += o.handoffs_started;
        self.handoffs_applied += o.handoffs_applied;
        self.acks_received += o.acks_received;
        self.execs_applied += o.execs_applied;
        self.crashes += o.crashes;
        self.restarts += o.restarts;
        self.stalls += o.stalls;
        self.requests_expired += o.requests_expired;
        self.heartbeats += o.heartbeats;
    }
}

/// The quiesce-time mandate audit (exact `u64` arithmetic).
///
/// Invariant: `minted == executed + discarded + pooled + escrowed`.
/// Every mandate that entered a pool is either consumed by a (possibly
/// rejected) execution, destroyed at a documented cap clamp, sitting in
/// some node's pool, or escrowed in a transfer whose ack never arrived.
/// A crash mid-handoff moves mandates between these buckets but can
/// never change the sum — that is the point of the two-phase protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Conservation {
    /// Mandates minted into pools over the trial.
    pub minted: u64,
    /// Mandates consumed by execute transfers.
    pub executed: u64,
    /// Mandates destroyed at pool-cap clamps.
    pub discarded: u64,
    /// Mandates in node pools at quiesce.
    pub pooled: u64,
    /// Mandates outstanding in unacked escrow at quiesce.
    pub escrowed: u64,
}

impl Conservation {
    /// Does the invariant hold?
    pub fn holds(&self) -> bool {
        self.minted == self.executed + self.discarded + self.pooled + self.escrowed
    }
}

/// Running mint/execute/discard tallies (the first three terms of
/// [`Conservation`]; the pool and escrow terms are read at quiesce).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Ledger {
    pub minted: u64,
    pub executed: u64,
    pub discarded: u64,
}

/// Kernel-side record of one request — the omniscient "user" ledger
/// that books each request's welfare exactly once, whatever the node
/// tasks crash into.
#[derive(Clone, Copy, Debug)]
pub struct ReqRecord {
    /// Arrival time.
    pub created: f64,
    /// Origin node.
    pub node: u32,
    /// Requested item.
    pub item: u32,
    /// Welfare booked by a fulfillment.
    pub fulfilled: bool,
    /// Abandoned (crash without checkpoint, dead origin, or deadline).
    pub lost: bool,
    /// Settlement already recorded (deadline expiry).
    pub settled: bool,
}

/// Result of one distributed trial.
#[derive(Clone, Debug)]
pub struct NetTrialOutcome {
    /// The same welfare accounting the engine produces.
    pub metrics: Metrics,
    /// Replica counts at quiesce.
    pub final_replicas: Vec<u32>,
    /// Transport and protocol counters.
    pub stats: NetStats,
    /// The (passing) mandate audit.
    pub conservation: Conservation,
    /// The run survived but lost capacity (supervisor kill or event-cap
    /// breach) — `impatience netrun` exits 9 on this.
    pub degraded: bool,
}

/// Kernel events. Ordered by time with a monotonic sequence tiebreak,
/// so the queue order is deterministic even at equal times.
#[derive(Clone, Debug)]
enum Ev {
    /// A frame arrives at `to` (decoded at delivery).
    Deliver { to: u32, from: u32, bytes: Vec<u8> },
    /// A contact window closes.
    LinkDown { a: u32, b: u32, window: u64 },
    /// A node-local timer fires (ignored if the incarnation moved on).
    Timer {
        node: u32,
        incarnation: u32,
        timer: Timer,
    },
    /// Churn-schedule crash.
    ChurnDown { node: u32 },
    /// Churn-schedule restart.
    ChurnUp { node: u32 },
    /// A scheduled chaos injection (index into `NetConfig::chaos`).
    Chaos { idx: usize },
    /// Supervisor sweep over heartbeat ages.
    Supervise,
    /// Deadline-budget sweep over outstanding requests.
    DeadlineSweep,
}

struct QEntry {
    t: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, o: &Self) -> bool {
        self.t == o.t && self.seq == o.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for QEntry {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        o.t.total_cmp(&self.t).then_with(|| o.seq.cmp(&self.seq))
    }
}

struct Queue {
    heap: BinaryHeap<QEntry>,
    seq: u64,
}

impl Queue {
    fn push(&mut self, t: f64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QEntry { t, seq, ev });
    }
}

#[derive(Clone, Copy, Debug)]
struct Link {
    up_until: f64,
    window: u64,
}

/// The unreliable in-process link layer.
struct Transport {
    links: BTreeMap<(u32, u32), Link>,
    /// Active message-fault family (None ⇒ clean transport, and the
    /// fault RNG is never consumed — bit-identical to no config at all).
    faults: Option<MsgFaults>,
    fault_rng: Xoshiro256,
    delay: f64,
    strict: bool,
}

fn link_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

impl Transport {
    fn link_up(&self, t: f64, a: u32, b: u32) -> bool {
        self.links
            .get(&link_key(a, b))
            .is_some_and(|l| t <= l.up_until)
    }

    fn open(&mut self, t: f64, a: u32, b: u32, window: u64, until: f64) {
        self.links.insert(
            (a.min(b), a.max(b)),
            Link {
                up_until: until.max(t),
                window,
            },
        );
    }

    /// Close the link if `window` is still its current window. Returns
    /// whether the link actually closed.
    fn close(&mut self, a: u32, b: u32, window: u64) -> bool {
        let key = link_key(a, b);
        if self.links.get(&key).is_some_and(|l| l.window == window) {
            self.links.remove(&key);
            true
        } else {
            false
        }
    }

    /// Submit a frame. Applies loss/duplication/reordering faults and
    /// schedules the surviving copies as [`Ev::Deliver`].
    #[allow(clippy::too_many_arguments)]
    fn send<S: Sink>(
        &mut self,
        t: f64,
        from: u32,
        to: u32,
        msg: &Msg,
        q: &mut Queue,
        stats: &mut NetStats,
        rec: &mut Recorder<S>,
        fatal: &mut Option<NetError>,
    ) {
        if !self.link_up(t, from, to) {
            stats.transport_closed += 1;
            if self.strict && fatal.is_none() {
                *fatal = Some(NetError::TransportClosed { from, to, at: t });
            }
            return;
        }
        stats.msgs_sent += 1;
        let mut copies = 1u32;
        let extra = |rng: &mut Xoshiro256, m: &MsgFaults, delay: f64| {
            if m.reorder_window > 0 {
                rng.f64() * m.reorder_window as f64 * delay
            } else {
                0.0
            }
        };
        if let Some(m) = self.faults {
            if m.loss_p > 0.0 && self.fault_rng.bernoulli(m.loss_p) {
                stats.msgs_lost += 1;
                rec.fault(t, "net_msg_loss", from, to);
                return;
            }
            if m.dup_p > 0.0 && self.fault_rng.bernoulli(m.dup_p) {
                copies = 2;
                stats.msgs_duplicated += 1;
                rec.fault(t, "net_msg_dup", from, to);
            }
        }
        let bytes = msg.encode();
        for _ in 0..copies {
            let jitter = match self.faults {
                Some(m) => extra(&mut self.fault_rng, &m, self.delay),
                None => 0.0,
            };
            q.push(
                t + self.delay + jitter,
                Ev::Deliver {
                    to,
                    from,
                    bytes: bytes.clone(),
                },
            );
        }
    }
}

/// Run one distributed trial (uninstrumented).
pub fn run_net_trial(
    config: &SimConfig,
    source: &ContactSource,
    net: &NetConfig,
    seed: u64,
) -> Result<NetTrialOutcome, NetError> {
    run_net_trial_observed(config, source, net, seed, &mut Recorder::disabled())
}

/// Run one distributed trial with instrumentation.
///
/// Deterministic by `(config, source, net, seed)`: the trial RNG seeds
/// the contact stream and sticky fill in the engine's order, per-node
/// RNGs fork off it, and transport chaos runs on the PR 3 fault-seed
/// discipline — so results are independent of how many worker threads a
/// batch uses.
#[allow(clippy::too_many_lines)]
pub fn run_net_trial_observed<S: Sink>(
    config: &SimConfig,
    source: &ContactSource,
    net: &NetConfig,
    seed: u64,
    rec: &mut Recorder<S>,
) -> Result<NetTrialOutcome, NetError> {
    net.validate()?;
    let wall_start = rec.is_active().then(std::time::Instant::now);
    rec.trial_start();

    // --- mirror the engine's trial initialization order exactly ---
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut contacts = BatchedContacts::new(source.stream(&mut rng));
    let n_nodes = contacts.nodes();
    let duration = contacts.duration();
    let config: Cow<'_, SimConfig> = if config.profile.nodes() == config.clients(n_nodes) {
        Cow::Borrowed(config)
    } else {
        Cow::Owned(config.for_nodes(n_nodes))
    };
    config.validate(n_nodes);

    let servers = config.dedicated_servers.unwrap_or(n_nodes);
    let client_base = if config.dedicated_servers.is_some() {
        servers
    } else {
        0
    };
    let mut state = match config.dedicated_servers {
        Some(k) => SimState::new_dedicated(n_nodes, k, config.items, config.rho),
        None => SimState::new(n_nodes, config.items, config.rho),
    };
    state.set_eviction(config.eviction);
    state.seed_sticky_and_fill(&mut rng);

    let utility = config.utility.clone();
    let protocol = config
        .protocol_utility
        .clone()
        .unwrap_or_else(|| config.utility.clone());
    let mu_ref = {
        let m = source.mean_rate();
        if m > 0.0 {
            m
        } else {
            1.0
        }
    };
    let scale = reaction_scale(
        &net.qcr,
        protocol.as_ref(),
        servers,
        mu_ref,
        config.items,
        config.rho,
    );

    if let Some(f) = &config.faults {
        assert!(
            !f.panic_on_seeds.contains(&seed),
            "fault injection: chaos panic for trial seed {seed}"
        );
    }
    // The full fault config drives contact admission and cache faults —
    // the *same* streams the engine consumes, so contacts involving
    // churned-down nodes vanish in both runtimes at the same instants.
    let mut faults = config
        .faults
        .as_ref()
        .filter(|f| f.is_active())
        .map(|f| FaultState::new(f, n_nodes, servers, duration, seed));
    // Churn additionally crashes/restarts the node *tasks* here (the
    // engine only suppresses contacts): same schedule, same seeds.
    let churn_toggles = config
        .faults
        .as_ref()
        .map(|f| f.churn_schedule(n_nodes, duration, seed))
        .unwrap_or_default();
    let msg_faults = config
        .faults
        .as_ref()
        .and_then(|f| f.msg)
        .filter(MsgFaults::is_active);
    let fault_seed = config.faults.as_ref().map_or(0, |f| f.seed);
    let fault_rng =
        Xoshiro256::seed_from_u64(seed ^ fault_seed.rotate_left(23)).split(MSG_STREAM_ID);

    let mut metrics = Metrics::new(duration, config.bin);
    let mut shifts = config.demand_shifts.iter().peekable();
    let mut current_demand = &config.demand;
    let mut total_rate = current_demand.total();
    let mut item_sampler = (total_rate > 0.0).then(|| AliasTable::new(current_demand.rates()));
    let mut next_request = if total_rate > 0.0 {
        rng.exp(total_rate)
    } else {
        f64::INFINITY
    };

    // --- node tasks ---
    let mut nodes: Vec<Node> = (0..n_nodes)
        .map(|i| Node::new(i as u32, rng.split(NODE_STREAM_ID ^ i as u64)))
        .collect();
    let mut q = Queue {
        heap: BinaryHeap::new(),
        seq: 0,
    };
    for (tt, node, up) in &churn_toggles {
        q.push(
            *tt,
            if *up {
                Ev::ChurnUp { node: *node }
            } else {
                Ev::ChurnDown { node: *node }
            },
        );
    }
    for (idx, c) in net.chaos.iter().enumerate() {
        if (c.node as usize) < n_nodes {
            q.push(c.t, Ev::Chaos { idx });
        }
    }
    q.push(net.heartbeat_every, Ev::Supervise);
    if let Some(d) = net.deadline {
        q.push(d, Ev::DeadlineSweep);
    }
    for node in nodes.iter_mut() {
        let hb = net.heartbeat_every * (0.5 + 0.5 * node.rng.f64());
        let ck = net.checkpoint_every * (0.5 + 0.5 * node.rng.f64());
        q.push(
            hb,
            Ev::Timer {
                node: node.id,
                incarnation: 0,
                timer: Timer::Heartbeat,
            },
        );
        q.push(
            ck,
            Ev::Timer {
                node: node.id,
                incarnation: 0,
                timer: Timer::Checkpoint,
            },
        );
    }

    let mut transport = Transport {
        links: BTreeMap::new(),
        faults: msg_faults,
        fault_rng,
        delay: net.msg_delay,
        strict: net.strict,
    };
    let mut stats = NetStats::default();
    let mut ledger = Ledger::default();
    let mut registry: Vec<ReqRecord> = Vec::new();
    let mut last_seen = vec![0.0f64; n_nodes];
    let mut condemned = vec![false; n_nodes];
    let mut next_window: u64 = 0;
    let mut next_xfer: u64 = 0;
    let mut fatal: Option<NetError> = None;
    let mut degraded = false;
    let mut out: Vec<(u32, Msg)> = Vec::new();
    let mut timers: Vec<(f64, Timer)> = Vec::new();
    let event_cap = if net.max_events > 0 {
        net.max_events
    } else {
        AUTO_EVENT_CAP
    };
    let mut events: u64 = 0;

    // Builds a `Ctx` and calls one node handler, then drains its
    // outgoing messages through the transport and arms its timers.
    macro_rules! dispatch {
        ($t:expr, $node:expr, $call:ident ( $($arg:expr),* )) => {{
            let id = $node as usize;
            {
                let mut c = Ctx {
                    t: $t,
                    state: &mut state,
                    metrics: &mut metrics,
                    stats: &mut stats,
                    ledger: &mut ledger,
                    registry: &mut registry,
                    out: &mut out,
                    timers: &mut timers,
                    rec: &mut *rec,
                    utility: utility.as_ref(),
                    protocol: protocol.as_ref(),
                    scale,
                    mu_ref,
                    cfg: net,
                    next_xfer: &mut next_xfer,
                    fatal: &mut fatal,
                };
                nodes[id].$call(&mut c, $($arg),*);
            }
            for (to, msg) in out.drain(..) {
                transport.send($t, $node, to, &msg, &mut q, &mut stats, rec, &mut fatal);
            }
            let inc = nodes[id].incarnation;
            for (ft, timer) in timers.drain(..) {
                q.push(ft, Ev::Timer { node: $node, incarnation: inc, timer });
            }
        }};
    }

    macro_rules! settle_expired {
        ($t:expr, $ids:expr) => {
            for id in $ids {
                let r = &mut registry[id as usize];
                if r.fulfilled || r.settled {
                    continue;
                }
                r.lost = true;
                r.settled = true;
                stats.requests_expired += 1;
                let age = ($t - r.created).max(f64::MIN_POSITIVE);
                let h_inf = utility.h_infinity();
                let gain = if h_inf.is_finite() {
                    h_inf
                } else {
                    utility.h(age)
                };
                metrics.record_settlement($t, gain);
                rec.unfulfilled($t, r.node, r.item, age);
            }
        };
    }

    loop {
        if let Some(e) = fatal.take() {
            return Err(e);
        }
        let next_contact_t = contacts.peek().map_or(f64::INFINITY, |e| e.time);
        let next_heap_t = q.heap.peek().map_or(f64::INFINITY, |e| e.t);
        let t = next_request.min(next_contact_t).min(next_heap_t);
        if let Some(&&(shift_t, ref rates)) = shifts.peek() {
            if shift_t <= t.min(duration) {
                shifts.next();
                current_demand = rates;
                total_rate = current_demand.total();
                item_sampler = (total_rate > 0.0).then(|| AliasTable::new(current_demand.rates()));
                next_request = if total_rate > 0.0 {
                    shift_t + rng.exp(total_rate)
                } else {
                    f64::INFINITY
                };
                continue;
            }
        }
        if !t.is_finite() || t > duration {
            break;
        }
        events += 1;
        if events > event_cap {
            degraded = true;
            rec.fault(t, "net_event_cap", 0, 0);
            break;
        }
        if let Some(fs) = faults.as_mut() {
            fs.apply_cache_faults(t, &mut state, &mut metrics, rec);
        }

        if next_request <= next_contact_t && next_request <= next_heap_t {
            // --- request arrival (the engine's demand process verbatim) ---
            let sampler = item_sampler.as_ref().expect("arrivals imply demand");
            let item = sampler.sample(&mut rng) as u32;
            let origin = client_base + config.profile.sample_origin(item as usize, &mut rng);
            metrics.requests_created += 1;
            rec.request(next_request, origin as u32, item);
            if state.caches.holds(origin, item) {
                metrics.immediate_hits += 1;
                metrics.record_fulfillment(next_request, utility.h_zero());
                rec.immediate_hit(next_request, origin as u32, item);
            } else {
                let req_id = registry.len() as u64;
                registry.push(ReqRecord {
                    created: next_request,
                    node: origin as u32,
                    item,
                    fulfilled: false,
                    lost: false,
                    settled: false,
                });
                let n = &mut nodes[origin];
                if n.alive && !n.stalled {
                    n.on_request_arrival(req_id, item, next_request);
                } else {
                    // The origin task is down: nobody will ever query
                    // for this request; it settles at the horizon.
                    registry[req_id as usize].lost = true;
                }
            }
            next_request += rng.exp(total_rate);
        } else if next_contact_t <= next_heap_t {
            // --- contact: open a window, wake both endpoints ---
            let e = contacts.next().expect("peeked above");
            if let Some(fs) = faults.as_mut() {
                if !fs.admit_contact(e.time, e.a, e.b, &mut metrics, rec) {
                    continue;
                }
            }
            rec.contact(e.time, e.a, e.b);
            let window = next_window;
            next_window += 1;
            transport.open(e.time, e.a, e.b, window, e.time + net.window);
            q.push(
                e.time + net.window,
                Ev::LinkDown {
                    a: e.a,
                    b: e.b,
                    window,
                },
            );
            for id in [e.a, e.b] {
                let n = &nodes[id as usize];
                if n.alive && !n.stalled {
                    dispatch!(
                        e.time,
                        id,
                        on_contact(if id == e.a { e.b } else { e.a }, window)
                    );
                }
            }
        } else {
            // --- kernel event ---
            let QEntry { ev, .. } = q.heap.pop().expect("peeked above");
            match ev {
                Ev::Deliver { to, from, bytes } => {
                    let msg = Msg::decode(&bytes)?;
                    let alive = {
                        let n = &nodes[to as usize];
                        n.alive && !n.stalled
                    };
                    if !transport.link_up(t, from, to) || !alive {
                        stats.transport_closed += 1;
                    } else {
                        stats.msgs_delivered += 1;
                        dispatch!(t, to, on_msg(from, msg));
                    }
                }
                Ev::LinkDown { a, b, window } => {
                    if transport.close(a, b, window) {
                        for id in [a, b] {
                            let n = &nodes[id as usize];
                            if n.alive && !n.stalled {
                                dispatch!(t, id, on_link_down(if id == a { b } else { a }, window));
                            }
                        }
                    }
                }
                Ev::Timer {
                    node,
                    incarnation,
                    timer,
                } => {
                    let n = &nodes[node as usize];
                    if !n.alive || n.stalled || n.incarnation != incarnation {
                        continue;
                    }
                    match timer {
                        Timer::Heartbeat => {
                            last_seen[node as usize] = t;
                            stats.heartbeats += 1;
                            q.push(
                                t + net.heartbeat_every,
                                Ev::Timer {
                                    node,
                                    incarnation,
                                    timer,
                                },
                            );
                        }
                        Timer::Checkpoint => {
                            nodes[node as usize].checkpoint();
                            q.push(
                                t + net.checkpoint_every,
                                Ev::Timer {
                                    node,
                                    incarnation,
                                    timer,
                                },
                            );
                        }
                        Timer::WindowRetry { peer, .. } => {
                            let up = transport.link_up(t, node, peer);
                            dispatch!(t, node, on_timer(timer, up));
                        }
                        Timer::XferRetry { xfer } => {
                            let Some(peer) = nodes[node as usize].escrow.get(&xfer).map(|x| x.peer)
                            else {
                                continue; // acked in the meantime
                            };
                            let up = transport.link_up(t, node, peer);
                            dispatch!(t, node, on_timer(timer, up));
                        }
                    }
                }
                Ev::ChurnDown { node } => {
                    let idx = node as usize;
                    if nodes[idx].alive && !condemned[idx] {
                        nodes[idx].stalled = false;
                        let lost = nodes[idx].crash();
                        for id in &lost {
                            registry[*id as usize].lost = true;
                        }
                        stats.crashes += 1;
                        rec.fault(t, "net_node_crash", node, lost.len() as u32);
                    }
                }
                Ev::ChurnUp { node } => {
                    let idx = node as usize;
                    if !nodes[idx].alive && !condemned[idx] {
                        nodes[idx].restart();
                        last_seen[idx] = t;
                        stats.restarts += 1;
                        rec.fault(t, "net_node_restart", node, 0);
                        let inc = nodes[idx].incarnation;
                        q.push(
                            t + net.heartbeat_every * 0.5,
                            Ev::Timer {
                                node,
                                incarnation: inc,
                                timer: Timer::Heartbeat,
                            },
                        );
                        q.push(
                            t + net.checkpoint_every,
                            Ev::Timer {
                                node,
                                incarnation: inc,
                                timer: Timer::Checkpoint,
                            },
                        );
                        // Re-arm retries for escrow that survived the
                        // crash; the next contact with each peer also
                        // re-drives them.
                        let xfers: Vec<u64> = nodes[idx]
                            .escrow
                            .iter()
                            .filter(|(_, x)| !x.parked)
                            .map(|(&id, _)| id)
                            .collect();
                        for x in xfers {
                            q.push(
                                t + net.rto_cap * 0.75,
                                Ev::Timer {
                                    node,
                                    incarnation: inc,
                                    timer: Timer::XferRetry { xfer: x },
                                },
                            );
                        }
                    }
                }
                Ev::Chaos { idx } => {
                    let c = net.chaos[idx];
                    let target = c.node as usize;
                    match c.kind {
                        ChaosKind::Kill { down_for } => {
                            if nodes[target].alive && !condemned[target] {
                                nodes[target].stalled = false;
                                let lost = nodes[target].crash();
                                for id in &lost {
                                    registry[*id as usize].lost = true;
                                }
                                stats.crashes += 1;
                                rec.fault(t, "net_node_crash", c.node, lost.len() as u32);
                            }
                            q.push(t + down_for, Ev::ChurnUp { node: c.node });
                        }
                        ChaosKind::Stall => {
                            if nodes[target].alive && !nodes[target].stalled {
                                nodes[target].stalled = true;
                                rec.fault(t, "net_node_stall", c.node, 0);
                            }
                        }
                    }
                }
                Ev::Supervise => {
                    for idx in 0..n_nodes {
                        if nodes[idx].alive
                            && !condemned[idx]
                            && t - last_seen[idx] > net.heartbeat_timeout
                        {
                            // Wedged task: remove it and degrade the run
                            // rather than hang waiting for it.
                            nodes[idx].alive = false;
                            nodes[idx].stalled = false;
                            condemned[idx] = true;
                            degraded = true;
                            stats.stalls += 1;
                            rec.fault(t, "net_node_stalled", idx as u32, 0);
                        }
                    }
                    q.push(t + net.heartbeat_every, Ev::Supervise);
                }
                Ev::DeadlineSweep => {
                    let d = net.deadline.expect("sweep implies deadline");
                    for node in nodes.iter_mut().take(n_nodes) {
                        if node.alive && !node.stalled {
                            let expired = node.expire_deadline(t, d);
                            settle_expired!(t, expired);
                        }
                    }
                    // Limbo requests at dead/stalled nodes expire too:
                    // the user's patience does not care about servers.
                    let overdue: Vec<u64> = registry
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| !r.fulfilled && !r.settled && t - r.created > d)
                        .map(|(i, _)| i as u64)
                        .collect();
                    settle_expired!(t, overdue);
                    q.push(t + d * 0.5, Ev::DeadlineSweep);
                }
            }
        }
    }
    if let Some(e) = fatal.take() {
        return Err(e);
    }

    // --- quiesce: settle, audit, report ---
    metrics.unfulfilled = registry.iter().filter(|r| !r.fulfilled).count() as u64;
    let h_inf = utility.h_infinity();
    for r in registry.iter_mut().filter(|r| !r.fulfilled && !r.settled) {
        let age = (duration - r.created).max(f64::MIN_POSITIVE);
        let gain = if h_inf.is_finite() {
            h_inf
        } else {
            utility.h(age)
        };
        metrics.record_settlement(duration, gain);
        rec.unfulfilled(duration, r.node, r.item, age);
        r.settled = true;
    }
    metrics.transmissions = state.transmissions;

    let pooled: u64 = nodes.iter().flat_map(|n| n.pool.values()).sum();
    let mut escrowed: u64 = 0;
    for n in &nodes {
        for (id, x) in &n.escrow {
            let consumed = nodes[x.peer as usize].applied.get(id).copied().unwrap_or(0);
            escrowed += x.count - consumed.min(x.count);
        }
    }
    let conservation = Conservation {
        minted: ledger.minted,
        executed: ledger.executed,
        discarded: ledger.discarded,
        pooled,
        escrowed,
    };
    if !conservation.holds() {
        return Err(NetError::ConservationViolation {
            minted: conservation.minted,
            executed: conservation.executed,
            discarded: conservation.discarded,
            pooled: conservation.pooled,
            escrowed: conservation.escrowed,
        });
    }

    if let Some(start) = wall_start {
        rec.trial_done(seed, start.elapsed().as_secs_f64());
    }
    Ok(NetTrialOutcome {
        metrics,
        final_replicas: state.replicas.clone(),
        stats,
        conservation,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::demand::Popularity;
    use impatience_core::utility::Step;
    use std::sync::Arc;

    fn small_config(items: usize, rho: usize) -> SimConfig {
        SimConfig::builder(items, rho)
            .demand(Popularity::pareto(items, 1.0).demand_rates(0.5))
            .utility(Arc::new(Step::new(10.0)))
            .bin(100.0)
            .build()
    }

    #[test]
    fn clean_trial_fulfills_and_conserves() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.1, 2_000.0);
        let out = run_net_trial(&config, &source, &NetConfig::default(), 1).unwrap();
        assert!(out.metrics.requests_created > 500);
        assert!(
            out.metrics.fulfillments() > out.metrics.requests_created / 2,
            "most requests should be fulfilled ({} of {})",
            out.metrics.fulfillments(),
            out.metrics.requests_created
        );
        assert!(out.stats.msgs_sent > 0);
        assert!(out.stats.handoffs_started > 0, "mandates should move");
        assert!(out.conservation.minted > 0, "fulfillments should mint");
        assert!(out.conservation.executed > 0, "mandates should execute");
        assert!(!out.degraded);
        assert_eq!(out.stats.msgs_lost, 0, "clean transport loses nothing");
        // The global cache budget and sticky replicas survive.
        let total: u32 = out.final_replicas.iter().sum();
        assert_eq!(total, 20, "global cache must stay full");
        for (i, &r) in out.final_replicas.iter().enumerate() {
            assert!(r >= 1, "item {i} lost despite sticky replica");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = small_config(8, 2);
        let source = ContactSource::homogeneous(8, 0.08, 1_500.0);
        let net = NetConfig::default();
        let a = run_net_trial(&config, &source, &net, 7).unwrap();
        let b = run_net_trial(&config, &source, &net, 7).unwrap();
        assert_eq!(a.final_replicas, b.final_replicas);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.conservation, b.conservation);
        assert_eq!(
            a.metrics.observed_rate_series(),
            b.metrics.observed_rate_series()
        );
        let c = run_net_trial(&config, &source, &net, 8).unwrap();
        assert_ne!(
            a.metrics.observed_rate_series(),
            c.metrics.observed_rate_series()
        );
    }

    #[test]
    fn lossy_transport_terminates_and_conserves() {
        use impatience_sim::faults::{FaultConfig, MsgFaults};
        let mut config = small_config(10, 2);
        config.faults = Some(FaultConfig {
            seed: 41,
            msg: Some(MsgFaults {
                loss_p: 0.10,
                dup_p: 0.02,
                reorder_window: 3,
            }),
            ..FaultConfig::default()
        });
        let source = ContactSource::homogeneous(10, 0.1, 2_000.0);
        let out = run_net_trial(&config, &source, &NetConfig::default(), 3).unwrap();
        assert!(out.stats.msgs_lost > 0, "loss must actually fire");
        assert!(out.stats.msgs_duplicated > 0);
        assert!(out.stats.retries > 0, "loss should force retries");
        assert!(out.conservation.holds());
        assert!(
            out.metrics.fulfillments() > out.metrics.requests_created / 3,
            "lossy transport still mostly works ({} of {})",
            out.metrics.fulfillments(),
            out.metrics.requests_created
        );
    }

    #[test]
    fn inactive_msg_faults_match_no_faults_exactly() {
        use impatience_sim::faults::{FaultConfig, MsgFaults};
        let source = ContactSource::homogeneous(8, 0.08, 1_000.0);
        let clean = small_config(8, 2);
        let mut zeroed = small_config(8, 2);
        zeroed.faults = Some(FaultConfig {
            seed: 99,
            msg: Some(MsgFaults::default()),
            ..FaultConfig::default()
        });
        let net = NetConfig::default();
        let a = run_net_trial(&clean, &source, &net, 5).unwrap();
        let b = run_net_trial(&zeroed, &source, &net, 5).unwrap();
        assert_eq!(a.final_replicas, b.final_replicas);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.metrics.observed_rate_series(),
            b.metrics.observed_rate_series()
        );
    }

    #[test]
    fn chaos_kill_preserves_conservation() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.1, 2_000.0);
        let net = NetConfig {
            chaos: vec![
                crate::config::ChaosEvent {
                    t: 500.0,
                    node: 3,
                    kind: ChaosKind::Kill { down_for: 200.0 },
                },
                crate::config::ChaosEvent {
                    t: 900.0,
                    node: 7,
                    kind: ChaosKind::Kill { down_for: 50.0 },
                },
            ],
            ..NetConfig::default()
        };
        let out = run_net_trial(&config, &source, &net, 11).unwrap();
        assert_eq!(out.stats.crashes, 2);
        assert_eq!(out.stats.restarts, 2);
        assert!(out.conservation.holds());
        assert!(!out.degraded, "kills with restarts do not degrade");
    }

    #[test]
    fn stalled_node_is_condemned_not_hung() {
        let config = small_config(10, 2);
        let source = ContactSource::homogeneous(10, 0.1, 3_000.0);
        let net = NetConfig {
            chaos: vec![crate::config::ChaosEvent {
                t: 300.0,
                node: 2,
                kind: ChaosKind::Stall,
            }],
            ..NetConfig::default()
        };
        let out = run_net_trial(&config, &source, &net, 13).unwrap();
        assert_eq!(out.stats.stalls, 1, "supervisor must condemn the node");
        assert!(out.degraded, "a condemned node degrades the run");
        assert!(out.conservation.holds());
    }

    #[test]
    fn deadline_budget_expires_requests() {
        // One item, tiny population, very slow contacts: many requests
        // cannot be served before a tight deadline.
        let config = small_config(6, 1);
        let source = ContactSource::homogeneous(6, 0.005, 2_000.0);
        let net = NetConfig {
            deadline: Some(50.0),
            ..NetConfig::default()
        };
        let out = run_net_trial(&config, &source, &net, 17).unwrap();
        assert!(out.stats.requests_expired > 0);
        assert!(out.conservation.holds());
    }
}
