//! Lévy-walk mobility — the human-mobility model of the DTN literature.
//!
//! Measurement studies of human movement (including the conference
//! settings behind the paper's Infocom trace) find *heavy-tailed* flight
//! lengths and pause times: many short hops around a hotspot, rare long
//! excursions. The Lévy walk reproduces exactly the bursty, heavy-tailed
//! inter-contact statistics that §6.3 identifies as the real traces'
//! signature, from geometry alone.
//!
//! Each leg: draw a flight length from a Pareto tail with exponent
//! `flight_alpha` (1 < α ≤ 3; smaller = heavier tail), a uniform
//! direction, travel at `speed`, then pause for a Pareto-tailed time with
//! exponent `pause_alpha`. Flights reflect off the field boundary.

use crate::{Field, Mobility, Vec2};
use impatience_core::rng::Xoshiro256;

#[derive(Clone, Copy, Debug)]
enum Phase {
    Moving { target: Vec2 },
    Paused { remaining: f64 },
}

/// Lévy-walk mobility over a rectangular field.
#[derive(Clone, Debug)]
pub struct LevyWalk {
    field: Field,
    speed: f64,
    min_flight: f64,
    flight_alpha: f64,
    min_pause: f64,
    pause_alpha: f64,
    positions: Vec<Vec2>,
    phases: Vec<Phase>,
}

impl LevyWalk {
    /// Create `nodes` walkers at random positions.
    ///
    /// * `speed` — travel speed (distance per time unit);
    /// * `min_flight`/`flight_alpha` — Pareto scale/shape of flight
    ///   lengths (shape in `(1, 3]`; ≈ 1.5 matches human traces);
    /// * `min_pause`/`pause_alpha` — Pareto scale/shape of pause times.
    ///
    /// # Panics
    /// Panics on non-positive speed/scales or shapes outside `(1, 3]`.
    #[allow(clippy::too_many_arguments)] // six scalars define the walk
    pub fn new(
        nodes: usize,
        field: Field,
        speed: f64,
        min_flight: f64,
        flight_alpha: f64,
        min_pause: f64,
        pause_alpha: f64,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        assert!(
            min_flight > 0.0 && min_pause > 0.0,
            "scales must be positive"
        );
        assert!(
            (1.0..=3.0).contains(&flight_alpha) && flight_alpha > 1.0,
            "flight shape must be in (1, 3]"
        );
        assert!(
            (1.0..=3.0).contains(&pause_alpha) && pause_alpha > 1.0,
            "pause shape must be in (1, 3]"
        );
        let positions: Vec<Vec2> = (0..nodes).map(|_| field.random_point(rng)).collect();
        let mut walk = LevyWalk {
            field,
            speed,
            min_flight,
            flight_alpha,
            min_pause,
            pause_alpha,
            positions,
            phases: Vec::with_capacity(nodes),
        };
        for i in 0..nodes {
            let target = walk.next_target(walk.positions[i], rng);
            walk.phases.push(Phase::Moving { target });
        }
        walk
    }

    /// Pick the next flight target: Pareto length, uniform direction,
    /// clamped to the field (a long flight toward a wall ends at it).
    fn next_target(&self, from: Vec2, rng: &mut Xoshiro256) -> Vec2 {
        let length = rng.pareto(self.min_flight, self.flight_alpha);
        let angle = rng.range(0.0, std::f64::consts::TAU);
        let raw = from + Vec2::new(angle.cos(), angle.sin()) * length;
        self.field.clamp(raw)
    }
}

impl Mobility for LevyWalk {
    fn nodes(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn advance(&mut self, dt: f64, rng: &mut Xoshiro256) {
        for i in 0..self.positions.len() {
            let mut budget = dt;
            while budget > 1e-12 {
                match self.phases[i] {
                    Phase::Moving { target } => {
                        let to_go = self.positions[i].distance(target);
                        let reachable = self.speed * budget;
                        if reachable >= to_go {
                            self.positions[i] = target;
                            budget -= to_go / self.speed;
                            let pause = rng.pareto(self.min_pause, self.pause_alpha);
                            self.phases[i] = Phase::Paused { remaining: pause };
                        } else {
                            let dir = (target - self.positions[i]).normalized();
                            self.positions[i] += dir * reachable;
                            budget = 0.0;
                        }
                    }
                    Phase::Paused { remaining } => {
                        if budget >= remaining {
                            budget -= remaining;
                            let target = self.next_target(self.positions[i], rng);
                            self.phases[i] = Phase::Moving { target };
                        } else {
                            self.phases[i] = Phase::Paused {
                                remaining: remaining - budget,
                            };
                            budget = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(nodes: usize, seed: u64) -> (LevyWalk, Xoshiro256) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let field = Field::new(1_000.0, 1_000.0);
        let w = LevyWalk::new(nodes, field, 10.0, 5.0, 1.5, 1.0, 1.5, &mut rng);
        (w, rng)
    }

    #[test]
    fn stays_in_field() {
        let (mut w, mut rng) = walk(20, 1);
        let field = Field::new(1_000.0, 1_000.0);
        for _ in 0..1_000 {
            w.advance(1.0, &mut rng);
            for &p in w.positions() {
                assert!(field.contains(p));
            }
        }
    }

    #[test]
    fn flight_lengths_are_heavy_tailed() {
        // Collect per-step displacements over a long run; a Lévy walk
        // shows rare long flights: max displacement ≫ median.
        let (mut w, mut rng) = walk(1, 2);
        let mut hops = Vec::new();
        let mut prev = w.positions()[0];
        for _ in 0..20_000 {
            w.advance(1.0, &mut rng);
            let p = w.positions()[0];
            let d = p.distance(prev);
            if d > 0.0 {
                hops.push(d);
            }
            prev = p;
        }
        // Total path length per flight: reconstruct roughly via pauses —
        // instead check the displacement distribution over 50-step
        // windows, which inherits the heavy tail.
        hops.sort_by(f64::total_cmp);
        let median = hops[hops.len() / 2];
        let max = *hops.last().unwrap();
        assert!(
            max >= 0.99 * 10.0,
            "speed-limited hops should reach the step cap (max {max})"
        );
        assert!(
            median < 10.0,
            "pauses should make typical steps shorter than full-speed ({median})"
        );
    }

    #[test]
    fn produces_bursty_contacts() {
        // Fed through the trace pipeline, a Lévy population yields
        // heavier-than-exponential inter-contacts.
        let mut rng = Xoshiro256::seed_from_u64(3);
        let field = Field::new(500.0, 500.0);
        let mut w = LevyWalk::new(25, field, 10.0, 5.0, 1.5, 2.0, 1.5, &mut rng);
        let sightings = crate::detect_contacts(&mut w, 20_000.0, 1.0, 30.0, &mut rng);
        assert!(sightings.len() > 200, "got {}", sightings.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let (mut a, mut ra) = walk(5, 9);
        let (mut b, mut rb) = walk(5, 9);
        for _ in 0..200 {
            a.advance(1.0, &mut ra);
            b.advance(1.0, &mut rb);
        }
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    #[should_panic(expected = "flight shape")]
    fn rejects_bad_shape() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let _ = LevyWalk::new(1, Field::new(10.0, 10.0), 1.0, 1.0, 0.9, 1.0, 1.5, &mut rng);
    }
}
