//! Minimal 2-D vector arithmetic.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in the plane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Vec2 {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The origin.
    pub const ZERO: Vec2 = Vec2::new(0.0, 0.0);

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm (no square root; use for comparisons).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in this direction (zero stays zero).
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Linear interpolation: `self + t·(other − self)`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(1.0, -2.0);
        assert_eq!(a + b, Vec2::new(4.0, 2.0));
        assert_eq!(a - b, Vec2::new(2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(a / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(-a, Vec2::new(-3.0, -4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Vec2::new(4.0, 2.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn norms_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.distance(Vec2::ZERO), 5.0);
        assert_eq!(a.distance_sq(Vec2::ZERO), 25.0);
        assert_eq!(a.dot(Vec2::new(1.0, 1.0)), 7.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let u = Vec2::new(0.0, -9.0).normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert_eq!(u, Vec2::new(0.0, -1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }
}
