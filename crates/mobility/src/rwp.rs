//! The random-waypoint mobility model.
//!
//! Each node repeatedly (1) picks a uniformly random destination in the
//! field, (2) travels there in a straight line at a per-trip speed drawn
//! from `speed_range`, then (3) pauses for a duration drawn from
//! `pause_range`. RWP produces near-homogeneous long-run meeting rates —
//! useful as a geometric sanity check against the homogeneous analysis.

use std::ops::Range;

use crate::{Field, Mobility, Vec2};
use impatience_core::rng::Xoshiro256;

#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Travelling toward the waypoint at the given speed.
    Moving { target: Vec2, speed: f64 },
    /// Pausing for the remaining duration.
    Paused { remaining: f64 },
}

/// Random-waypoint mobility over a rectangular field.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    field: Field,
    speed_range: Range<f64>,
    pause_range: Range<f64>,
    positions: Vec<Vec2>,
    phases: Vec<Phase>,
}

impl RandomWaypoint {
    /// Create `nodes` nodes at uniformly random initial positions.
    ///
    /// `speed_range` must be strictly positive; `pause_range` may start at
    /// zero (no pauses when `0.0..0.0` is degenerate — use `0.0..ε`).
    ///
    /// # Panics
    /// Panics on non-positive speeds or empty ranges.
    pub fn new(
        nodes: usize,
        field: Field,
        speed_range: Range<f64>,
        pause_range: Range<f64>,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(
            speed_range.start > 0.0 && speed_range.end >= speed_range.start,
            "speed range must be positive and non-empty"
        );
        assert!(
            pause_range.start >= 0.0 && pause_range.end >= pause_range.start,
            "pause range must be non-negative and non-empty"
        );
        let positions: Vec<Vec2> = (0..nodes).map(|_| field.random_point(rng)).collect();
        let phases = positions
            .iter()
            .map(|_| Phase::Moving {
                target: field.random_point(rng),
                speed: sample_range(&speed_range, rng),
            })
            .collect();
        RandomWaypoint {
            field,
            speed_range,
            pause_range,
            positions,
            phases,
        }
    }

    fn next_trip(&self, rng: &mut Xoshiro256) -> Phase {
        Phase::Moving {
            target: self.field.random_point(rng),
            speed: sample_range(&self.speed_range, rng),
        }
    }
}

fn sample_range(r: &Range<f64>, rng: &mut Xoshiro256) -> f64 {
    if r.end > r.start {
        rng.range(r.start, r.end)
    } else {
        r.start
    }
}

impl Mobility for RandomWaypoint {
    fn nodes(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn advance(&mut self, dt: f64, rng: &mut Xoshiro256) {
        for i in 0..self.positions.len() {
            let mut budget = dt;
            // A node may finish a leg and start the next within one step.
            while budget > 1e-12 {
                match self.phases[i] {
                    Phase::Moving { target, speed } => {
                        let to_go = self.positions[i].distance(target);
                        let reachable = speed * budget;
                        if reachable >= to_go {
                            self.positions[i] = target;
                            budget -= if speed > 0.0 { to_go / speed } else { budget };
                            let pause = sample_range(&self.pause_range, rng);
                            self.phases[i] = if pause > 0.0 {
                                Phase::Paused { remaining: pause }
                            } else {
                                self.next_trip(rng)
                            };
                        } else {
                            let dir = (target - self.positions[i]).normalized();
                            self.positions[i] += dir * reachable;
                            budget = 0.0;
                        }
                    }
                    Phase::Paused { remaining } => {
                        if budget >= remaining {
                            budget -= remaining;
                            self.phases[i] = self.next_trip(rng);
                        } else {
                            self.phases[i] = Phase::Paused {
                                remaining: remaining - budget,
                            };
                            budget = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inside_field() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let field = Field::new(100.0, 50.0);
        let mut m = RandomWaypoint::new(20, field, 1.0..3.0, 0.0..2.0, &mut rng);
        for _ in 0..500 {
            m.advance(1.0, &mut rng);
            for &p in m.positions() {
                assert!(field.contains(p), "escaped to {p:?}");
            }
        }
    }

    #[test]
    fn nodes_actually_move() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let field = Field::new(100.0, 100.0);
        let mut m = RandomWaypoint::new(5, field, 2.0..2.0001, 0.0..0.0001, &mut rng);
        let before = m.positions().to_vec();
        m.advance(10.0, &mut rng);
        let moved = m
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(moved >= 4, "only {moved} of 5 nodes moved");
    }

    #[test]
    fn speed_is_respected() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let field = Field::new(1000.0, 1000.0);
        let speed = 5.0;
        let mut m = RandomWaypoint::new(10, field, speed..speed + 1e-9, 0.0..1e-9, &mut rng);
        let before = m.positions().to_vec();
        let dt = 3.0;
        m.advance(dt, &mut rng);
        for (a, b) in m.positions().iter().zip(&before) {
            // Displacement can be shorter than speed·dt (turns at
            // waypoints) but never longer.
            assert!(a.distance(*b) <= speed * dt + 1e-6);
        }
    }

    #[test]
    fn pauses_hold_position() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let field = Field::new(10.0, 10.0);
        // Huge pauses, tiny field: nodes reach a waypoint quickly and then
        // sit still for a long time.
        let mut m = RandomWaypoint::new(3, field, 100.0..101.0, 1e6..2e6, &mut rng);
        m.advance(1.0, &mut rng); // everyone reaches a waypoint & pauses
        let frozen = m.positions().to_vec();
        m.advance(100.0, &mut rng);
        for (a, b) in m.positions().iter().zip(&frozen) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn long_run_coverage_spans_field() {
        // Ergodicity smoke test: a single node visits all four quadrants.
        let mut rng = Xoshiro256::seed_from_u64(6);
        let field = Field::new(100.0, 100.0);
        let mut m = RandomWaypoint::new(1, field, 5.0..10.0, 0.0..1.0, &mut rng);
        let mut quadrants = [false; 4];
        for _ in 0..5000 {
            m.advance(1.0, &mut rng);
            let p = m.positions()[0];
            let q = (p.x > 50.0) as usize * 2 + (p.y > 50.0) as usize;
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&v| v), "visited {quadrants:?}");
    }

    #[test]
    #[should_panic(expected = "speed range must be positive")]
    fn rejects_zero_speed() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let _ = RandomWaypoint::new(1, Field::new(1.0, 1.0), 0.0..1.0, 0.0..1.0, &mut rng);
    }
}
