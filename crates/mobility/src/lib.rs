//! # impatience-mobility
//!
//! 2-D mobility models and geometric contact detection for opportunistic-
//! network simulation.
//!
//! The paper evaluates its replication schemes on two real traces —
//! Bluetooth sightings at Infocom'06 and GPS contacts between Cabspotting
//! taxis. Neither dataset ships with this repository, so this crate
//! provides the *mobility substrate* from which equivalent synthetic
//! traces are generated (see `impatience-traces::gen::vehicular`):
//!
//! * [`RandomWaypoint`] — the classic random-waypoint model on a
//!   rectangular field, with per-trip speeds and pause times;
//! * [`GridTaxi`] — vehicles driving L-shaped routes on a Manhattan road
//!   grid (a Cabspotting stand-in: strongly heterogeneous meeting rates
//!   driven by geography, corridor re-meeting bursts, long disconnections);
//! * [`detect_contacts`] — radius-threshold contact detection with
//!   hysteresis over any [`Mobility`] implementation.
//!
//! ```
//! use impatience_core::rng::Xoshiro256;
//! use impatience_mobility::{detect_contacts, Field, GridTaxi, RandomWaypoint};
//!
//! let mut rng = Xoshiro256::seed_from_u64(7);
//! let field = Field::new(5_000.0, 5_000.0);
//! let mut taxis = GridTaxi::new(10, field, 500.0, 8.0..14.0, 0.0..60.0, &mut rng);
//! let sightings = detect_contacts(&mut taxis, 3_600.0, 1.0, 200.0, &mut rng);
//! // Taxis on a shared 5 km grid meet occasionally within 200 m.
//! for s in &sightings {
//!     assert!(s.a != s.b && s.time <= 3_600.0);
//! }
//! # let _ = RandomWaypoint::new(3, field, 1.0..2.0, 0.0..1.0, &mut rng);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

mod detect;
mod field;
mod grid;
mod grid_index;
mod levy;
mod rwp;
mod vec2;

pub use detect::{detect_contacts, Sighting};
pub use field::Field;
pub use grid::GridTaxi;
pub use grid_index::SpatialGrid;
pub use levy::LevyWalk;
pub use rwp::RandomWaypoint;
pub use vec2::Vec2;

use impatience_core::rng::Xoshiro256;

/// A population of moving nodes whose positions evolve in continuous time.
///
/// Implementations advance all nodes synchronously; contact detection
/// samples positions between steps.
pub trait Mobility {
    /// Number of nodes.
    fn nodes(&self) -> usize;

    /// Current position of every node.
    fn positions(&self) -> &[Vec2];

    /// Advance the model by `dt` time units.
    fn advance(&mut self, dt: f64, rng: &mut Xoshiro256);
}
