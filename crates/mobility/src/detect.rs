//! Geometric contact detection: turn trajectories into meeting events.
//!
//! The Cabspotting dataset used by the paper records a *contact* whenever
//! two cabs come within 200 m of each other. We reproduce that with a
//! radius threshold plus hysteresis: a sighting fires when a pair first
//! enters the contact radius, and the pair must separate beyond
//! `radius × HYSTERESIS` before a new sighting can fire. Hysteresis
//! prevents boundary jitter from registering as a burst of meetings.

use std::collections::HashSet;

use crate::{Mobility, SpatialGrid};
use impatience_core::rng::Xoshiro256;

/// Separation factor a pair must exceed (relative to the contact radius)
/// before it is considered disconnected again.
const HYSTERESIS: f64 = 1.1;

/// A pairwise meeting event: nodes `a < b` came within radius at `time`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sighting {
    /// Event time.
    pub time: f64,
    /// Lower node index.
    pub a: usize,
    /// Higher node index.
    pub b: usize,
}

/// Run a mobility model for `duration` time units sampled every `dt`, and
/// return all sightings within `radius`, in time order.
///
/// Detection uses a uniform spatial hash ([`SpatialGrid`]) sized to the
/// release radius, so each step costs O(n + nearby pairs) instead of
/// O(n²) — the paper-scale populations (tens of nodes) never notice, but
/// thousand-node fields stay tractable.
///
/// # Panics
/// Panics unless `dt`, `duration` and `radius` are positive.
pub fn detect_contacts<M: Mobility>(
    model: &mut M,
    duration: f64,
    dt: f64,
    radius: f64,
    rng: &mut Xoshiro256,
) -> Vec<Sighting> {
    assert!(dt > 0.0 && duration > 0.0 && radius > 0.0);
    let radius_sq = radius * radius;
    let release = radius * HYSTERESIS;
    let mut linked: HashSet<(usize, usize)> = HashSet::new();
    let mut sightings = Vec::new();

    // Pairs already inside the radius at t = 0 count as meetings at 0.
    let scan =
        |time: f64, model: &M, linked: &mut HashSet<(usize, usize)>, out: &mut Vec<Sighting>| {
            let pos = model.positions();
            let grid = SpatialGrid::build(pos, release);
            let near = grid.pairs_within(pos, release);
            // Linked pairs that separated past the release radius unlink;
            // `near` is sorted, so membership is a binary search.
            linked.retain(|pair| near.binary_search(pair).is_ok());
            for (a, b) in near {
                if pos[a].distance_sq(pos[b]) <= radius_sq && !linked.contains(&(a, b)) {
                    linked.insert((a, b));
                    out.push(Sighting { time, a, b });
                }
            }
        };

    scan(0.0, model, &mut linked, &mut sightings);
    let steps = (duration / dt).ceil() as u64;
    for step in 1..=steps {
        model.advance(dt, rng);
        let t = (step as f64 * dt).min(duration);
        scan(t, model, &mut linked, &mut sightings);
    }
    sightings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, RandomWaypoint, Vec2};

    /// Two nodes oscillating toward and away from each other.
    struct PingPong {
        positions: Vec<Vec2>,
        t: f64,
    }

    impl Mobility for PingPong {
        fn nodes(&self) -> usize {
            2
        }
        fn positions(&self) -> &[Vec2] {
            &self.positions
        }
        fn advance(&mut self, dt: f64, _rng: &mut Xoshiro256) {
            self.t += dt;
            // Node 1 sweeps x = 10 + 8·sin(t); node 0 fixed at origin.
            self.positions[1] = Vec2::new(10.0 + 8.0 * self.t.sin(), 0.0);
        }
    }

    #[test]
    fn oscillating_pair_meets_once_per_cycle() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut m = PingPong {
            positions: vec![Vec2::ZERO, Vec2::new(18.0, 0.0)],
            t: 0.0,
        };
        // Radius 5: contact when x < 5, i.e. sin(t) < −0.625 — once per 2π.
        let sightings = detect_contacts(&mut m, 6.3 * 4.0, 0.01, 5.0, &mut rng);
        assert_eq!(sightings.len(), 4, "{sightings:?}");
        for w in sightings.windows(2) {
            assert!(w[1].time - w[0].time > 5.0, "re-trigger too fast: {w:?}");
        }
    }

    #[test]
    fn initial_overlap_counts_at_time_zero() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut m = PingPong {
            positions: vec![Vec2::ZERO, Vec2::new(1.0, 0.0)],
            t: 0.0,
        };
        let sightings = detect_contacts(&mut m, 1.0, 0.1, 5.0, &mut rng);
        assert_eq!(sightings[0].time, 0.0);
    }

    #[test]
    fn hysteresis_suppresses_jitter() {
        // A pair hovering exactly at the radius boundary must not fire
        // repeatedly.
        struct Jitter {
            positions: Vec<Vec2>,
            step: u64,
        }
        impl Mobility for Jitter {
            fn nodes(&self) -> usize {
                2
            }
            fn positions(&self) -> &[Vec2] {
                &self.positions
            }
            fn advance(&mut self, _dt: f64, _rng: &mut Xoshiro256) {
                self.step += 1;
                // Oscillate between r−ε and r+ε (inside the hysteresis band).
                let x = if self.step.is_multiple_of(2) {
                    4.99
                } else {
                    5.01
                };
                self.positions[1] = Vec2::new(x, 0.0);
            }
        }
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut m = Jitter {
            positions: vec![Vec2::ZERO, Vec2::new(5.01, 0.0)],
            step: 0,
        };
        let sightings = detect_contacts(&mut m, 100.0, 1.0, 5.0, &mut rng);
        assert_eq!(sightings.len(), 1, "jitter produced {sightings:?}");
    }

    #[test]
    fn ordering_and_pair_normalization() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let field = Field::new(200.0, 200.0);
        let mut m = RandomWaypoint::new(10, field, 5.0..10.0, 0.0..1.0, &mut rng);
        let sightings = detect_contacts(&mut m, 500.0, 0.5, 20.0, &mut rng);
        assert!(!sightings.is_empty(), "10 nodes on a small field must meet");
        for w in sightings.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for s in &sightings {
            assert!(s.a < s.b);
        }
    }

    #[test]
    fn denser_population_meets_more() {
        let run = |n: usize| {
            let mut rng = Xoshiro256::seed_from_u64(33);
            let field = Field::new(300.0, 300.0);
            let mut m = RandomWaypoint::new(n, field, 5.0..10.0, 0.0..1.0, &mut rng);
            detect_contacts(&mut m, 300.0, 0.5, 15.0, &mut rng).len()
        };
        assert!(run(20) > run(5));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_radius() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let field = Field::new(10.0, 10.0);
        let mut m = RandomWaypoint::new(2, field, 1.0..2.0, 0.0..1.0, &mut rng);
        let _ = detect_contacts(&mut m, 1.0, 0.1, 0.0, &mut rng);
    }
}
