//! The rectangular simulation area.

use crate::Vec2;
use impatience_core::rng::Xoshiro256;

/// An axis-aligned rectangular field `[0, width] × [0, height]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Create a field of the given dimensions.
    ///
    /// # Panics
    /// Panics unless both dimensions are strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "field dimensions must be positive"
        );
        Field { width, height }
    }

    /// Field width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Whether a point lies inside (inclusive of the boundary).
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamp a point onto the field.
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// A uniformly random point inside the field.
    pub fn random_point(&self, rng: &mut Xoshiro256) -> Vec2 {
        Vec2::new(rng.range(0.0, self.width), rng.range(0.0, self.height))
    }

    /// The field diagonal (an upper bound on any pairwise distance).
    pub fn diagonal(&self) -> f64 {
        self.width.hypot(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_and_clamp() {
        let f = Field::new(10.0, 5.0);
        assert!(f.contains(Vec2::new(0.0, 0.0)));
        assert!(f.contains(Vec2::new(10.0, 5.0)));
        assert!(!f.contains(Vec2::new(10.1, 1.0)));
        assert!(!f.contains(Vec2::new(1.0, -0.1)));
        assert_eq!(f.clamp(Vec2::new(12.0, -3.0)), Vec2::new(10.0, 0.0));
        assert_eq!(f.diagonal(), (125.0f64).sqrt());
    }

    #[test]
    fn random_points_are_inside() {
        let f = Field::new(3.0, 7.0);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(f.contains(f.random_point(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_degenerate_field() {
        let _ = Field::new(0.0, 5.0);
    }
}
