//! A uniform spatial hash for neighbor queries.
//!
//! The naive contact scan is O(n²) per step — fine for the paper's 50-73
//! node populations, quadratic pain beyond. Binning positions into cells
//! of the contact radius reduces each step to O(n + matches): only the
//! 3×3 cell neighborhood of a node can contain nodes within the radius.

use std::collections::HashMap;

use crate::Vec2;

/// A uniform grid over arbitrary positions with cell size = query radius.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: f64,
    bins: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Build a grid with the given cell size (use the query radius).
    ///
    /// # Panics
    /// Panics unless `cell` is positive and finite.
    pub fn build(positions: &[Vec2], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut bins: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            bins.entry(Self::key(p, cell)).or_default().push(i);
        }
        SpatialGrid { cell, bins }
    }

    #[inline]
    fn key(p: &Vec2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// All unordered pairs `(a, b)` with `a < b` whose distance is at most
    /// `radius` (which must be ≤ the cell size used to build the grid).
    ///
    /// Pairs are returned in deterministic (sorted) order so simulation
    /// runs remain reproducible.
    pub fn pairs_within(&self, positions: &[Vec2], radius: f64) -> Vec<(usize, usize)> {
        assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "query radius {radius} exceeds the grid cell {}; rebuild with a larger cell",
            self.cell
        );
        let r2 = radius * radius;
        let mut out = Vec::new();
        for (&(cx, cy), members) in &self.bins {
            // Within-cell pairs.
            for (k, &a) in members.iter().enumerate() {
                for &b in &members[k + 1..] {
                    if positions[a].distance_sq(positions[b]) <= r2 {
                        out.push((a.min(b), a.max(b)));
                    }
                }
            }
            // Cross-cell pairs: scan half the neighborhood so each cell
            // pair is visited once.
            for (dx, dy) in [(1i64, 0i64), (1, 1), (0, 1), (-1, 1)] {
                let Some(others) = self.bins.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &a in members {
                    for &b in others {
                        if positions[a].distance_sq(positions[b]) <= r2 {
                            out.push((a.min(b), a.max(b)));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::rng::Xoshiro256;

    fn naive_pairs(positions: &[Vec2], radius: f64) -> Vec<(usize, usize)> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        for a in 0..positions.len() {
            for b in (a + 1)..positions.len() {
                if positions[a].distance_sq(positions[b]) <= r2 {
                    out.push((a, b));
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_clouds() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for n in [2usize, 10, 100, 400] {
            let positions: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.range(0.0, 1_000.0), rng.range(0.0, 1_000.0)))
                .collect();
            let radius = 60.0;
            let grid = SpatialGrid::build(&positions, radius);
            let fast = grid.pairs_within(&positions, radius);
            let slow = naive_pairs(&positions, radius);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn boundary_pairs_across_cells() {
        // Two points straddling a cell boundary, just inside the radius.
        let positions = vec![Vec2::new(99.9, 50.0), Vec2::new(100.1, 50.0)];
        let grid = SpatialGrid::build(&positions, 100.0);
        assert_eq!(grid.pairs_within(&positions, 100.0), vec![(0, 1)]);
    }

    #[test]
    fn negative_coordinates() {
        let positions = vec![
            Vec2::new(-5.0, -5.0),
            Vec2::new(-8.0, -5.0),
            Vec2::new(50.0, 50.0),
        ];
        let grid = SpatialGrid::build(&positions, 10.0);
        assert_eq!(grid.pairs_within(&positions, 10.0), vec![(0, 1)]);
    }

    #[test]
    fn smaller_query_radius_is_allowed() {
        let positions = vec![Vec2::new(0.0, 0.0), Vec2::new(7.0, 0.0)];
        let grid = SpatialGrid::build(&positions, 10.0);
        assert!(grid.pairs_within(&positions, 5.0).is_empty());
        assert_eq!(grid.pairs_within(&positions, 8.0), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "exceeds the grid cell")]
    fn oversized_query_rejected() {
        let positions = vec![Vec2::ZERO];
        let grid = SpatialGrid::build(&positions, 10.0);
        let _ = grid.pairs_within(&positions, 20.0);
    }

    #[test]
    fn empty_input() {
        let grid = SpatialGrid::build(&[], 10.0);
        assert!(grid.pairs_within(&[], 10.0).is_empty());
    }
}
