//! Taxi mobility on a Manhattan road grid — the Cabspotting stand-in.
//!
//! Vehicles occupy a grid of roads with the given `block` spacing and
//! repeatedly drive L-shaped routes (first along the horizontal road, then
//! along the vertical road) to a random intersection, dwell there for a
//! passenger-pickup pause, and depart again. Compared to free-space models
//! this produces the vehicular-trace features the paper's §6.3 attributes
//! its Cabspotting observations to: strongly heterogeneous pairwise
//! meeting rates (routes share corridors), re-meeting bursts while two
//! cabs travel the same road, and long disconnections across the grid.

use std::ops::Range;

use crate::{Field, Mobility, Vec2};
use impatience_core::rng::Xoshiro256;

#[derive(Clone, Debug)]
struct Cab {
    /// Remaining waypoints of the current route (in driving order).
    route: Vec<Vec2>,
    speed: f64,
    dwell: f64,
}

/// Taxis on a Manhattan grid of roads.
#[derive(Clone, Debug)]
pub struct GridTaxi {
    field: Field,
    block: f64,
    speed_range: Range<f64>,
    dwell_range: Range<f64>,
    positions: Vec<Vec2>,
    cabs: Vec<Cab>,
}

impl GridTaxi {
    /// Create `nodes` taxis at random intersections of a grid with the
    /// given `block` spacing.
    ///
    /// # Panics
    /// Panics if `block` is not positive or exceeds either field
    /// dimension, or on invalid speed/dwell ranges.
    pub fn new(
        nodes: usize,
        field: Field,
        block: f64,
        speed_range: Range<f64>,
        dwell_range: Range<f64>,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(
            block > 0.0 && block <= field.width() && block <= field.height(),
            "block spacing must be positive and fit in the field"
        );
        assert!(
            speed_range.start > 0.0 && speed_range.end >= speed_range.start,
            "speed range must be positive and non-empty"
        );
        assert!(
            dwell_range.start >= 0.0 && dwell_range.end >= dwell_range.start,
            "dwell range must be non-negative and non-empty"
        );
        let mut grid = GridTaxi {
            field,
            block,
            speed_range,
            dwell_range,
            positions: Vec::with_capacity(nodes),
            cabs: Vec::with_capacity(nodes),
        };
        for _ in 0..nodes {
            let start = grid.random_intersection(rng);
            grid.positions.push(start);
            let speed = grid.sample_speed(rng);
            let route = grid.plan_route(start, rng);
            grid.cabs.push(Cab {
                route,
                speed,
                dwell: 0.0,
            });
        }
        grid
    }

    /// Number of grid columns (vertical roads).
    fn cols(&self) -> usize {
        (self.field.width() / self.block).floor() as usize + 1
    }

    /// Number of grid rows (horizontal roads).
    fn rows(&self) -> usize {
        (self.field.height() / self.block).floor() as usize + 1
    }

    fn random_intersection(&self, rng: &mut Xoshiro256) -> Vec2 {
        let c = rng.index(self.cols());
        let r = rng.index(self.rows());
        Vec2::new(c as f64 * self.block, r as f64 * self.block)
    }

    fn sample_speed(&self, rng: &mut Xoshiro256) -> f64 {
        if self.speed_range.end > self.speed_range.start {
            rng.range(self.speed_range.start, self.speed_range.end)
        } else {
            self.speed_range.start
        }
    }

    fn sample_dwell(&self, rng: &mut Xoshiro256) -> f64 {
        if self.dwell_range.end > self.dwell_range.start {
            rng.range(self.dwell_range.start, self.dwell_range.end)
        } else {
            self.dwell_range.start
        }
    }

    /// L-shaped route from the current intersection to a random one:
    /// horizontal leg first, then vertical.
    fn plan_route(&self, from: Vec2, rng: &mut Xoshiro256) -> Vec<Vec2> {
        let dest = self.random_intersection(rng);
        let corner = Vec2::new(dest.x, from.y);
        let mut route = Vec::with_capacity(2);
        if (corner.x - from.x).abs() > 1e-9 {
            route.push(corner);
        }
        if (dest.y - corner.y).abs() > 1e-9 || route.is_empty() {
            route.push(dest);
        }
        route
    }
}

impl Mobility for GridTaxi {
    fn nodes(&self) -> usize {
        self.positions.len()
    }

    fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    fn advance(&mut self, dt: f64, rng: &mut Xoshiro256) {
        for i in 0..self.positions.len() {
            let mut budget = dt;
            while budget > 1e-12 {
                let cab = &mut self.cabs[i];
                if cab.dwell > 0.0 {
                    let used = cab.dwell.min(budget);
                    cab.dwell -= used;
                    budget -= used;
                    continue;
                }
                let Some(&next) = cab.route.first() else {
                    // Route finished: dwell, then plan the next fare.
                    let dwell = self.sample_dwell(rng);
                    let route = self.plan_route(self.positions[i], rng);
                    let speed = self.sample_speed(rng);
                    let cab = &mut self.cabs[i];
                    cab.dwell = dwell;
                    cab.route = route;
                    cab.speed = speed;
                    continue;
                };
                let to_go = self.positions[i].distance(next);
                let reachable = cab.speed * budget;
                if reachable >= to_go {
                    self.positions[i] = next;
                    budget -= to_go / cab.speed;
                    cab.route.remove(0);
                } else {
                    let dir = (next - self.positions[i]).normalized();
                    self.positions[i] += dir * reachable;
                    budget = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_grid(p: Vec2, block: f64) -> bool {
        let fx = (p.x / block).rem_euclid(1.0);
        let fy = (p.y / block).rem_euclid(1.0);
        let near = |f: f64| !(1e-6..=1.0 - 1e-6).contains(&f);
        near(fx) || near(fy)
    }

    #[test]
    fn taxis_stay_on_roads_and_in_field() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let field = Field::new(1000.0, 800.0);
        let block = 100.0;
        let mut m = GridTaxi::new(8, field, block, 5.0..15.0, 0.0..30.0, &mut rng);
        for _ in 0..2000 {
            m.advance(1.0, &mut rng);
            for &p in m.positions() {
                assert!(field.contains(p), "taxi left the field: {p:?}");
                assert!(on_grid(p, block), "taxi off-road at {p:?}");
            }
        }
    }

    #[test]
    fn initial_positions_are_intersections() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let m = GridTaxi::new(
            20,
            Field::new(500.0, 500.0),
            50.0,
            1.0..2.0,
            0.0..1.0,
            &mut rng,
        );
        for &p in m.positions() {
            assert!((p.x / 50.0).fract().abs() < 1e-9);
            assert!((p.y / 50.0).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn taxis_cover_distance() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut m = GridTaxi::new(
            5,
            Field::new(2000.0, 2000.0),
            200.0,
            10.0..10.1,
            0.0..0.1,
            &mut rng,
        );
        let before = m.positions().to_vec();
        for _ in 0..60 {
            m.advance(1.0, &mut rng);
        }
        let moved = m
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(**b) > 50.0)
            .count();
        assert!(moved >= 3, "only {moved} of 5 taxis travelled");
    }

    #[test]
    fn dwell_pauses_at_destination() {
        let mut rng = Xoshiro256::seed_from_u64(14);
        // Tiny grid + enormous dwell: after the first fare every cab sits.
        let mut m = GridTaxi::new(
            4,
            Field::new(100.0, 100.0),
            100.0,
            50.0..51.0,
            1e6..2e6,
            &mut rng,
        );
        m.advance(10.0, &mut rng); // finish first routes
        let frozen = m.positions().to_vec();
        m.advance(1000.0, &mut rng);
        assert_eq!(m.positions(), &frozen[..]);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut m = GridTaxi::new(
                6,
                Field::new(600.0, 600.0),
                100.0,
                5.0..10.0,
                0.0..10.0,
                &mut rng,
            );
            for _ in 0..100 {
                m.advance(1.0, &mut rng);
            }
            m.positions().to_vec()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "block spacing")]
    fn rejects_oversized_block() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let _ = GridTaxi::new(
            1,
            Field::new(100.0, 100.0),
            500.0,
            1.0..2.0,
            0.0..1.0,
            &mut rng,
        );
    }
}
