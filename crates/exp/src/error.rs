//! The typed error taxonomy of the experiment pipeline.

use std::path::PathBuf;

use impatience_sim::config::ConfigError;
use impatience_sim::runner::CampaignError;

use crate::toml::TomlError;

/// Everything that can go wrong while loading, validating, or executing
/// an experiment spec.
///
/// The variants mirror the workspace's error-taxonomy convention: each
/// carries enough context to point at the offending file/cell, and the
/// simulation-facing ones wrap the underlying typed errors
/// ([`ConfigError`], [`CampaignError`]) so callers can map them onto
/// their existing exit codes.
#[derive(Debug)]
pub enum ExpError {
    /// A spec or artifact could not be read/written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A spec file is not valid (subset-)TOML.
    Parse {
        /// The spec file.
        path: PathBuf,
        /// The parse failure with its line number.
        source: TomlError,
    },
    /// A spec parsed but its contents are inconsistent (unknown kind,
    /// missing field, bad utility string, mismatched array lengths, ...).
    Spec {
        /// The spec name (or file stem while parsing).
        spec: String,
        /// What is wrong.
        message: String,
    },
    /// A spec compiled into a simulation configuration the simulator
    /// rejects — the spec-level validation reuses
    /// [`SimConfig::try_validate`](impatience_sim::config::SimConfig::try_validate).
    Config {
        /// The spec name.
        spec: String,
        /// The underlying configuration error.
        source: ConfigError,
    },
    /// A campaign failed while executing one cell of a spec.
    Campaign {
        /// The spec name.
        spec: String,
        /// The cell label (sweep point / policy).
        cell: String,
        /// The underlying campaign error.
        source: CampaignError,
    },
}

impl ExpError {
    /// Helper: a [`ExpError::Spec`] from anything stringy.
    pub fn spec(spec: impl Into<String>, message: impl Into<String>) -> Self {
        ExpError::Spec {
            spec: spec.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            ExpError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ExpError::Spec { spec, message } => write!(f, "spec `{spec}`: {message}"),
            ExpError::Config { spec, source } => {
                write!(f, "spec `{spec}` compiles to an invalid config: {source}")
            }
            ExpError::Campaign { spec, cell, source } => {
                write!(f, "spec `{spec}`, cell `{cell}`: {source}")
            }
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::Io { source, .. } => Some(source),
            ExpError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}
