//! Experiment specs: the typed schema behind `experiments/*.toml`.
//!
//! A spec file declares *what* to run — utility family, population
//! shape, contact model or trace, sweep axes, seeds, trials, fault
//! configuration — and names the `results/*.csv` artifacts it produces.
//! [`Spec::parse`] turns the TOML into a typed [`SpecKind`] payload,
//! rejecting unknown kinds, missing fields, bad utility strings, and
//! mismatched array lengths up front; [`Spec::plan`] derives the
//! execution plan (cells, seeds, outputs) without running anything.
//!
//! ```
//! use impatience_exp::Spec;
//!
//! let spec = Spec::parse(
//!     r#"
//!     name = "mini"
//!     figure = 4
//!     kind = "loss_sweep"
//!     title = "QCR vs fixed allocations"
//!
//!     [setting]
//!     nodes = 20
//!     items = 10
//!     rho = 2
//!     mu = 0.05
//!     bin = 60.0
//!     warmup_fraction = 0.3
//!     duration = 500.0
//!     trials = 2
//!
//!     [[sweep]]
//!     file = "mini_power_loss"
//!     param = "alpha"
//!     family = "power"
//!     values = [0.0, 0.5]
//!     seed = 42
//!     "#,
//!     std::path::Path::new("mini.toml"),
//! )
//! .unwrap();
//! let plan = spec.plan().unwrap();
//! assert_eq!(plan.outputs, vec!["mini_power_loss"]);
//! assert_eq!(plan.cells, vec!["alpha=0", "alpha=0.5"]);
//! assert_eq!(plan.seeds, vec![42]);
//! spec.validate().unwrap();
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use impatience_core::utility::{parse_utility, DelayUtility, Exponential, Power, Step};

use crate::error::ExpError;
use crate::toml::{self, Table, Value};

/// A parsed experiment spec: identity plus the kind-specific payload.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Short unique name (`fig4`, `ext_eviction`, ...).
    pub name: String,
    /// Paper figure number, if the spec reproduces one.
    pub figure: Option<u32>,
    /// One-line human title.
    pub title: String,
    /// The typed payload.
    pub kind: SpecKind,
    /// Source file (for provenance and error messages).
    pub path: PathBuf,
    /// Raw file text (hashed into artifact manifests).
    pub raw: String,
}

/// The experiment families the executor knows how to run.
#[derive(Clone, Debug)]
pub enum SpecKind {
    /// Fig. 1: analytic delay-utility curves `h(t)` per panel.
    UtilityCurves(UtilityCurvesSpec),
    /// Fig. 2: fitted allocation exponent vs the analytic `1/(2−α)`.
    AllocExponent(AllocExponentSpec),
    /// Table 1: closed forms vs numeric integration.
    ClosedForms(ClosedFormsSpec),
    /// Mixed-catalog extension: per-item utilities, analytic welfare.
    MixedCatalog(MixedCatalogSpec),
    /// Figs. 4 / dedicated extension: normalized-loss sweeps under
    /// homogeneous (optionally dedicated-server) contacts.
    LossSweep(LossSweepSpec),
    /// Fig. 3: mandate-routing ablation time series.
    MandateRouting(MandateRoutingSpec),
    /// Figs. 5–6: generated-trace suites (time series + loss sweeps,
    /// optionally on the memoryless resynthesis).
    TraceSuite(TraceSuiteSpec),
    /// QCR knob ablation.
    QcrAblation(QcrAblationSpec),
    /// Dynamic-demand extension (mid-run popularity reversal).
    DynamicDemand(DynamicDemandSpec),
    /// Cache-eviction-rule extension.
    Eviction(EvictionSpec),
    /// Degraded-network fault sweeps (contact drops, server churn).
    Degraded(DegradedSpec),
}

impl SpecKind {
    /// The kind string as written in spec files.
    pub fn name(&self) -> &'static str {
        match self {
            SpecKind::UtilityCurves(_) => "utility_curves",
            SpecKind::AllocExponent(_) => "alloc_exponent",
            SpecKind::ClosedForms(_) => "closed_forms",
            SpecKind::MixedCatalog(_) => "mixed_catalog",
            SpecKind::LossSweep(_) => "loss_sweep",
            SpecKind::MandateRouting(_) => "mandate_routing",
            SpecKind::TraceSuite(_) => "trace_suite",
            SpecKind::QcrAblation(_) => "qcr_ablation",
            SpecKind::DynamicDemand(_) => "dynamic_demand",
            SpecKind::Eviction(_) => "eviction",
            SpecKind::Degraded(_) => "degraded",
        }
    }
}

/// One panel of a [`SpecKind::UtilityCurves`] spec.
#[derive(Clone, Debug)]
pub struct Panel {
    /// CSV stem.
    pub file: String,
    /// Column labels, aligned with `utilities`.
    pub labels: Vec<String>,
    /// Utility spec strings (`step:1`, `exp:0.1`, `power:-1`, `neglog`).
    pub utilities: Vec<String>,
}

/// Fig. 1 payload: sample `h(t)` on the grid `t = t_step·k, k = 1..=points`.
#[derive(Clone, Debug)]
pub struct UtilityCurvesSpec {
    /// Grid step.
    pub t_step: f64,
    /// Grid points.
    pub points: usize,
    /// The panels (one CSV each).
    pub panels: Vec<Panel>,
}

/// Fig. 2 payload: relaxed optimum on a dedicated system, log-log fit of
/// `x̃_i` against `d_i` for `α = tenths/10`.
#[derive(Clone, Debug)]
pub struct AllocExponentSpec {
    /// Client count of the dedicated system.
    pub clients: usize,
    /// Dedicated server count.
    pub servers: usize,
    /// Per-server cache capacity.
    pub rho: usize,
    /// Contact rate.
    pub mu: f64,
    /// Catalog size.
    pub items: usize,
    /// Pareto popularity exponent.
    pub omega: f64,
    /// Inclusive α range in integer tenths (α = k/10 keeps the grid
    /// bit-exact; k = 10, i.e. α = 1, is skipped and covered by NegLog).
    pub alpha_tenths: (i64, i64),
    /// CSV stem.
    pub file: String,
}

/// Table 1 payload: closed forms vs numerics for each utility family.
#[derive(Clone, Debug)]
pub struct ClosedFormsSpec {
    /// Contact rate for the gain/φ columns.
    pub mu: f64,
    /// Server count for the ψ column.
    pub servers: f64,
    /// Family display labels, aligned with `families`.
    pub labels: Vec<String>,
    /// Utility spec strings.
    pub families: Vec<String>,
    /// Evaluation points for the gain `G(μx)`.
    pub gain_points: Vec<f64>,
    /// Evaluation points for `φ(x)`.
    pub phi_points: Vec<f64>,
    /// Evaluation points for `ψ(y)`.
    pub psi_points: Vec<f64>,
    /// CSV stem.
    pub file: String,
}

/// Mixed-catalog payload: urgent/patient exponential catalog, analytic
/// welfare of each allocation strategy.
#[derive(Clone, Debug)]
pub struct MixedCatalogSpec {
    /// Catalog size.
    pub items: usize,
    /// Node count (pure P2P).
    pub nodes: usize,
    /// Cache capacity.
    pub rho: usize,
    /// Contact rate.
    pub mu: f64,
    /// ν of the urgent (even) items.
    pub urgent_nu: f64,
    /// ν of the patient (odd) items.
    pub patient_nu: f64,
    /// CSV stem.
    pub file: String,
}

/// One axis of a loss sweep: a utility family swept over `values`.
#[derive(Clone, Debug)]
pub struct SweepAxis {
    /// CSV stem.
    pub file: String,
    /// Parameter column name (`alpha`, `tau`, `nu`).
    pub param: String,
    /// Utility family: `power`, `step`, or `exp`.
    pub family: String,
    /// Swept parameter values.
    pub values: Vec<f64>,
    /// Base seed shared by every policy at every point (paired runs).
    pub seed: u64,
}

/// Figs. 4 / dedicated-extension payload.
#[derive(Clone, Debug)]
pub struct LossSweepSpec {
    /// Total node count.
    pub nodes: usize,
    /// Dedicated servers among them (0 = pure P2P).
    pub servers: usize,
    /// Catalog size.
    pub items: usize,
    /// Cache capacity.
    pub rho: usize,
    /// Contact rate.
    pub mu: f64,
    /// Metrics bin width (minutes).
    pub bin: f64,
    /// Warmup fraction excluded from the mean.
    pub warmup_fraction: f64,
    /// Trial horizon (minutes).
    pub duration: f64,
    /// Trials per (point, policy).
    pub trials: usize,
    /// The sweep axes (one CSV each).
    pub sweeps: Vec<SweepAxis>,
}

/// Fig. 3 payload.
#[derive(Clone, Debug)]
pub struct MandateRoutingSpec {
    /// Trials per policy.
    pub trials: usize,
    /// Trial horizon (minutes).
    pub duration: f64,
    /// Base seed (also the single-trial seed of the replica panels).
    pub seed: u64,
    /// Power-utility exponent (the paper uses α = 0, `h(t) = −t`).
    pub alpha: f64,
    /// CSV stem: expected-utility series.
    pub expected_file: String,
    /// CSV stem: observed-utility series.
    pub observed_file: String,
    /// CSV stem: top-5 replica series with routing.
    pub routing_file: String,
    /// CSV stem: top-5 replica series without routing.
    pub noroute_file: String,
}

/// Which generated trace a [`TraceSuiteSpec`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Conference scenario (Infocom'06 substitute).
    Conference,
    /// Vehicular scenario (Cabspotting substitute).
    Vehicular,
}

/// The optional time-series panel of a trace suite.
#[derive(Clone, Debug)]
pub struct TimeseriesPanel {
    /// CSV stem.
    pub file: String,
    /// Utility spec string.
    pub utility: String,
    /// Base seed.
    pub seed: u64,
}

/// One τ/α/ν axis of a trace suite.
#[derive(Clone, Debug)]
pub struct TraceSweepAxis {
    /// The common sweep fields.
    pub axis: SweepAxis,
    /// Run on the memoryless resynthesis instead of the actual trace.
    pub synthesized: bool,
}

/// Figs. 5–6 payload.
#[derive(Clone, Debug)]
pub struct TraceSuiteSpec {
    /// Which generator.
    pub trace: TraceKind,
    /// Seed of the trace generator RNG (which *continues* into the
    /// memoryless resynthesis, as Fig. 5 requires).
    pub trace_seed: u64,
    /// Catalog size.
    pub items: usize,
    /// Cache capacity.
    pub rho: usize,
    /// Metrics bin width (minutes).
    pub bin: f64,
    /// Warmup fraction.
    pub warmup_fraction: f64,
    /// Trials per (point, policy).
    pub trials: usize,
    /// Optional observed-utility time series panel.
    pub timeseries: Option<TimeseriesPanel>,
    /// The sweep axes.
    pub sweeps: Vec<TraceSweepAxis>,
}

/// QCR-ablation payload.
#[derive(Clone, Debug)]
pub struct QcrAblationSpec {
    /// Trials per variant.
    pub trials: usize,
    /// Trial horizon (minutes).
    pub duration: f64,
    /// Base seed shared by OPT and every variant.
    pub seed: u64,
    /// Regime display labels, aligned with `regimes`.
    pub regime_labels: Vec<String>,
    /// Utility spec strings of the regimes.
    pub regimes: Vec<String>,
    /// CSV stem.
    pub file: String,
}

/// Dynamic-demand payload.
#[derive(Clone, Debug)]
pub struct DynamicDemandSpec {
    /// Catalog size.
    pub items: usize,
    /// Node count (pure P2P).
    pub nodes: usize,
    /// Cache capacity.
    pub rho: usize,
    /// Contact rate.
    pub mu: f64,
    /// Trial horizon; demand reverses at `duration / 2`.
    pub duration: f64,
    /// Trials per policy.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Utility spec string.
    pub utility: String,
    /// CSV stem.
    pub file: String,
}

/// Eviction-rule payload.
#[derive(Clone, Debug)]
pub struct EvictionSpec {
    /// Trials per (regime, rule).
    pub trials: usize,
    /// Trial horizon (minutes).
    pub duration: f64,
    /// Base seed.
    pub seed: u64,
    /// Regime display labels, aligned with `regimes`.
    pub regime_labels: Vec<String>,
    /// Utility spec strings of the regimes.
    pub regimes: Vec<String>,
    /// Eviction rules to compare (`random`, `lru`, `fifo`).
    pub rules: Vec<String>,
    /// CSV stem.
    pub file: String,
}

/// One fault axis of a [`DegradedSpec`].
#[derive(Clone, Debug)]
pub struct FaultAxis {
    /// CSV stem.
    pub file: String,
    /// Parameter column name.
    pub param: String,
    /// Swept values (drop probability / down-time fraction).
    pub values: Vec<f64>,
    /// Dedicated fault-RNG seed.
    pub fault_seed: u64,
}

/// Degraded-network payload.
#[derive(Clone, Debug)]
pub struct DegradedSpec {
    /// Trials per (point, policy).
    pub trials: usize,
    /// Trial horizon (minutes).
    pub duration: f64,
    /// Utility spec string.
    pub utility: String,
    /// Base seed of the paired policy suite.
    pub seed: u64,
    /// Bursty contact-drop sweep (`mean_burst` length per drop).
    pub drop: FaultAxis,
    /// Mean burst length of the drop process.
    pub drop_mean_burst: f64,
    /// Exponential server-churn sweep.
    pub churn: FaultAxis,
    /// Mean up+down cycle length (minutes) of the churn process.
    pub churn_cycle: f64,
}

/// The execution plan [`Spec::plan`] derives without running anything:
/// what the spec will produce and from which seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// CSV stems the spec writes (no extension).
    pub outputs: Vec<String>,
    /// Cell labels in execution order.
    pub cells: Vec<String>,
    /// Distinct base seeds, in first-use order (empty for analytic specs).
    pub seeds: Vec<u64>,
    /// Trials per simulated cell (0 for analytic specs).
    pub trials: usize,
}

// ---------------------------------------------------------------------
// Field accessors with spec-context errors.
// ---------------------------------------------------------------------

fn req<'a>(t: &'a Table, spec: &str, at: &str, key: &str) -> Result<&'a Value, ExpError> {
    t.get(key)
        .ok_or_else(|| ExpError::spec(spec, format!("missing `{key}` in {at}")))
}

fn req_str(t: &Table, spec: &str, at: &str, key: &str) -> Result<String, ExpError> {
    let v = req(t, spec, at, key)?;
    v.as_str().map(str::to_string).ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`{key}` in {at} must be a string, got {}", v.type_name()),
        )
    })
}

fn req_f64(t: &Table, spec: &str, at: &str, key: &str) -> Result<f64, ExpError> {
    let v = req(t, spec, at, key)?;
    v.as_f64().ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`{key}` in {at} must be a number, got {}", v.type_name()),
        )
    })
}

fn req_usize(t: &Table, spec: &str, at: &str, key: &str) -> Result<usize, ExpError> {
    let v = req(t, spec, at, key)?;
    v.as_int()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| {
            ExpError::spec(
                spec,
                format!(
                    "`{key}` in {at} must be a non-negative integer, got {}",
                    v.type_name()
                ),
            )
        })
}

fn req_u64(t: &Table, spec: &str, at: &str, key: &str) -> Result<u64, ExpError> {
    let v = req(t, spec, at, key)?;
    v.as_int()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| {
            ExpError::spec(
                spec,
                format!(
                    "`{key}` in {at} must be a non-negative integer, got {}",
                    v.type_name()
                ),
            )
        })
}

fn req_i64(t: &Table, spec: &str, at: &str, key: &str) -> Result<i64, ExpError> {
    let v = req(t, spec, at, key)?;
    v.as_int().ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`{key}` in {at} must be an integer, got {}", v.type_name()),
        )
    })
}

fn req_f64_array(t: &Table, spec: &str, at: &str, key: &str) -> Result<Vec<f64>, ExpError> {
    let v = req(t, spec, at, key)?;
    let arr = v.as_array().ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`{key}` in {at} must be an array, got {}", v.type_name()),
        )
    })?;
    arr.iter()
        .map(|x| {
            x.as_f64().ok_or_else(|| {
                ExpError::spec(spec, format!("`{key}` in {at} must contain only numbers"))
            })
        })
        .collect()
}

fn req_str_array(t: &Table, spec: &str, at: &str, key: &str) -> Result<Vec<String>, ExpError> {
    let v = req(t, spec, at, key)?;
    let arr = v.as_array().ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`{key}` in {at} must be an array, got {}", v.type_name()),
        )
    })?;
    arr.iter()
        .map(|x| {
            x.as_str().map(str::to_string).ok_or_else(|| {
                ExpError::spec(spec, format!("`{key}` in {at} must contain only strings"))
            })
        })
        .collect()
}

fn req_table<'a>(t: &'a Table, spec: &str, key: &str) -> Result<&'a Table, ExpError> {
    let v = req(t, spec, "the spec", key)?;
    v.as_table().ok_or_else(|| {
        ExpError::spec(
            spec,
            format!("`[{key}]` must be a table, got {}", v.type_name()),
        )
    })
}

fn req_table_array<'a>(t: &'a Table, spec: &str, key: &str) -> Result<Vec<&'a Table>, ExpError> {
    let v = req(t, spec, "the spec", key)?;
    let arr = v
        .as_array()
        .ok_or_else(|| ExpError::spec(spec, format!("`[[{key}]]` must be an array of tables")))?;
    arr.iter()
        .map(|x| {
            x.as_table()
                .ok_or_else(|| ExpError::spec(spec, format!("`[[{key}]]` must contain tables")))
        })
        .collect()
}

/// Parse + validate a utility spec string, with spec context on failure.
pub fn utility_of(spec: &str, s: &str) -> Result<Arc<dyn DelayUtility>, ExpError> {
    parse_utility(s).map_err(|e| ExpError::spec(spec, e.to_string()))
}

/// Build a swept utility directly from (family, value) so the parameter
/// keeps the exact bits the spec file carries.
pub fn family_utility(
    spec: &str,
    family: &str,
    value: f64,
) -> Result<Arc<dyn DelayUtility>, ExpError> {
    // Mirror `parse_utility`'s bounds so a bad spec value surfaces as a
    // config error instead of tripping the constructors' asserts.
    match family {
        "power" if value.is_finite() && value < 2.0 && value != 1.0 => {
            Ok(Arc::new(Power::new(value)))
        }
        "power" => Err(ExpError::spec(
            spec,
            format!("power exponent must be finite, < 2 and ≠ 1 (got {value})"),
        )),
        "step" if value.is_finite() && value > 0.0 => Ok(Arc::new(Step::new(value))),
        "step" => Err(ExpError::spec(
            spec,
            format!("step deadline must be positive (got {value})"),
        )),
        "exp" if value.is_finite() && value > 0.0 => Ok(Arc::new(Exponential::new(value))),
        "exp" => Err(ExpError::spec(
            spec,
            format!("exponential decay rate must be positive (got {value})"),
        )),
        other => Err(ExpError::spec(
            spec,
            format!("unknown sweep family `{other}` (expected power|step|exp)"),
        )),
    }
}

fn aligned(spec: &str, at: &str, labels: &[String], values: &[String]) -> Result<(), ExpError> {
    if labels.len() != values.len() {
        return Err(ExpError::spec(
            spec,
            format!(
                "{at}: label/utility arrays have mismatched lengths ({} vs {})",
                labels.len(),
                values.len()
            ),
        ));
    }
    Ok(())
}

fn parse_sweep_axis(t: &Table, spec: &str, at: &str) -> Result<SweepAxis, ExpError> {
    let axis = SweepAxis {
        file: req_str(t, spec, at, "file")?,
        param: req_str(t, spec, at, "param")?,
        family: req_str(t, spec, at, "family")?,
        values: req_f64_array(t, spec, at, "values")?,
        seed: req_u64(t, spec, at, "seed")?,
    };
    if axis.values.is_empty() {
        return Err(ExpError::spec(spec, format!("{at}: empty `values`")));
    }
    // Reject unknown families and out-of-range parameters at parse
    // time, not mid-campaign.
    for &v in &axis.values {
        family_utility(spec, &axis.family, v)?;
    }
    Ok(axis)
}

impl Spec {
    /// Parse a spec document. `path` is recorded for provenance and
    /// error messages only; use [`Spec::load`] to read from disk.
    pub fn parse(text: &str, path: &Path) -> Result<Spec, ExpError> {
        let root = toml::parse(text).map_err(|source| ExpError::Parse {
            path: path.to_path_buf(),
            source,
        })?;
        let fallback = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "?".to_string());
        let name = match root.get("name") {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| ExpError::spec(&fallback, "`name` must be a string"))?,
            None => return Err(ExpError::spec(&fallback, "missing top-level `name`")),
        };
        let figure = match root.get("figure") {
            None => None,
            Some(v) => Some(
                v.as_int()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| ExpError::spec(&name, "`figure` must be a small integer"))?,
            ),
        };
        let title = req_str(&root, &name, "the spec", "title")?;
        let kind_name = req_str(&root, &name, "the spec", "kind")?;
        let kind = Self::parse_kind(&kind_name, &name, &root)?;
        Ok(Spec {
            name,
            figure,
            title,
            kind,
            path: path.to_path_buf(),
            raw: text.to_string(),
        })
    }

    /// Read and parse a spec file.
    pub fn load(path: &Path) -> Result<Spec, ExpError> {
        let text = std::fs::read_to_string(path).map_err(|source| ExpError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Spec::parse(&text, path)
    }

    fn parse_kind(kind: &str, name: &str, root: &Table) -> Result<SpecKind, ExpError> {
        match kind {
            "utility_curves" => {
                let s = req_table(root, name, "setting")?;
                let panels = req_table_array(root, name, "panel")?
                    .into_iter()
                    .map(|p| {
                        let panel = Panel {
                            file: req_str(p, name, "[[panel]]", "file")?,
                            labels: req_str_array(p, name, "[[panel]]", "labels")?,
                            utilities: req_str_array(p, name, "[[panel]]", "utilities")?,
                        };
                        aligned(name, "[[panel]]", &panel.labels, &panel.utilities)?;
                        for u in &panel.utilities {
                            utility_of(name, u)?;
                        }
                        Ok(panel)
                    })
                    .collect::<Result<Vec<_>, ExpError>>()?;
                Ok(SpecKind::UtilityCurves(UtilityCurvesSpec {
                    t_step: req_f64(s, name, "[setting]", "t_step")?,
                    points: req_usize(s, name, "[setting]", "points")?,
                    panels,
                }))
            }
            "alloc_exponent" => {
                let s = req_table(root, name, "setting")?;
                Ok(SpecKind::AllocExponent(AllocExponentSpec {
                    clients: req_usize(s, name, "[setting]", "clients")?,
                    servers: req_usize(s, name, "[setting]", "servers")?,
                    rho: req_usize(s, name, "[setting]", "rho")?,
                    mu: req_f64(s, name, "[setting]", "mu")?,
                    items: req_usize(s, name, "[setting]", "items")?,
                    omega: req_f64(s, name, "[setting]", "omega")?,
                    alpha_tenths: (
                        req_i64(s, name, "[setting]", "alpha_tenths_min")?,
                        req_i64(s, name, "[setting]", "alpha_tenths_max")?,
                    ),
                    file: req_str(s, name, "[setting]", "file")?,
                }))
            }
            "closed_forms" => {
                let s = req_table(root, name, "setting")?;
                let labels = req_str_array(s, name, "[setting]", "labels")?;
                let families = req_str_array(s, name, "[setting]", "families")?;
                aligned(name, "[setting]", &labels, &families)?;
                for f in &families {
                    utility_of(name, f)?;
                }
                Ok(SpecKind::ClosedForms(ClosedFormsSpec {
                    mu: req_f64(s, name, "[setting]", "mu")?,
                    servers: req_f64(s, name, "[setting]", "servers")?,
                    labels,
                    families,
                    gain_points: req_f64_array(s, name, "[setting]", "gain_points")?,
                    phi_points: req_f64_array(s, name, "[setting]", "phi_points")?,
                    psi_points: req_f64_array(s, name, "[setting]", "psi_points")?,
                    file: req_str(s, name, "[setting]", "file")?,
                }))
            }
            "mixed_catalog" => {
                let s = req_table(root, name, "setting")?;
                Ok(SpecKind::MixedCatalog(MixedCatalogSpec {
                    items: req_usize(s, name, "[setting]", "items")?,
                    nodes: req_usize(s, name, "[setting]", "nodes")?,
                    rho: req_usize(s, name, "[setting]", "rho")?,
                    mu: req_f64(s, name, "[setting]", "mu")?,
                    urgent_nu: req_f64(s, name, "[setting]", "urgent_nu")?,
                    patient_nu: req_f64(s, name, "[setting]", "patient_nu")?,
                    file: req_str(s, name, "[setting]", "file")?,
                }))
            }
            "loss_sweep" => {
                let s = req_table(root, name, "setting")?;
                let sweeps = req_table_array(root, name, "sweep")?
                    .into_iter()
                    .map(|t| parse_sweep_axis(t, name, "[[sweep]]"))
                    .collect::<Result<Vec<_>, _>>()?;
                let servers = match s.get("servers") {
                    None => 0,
                    Some(_) => req_usize(s, name, "[setting]", "servers")?,
                };
                Ok(SpecKind::LossSweep(LossSweepSpec {
                    nodes: req_usize(s, name, "[setting]", "nodes")?,
                    servers,
                    items: req_usize(s, name, "[setting]", "items")?,
                    rho: req_usize(s, name, "[setting]", "rho")?,
                    mu: req_f64(s, name, "[setting]", "mu")?,
                    bin: req_f64(s, name, "[setting]", "bin")?,
                    warmup_fraction: req_f64(s, name, "[setting]", "warmup_fraction")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    sweeps,
                }))
            }
            "mandate_routing" => {
                let s = req_table(root, name, "setting")?;
                Ok(SpecKind::MandateRouting(MandateRoutingSpec {
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    seed: req_u64(s, name, "[setting]", "seed")?,
                    alpha: req_f64(s, name, "[setting]", "alpha")?,
                    expected_file: req_str(s, name, "[setting]", "expected_file")?,
                    observed_file: req_str(s, name, "[setting]", "observed_file")?,
                    routing_file: req_str(s, name, "[setting]", "routing_file")?,
                    noroute_file: req_str(s, name, "[setting]", "noroute_file")?,
                }))
            }
            "trace_suite" => {
                let s = req_table(root, name, "setting")?;
                let trace = match req_str(s, name, "[setting]", "trace")?.as_str() {
                    "conference" => TraceKind::Conference,
                    "vehicular" => TraceKind::Vehicular,
                    other => {
                        return Err(ExpError::spec(
                            name,
                            format!("unknown trace `{other}` (expected conference|vehicular)"),
                        ))
                    }
                };
                let timeseries = match root.get("timeseries") {
                    None => None,
                    Some(v) => {
                        let t = v.as_table().ok_or_else(|| {
                            ExpError::spec(name, "`[timeseries]` must be a table")
                        })?;
                        let panel = TimeseriesPanel {
                            file: req_str(t, name, "[timeseries]", "file")?,
                            utility: req_str(t, name, "[timeseries]", "utility")?,
                            seed: req_u64(t, name, "[timeseries]", "seed")?,
                        };
                        utility_of(name, &panel.utility)?;
                        Some(panel)
                    }
                };
                let sweeps = req_table_array(root, name, "sweep")?
                    .into_iter()
                    .map(|t| {
                        Ok(TraceSweepAxis {
                            axis: parse_sweep_axis(t, name, "[[sweep]]")?,
                            synthesized: match t.get("synthesized") {
                                None => false,
                                Some(v) => v.as_bool().ok_or_else(|| {
                                    ExpError::spec(name, "`synthesized` must be a boolean")
                                })?,
                            },
                        })
                    })
                    .collect::<Result<Vec<_>, ExpError>>()?;
                Ok(SpecKind::TraceSuite(TraceSuiteSpec {
                    trace,
                    trace_seed: req_u64(s, name, "[setting]", "trace_seed")?,
                    items: req_usize(s, name, "[setting]", "items")?,
                    rho: req_usize(s, name, "[setting]", "rho")?,
                    bin: req_f64(s, name, "[setting]", "bin")?,
                    warmup_fraction: req_f64(s, name, "[setting]", "warmup_fraction")?,
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    timeseries,
                    sweeps,
                }))
            }
            "qcr_ablation" => {
                let s = req_table(root, name, "setting")?;
                let regime_labels = req_str_array(s, name, "[setting]", "regime_labels")?;
                let regimes = req_str_array(s, name, "[setting]", "regimes")?;
                aligned(name, "[setting]", &regime_labels, &regimes)?;
                for r in &regimes {
                    utility_of(name, r)?;
                }
                Ok(SpecKind::QcrAblation(QcrAblationSpec {
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    seed: req_u64(s, name, "[setting]", "seed")?,
                    regime_labels,
                    regimes,
                    file: req_str(s, name, "[setting]", "file")?,
                }))
            }
            "dynamic_demand" => {
                let s = req_table(root, name, "setting")?;
                let spec = DynamicDemandSpec {
                    items: req_usize(s, name, "[setting]", "items")?,
                    nodes: req_usize(s, name, "[setting]", "nodes")?,
                    rho: req_usize(s, name, "[setting]", "rho")?,
                    mu: req_f64(s, name, "[setting]", "mu")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    seed: req_u64(s, name, "[setting]", "seed")?,
                    utility: req_str(s, name, "[setting]", "utility")?,
                    file: req_str(s, name, "[setting]", "file")?,
                };
                utility_of(name, &spec.utility)?;
                Ok(SpecKind::DynamicDemand(spec))
            }
            "eviction" => {
                let s = req_table(root, name, "setting")?;
                let regime_labels = req_str_array(s, name, "[setting]", "regime_labels")?;
                let regimes = req_str_array(s, name, "[setting]", "regimes")?;
                aligned(name, "[setting]", &regime_labels, &regimes)?;
                for r in &regimes {
                    utility_of(name, r)?;
                }
                let rules = req_str_array(s, name, "[setting]", "rules")?;
                for r in &rules {
                    if !matches!(r.as_str(), "random" | "lru" | "fifo") {
                        return Err(ExpError::spec(
                            name,
                            format!("unknown eviction rule `{r}` (expected random|lru|fifo)"),
                        ));
                    }
                }
                Ok(SpecKind::Eviction(EvictionSpec {
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    seed: req_u64(s, name, "[setting]", "seed")?,
                    regime_labels,
                    regimes,
                    rules,
                    file: req_str(s, name, "[setting]", "file")?,
                }))
            }
            "degraded" => {
                let s = req_table(root, name, "setting")?;
                let utility = req_str(s, name, "[setting]", "utility")?;
                utility_of(name, &utility)?;
                let axis = |key: &str| -> Result<FaultAxis, ExpError> {
                    let t = req_table(root, name, key)?;
                    Ok(FaultAxis {
                        file: req_str(t, name, key, "file")?,
                        param: req_str(t, name, key, "param")?,
                        values: req_f64_array(t, name, key, "values")?,
                        fault_seed: req_u64(t, name, key, "fault_seed")?,
                    })
                };
                let drop_table = req_table(root, name, "drop")?;
                let churn_table = req_table(root, name, "churn")?;
                Ok(SpecKind::Degraded(DegradedSpec {
                    trials: req_usize(s, name, "[setting]", "trials")?,
                    duration: req_f64(s, name, "[setting]", "duration")?,
                    utility,
                    seed: req_u64(s, name, "[setting]", "seed")?,
                    drop: axis("drop")?,
                    drop_mean_burst: req_f64(drop_table, name, "[drop]", "mean_burst")?,
                    churn: axis("churn")?,
                    churn_cycle: req_f64(churn_table, name, "[churn]", "cycle")?,
                }))
            }
            other => Err(ExpError::spec(
                name,
                format!("unknown experiment kind `{other}`"),
            )),
        }
    }

    /// The FNV-1a 64-bit hash of the spec file bytes, as stamped into
    /// artifact manifests (`fnv1a:<16 hex digits>`).
    pub fn hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.raw.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("fnv1a:{h:016x}")
    }

    /// Derive the execution plan: outputs, cell labels, seeds, trials.
    pub fn plan(&self) -> Result<Plan, ExpError> {
        let mut outputs = Vec::new();
        let mut cells = Vec::new();
        let mut seeds: Vec<u64> = Vec::new();
        let push_seed = |seeds: &mut Vec<u64>, s: u64| {
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        };
        let trials = match &self.kind {
            SpecKind::UtilityCurves(s) => {
                for p in &s.panels {
                    outputs.push(p.file.clone());
                    cells.push(p.file.clone());
                }
                0
            }
            SpecKind::AllocExponent(s) => {
                outputs.push(s.file.clone());
                cells.push(s.file.clone());
                0
            }
            SpecKind::ClosedForms(s) => {
                outputs.push(s.file.clone());
                for l in &s.labels {
                    cells.push(l.clone());
                }
                0
            }
            SpecKind::MixedCatalog(s) => {
                outputs.push(s.file.clone());
                cells.push(s.file.clone());
                0
            }
            SpecKind::LossSweep(s) => {
                for sw in &s.sweeps {
                    outputs.push(sw.file.clone());
                    push_seed(&mut seeds, sw.seed);
                    for v in &sw.values {
                        cells.push(format!("{}={v}", sw.param));
                    }
                }
                s.trials
            }
            SpecKind::MandateRouting(s) => {
                outputs.extend([
                    s.expected_file.clone(),
                    s.observed_file.clone(),
                    s.routing_file.clone(),
                    s.noroute_file.clone(),
                ]);
                for label in ["QCR", "QCR-no-routing", "OPT", "UNI", "DOM"] {
                    cells.push(label.to_string());
                }
                cells.push("replicas".to_string());
                push_seed(&mut seeds, s.seed);
                s.trials
            }
            SpecKind::TraceSuite(s) => {
                if let Some(ts) = &s.timeseries {
                    outputs.push(ts.file.clone());
                    cells.push(format!("{} timeseries", ts.file));
                    push_seed(&mut seeds, ts.seed);
                }
                for sw in &s.sweeps {
                    outputs.push(sw.axis.file.clone());
                    push_seed(&mut seeds, sw.axis.seed);
                    for v in &sw.axis.values {
                        let tag = if sw.synthesized { " (synthesized)" } else { "" };
                        cells.push(format!("{}={v}{tag}", sw.axis.param));
                    }
                }
                s.trials
            }
            SpecKind::QcrAblation(s) => {
                outputs.push(s.file.clone());
                for r in &s.regime_labels {
                    cells.push(r.clone());
                }
                push_seed(&mut seeds, s.seed);
                s.trials
            }
            SpecKind::DynamicDemand(s) => {
                outputs.push(s.file.clone());
                for label in ["QCR", "OPT-stale", "OPT-fresh", "UNI"] {
                    cells.push(label.to_string());
                }
                push_seed(&mut seeds, s.seed);
                s.trials
            }
            SpecKind::Eviction(s) => {
                outputs.push(s.file.clone());
                for r in &s.regime_labels {
                    cells.push(r.clone());
                }
                push_seed(&mut seeds, s.seed);
                s.trials
            }
            SpecKind::Degraded(s) => {
                for axis in [&s.drop, &s.churn] {
                    outputs.push(axis.file.clone());
                    for v in &axis.values {
                        cells.push(format!("{}={v}", axis.param));
                    }
                }
                push_seed(&mut seeds, s.seed);
                s.trials
            }
        };
        Ok(Plan {
            outputs,
            cells,
            seeds,
            trials,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_kind_and_missing_fields() {
        let bad = Spec::parse(
            "name = \"x\"\ntitle = \"t\"\nkind = \"nope\"\n",
            Path::new("x.toml"),
        );
        assert!(matches!(bad, Err(ExpError::Spec { .. })), "{bad:?}");
        let missing = Spec::parse("title = \"t\"\nkind = \"degraded\"\n", Path::new("x.toml"));
        assert!(missing.is_err());
    }

    #[test]
    fn rejects_bad_utility_strings_at_parse_time() {
        let doc = r#"
            name = "x"
            title = "t"
            kind = "qcr_ablation"
            [setting]
            trials = 2
            duration = 100.0
            seed = 1
            regime_labels = ["bad"]
            regimes = ["step:-3"]
            file = "f"
        "#;
        let e = Spec::parse(doc, Path::new("x.toml")).unwrap_err();
        assert!(e.to_string().contains("step"), "{e}");
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = Spec::parse(
            "name = \"a\"\ntitle = \"t\"\nkind = \"mixed_catalog\"\n[setting]\nitems = 4\nnodes = 4\nrho = 1\nmu = 0.05\nurgent_nu = 1.0\npatient_nu = 0.01\nfile = \"f\"\n",
            Path::new("a.toml"),
        )
        .unwrap();
        assert!(a.hash().starts_with("fnv1a:"));
        assert_eq!(a.hash(), a.hash());
        let mut other = a.clone();
        other.raw.push('\n');
        assert_ne!(a.hash(), other.hash());
    }
}
